"""The shared experiment helpers."""

import pytest

from repro.core.coverage import is_cover
from repro.experiments.common import (
    BATCH_ALGORITHMS,
    EFFECTIVENESS_RATE_PER_MIN,
    STREAM_ALGORITHMS,
    batch_sizes,
    make_day_instance,
    make_effectiveness_instance,
    optimum_size,
    stream_sizes,
)


class TestInstanceFactories:
    def test_effectiveness_instance_shape(self):
        instance = make_effectiveness_instance(
            seed=0, num_labels=2, lam=30.0
        )
        # 12/min over 10 minutes ~ 120 posts
        assert 80 <= len(instance) <= 170
        assert instance.lam == 30.0
        assert len(instance.labels) == 2

    def test_deterministic_under_seed(self):
        one = make_effectiveness_instance(seed=7, num_labels=2, lam=30.0)
        two = make_effectiveness_instance(seed=7, num_labels=2, lam=30.0)
        assert one.posts == two.posts

    def test_seeds_differ(self):
        one = make_effectiveness_instance(seed=1, num_labels=2, lam=30.0)
        two = make_effectiveness_instance(seed=2, num_labels=2, lam=30.0)
        assert one.posts != two.posts

    def test_day_instance_scaled(self):
        instance = make_day_instance(
            seed=0, num_labels=2, lam=600.0, scale=0.004,
            duration=21_600.0,
        )
        assert len(instance) > 50
        assert instance.lam == 600.0


class TestSolverBundles:
    def test_batch_sizes_runs_every_algorithm(self):
        instance = make_effectiveness_instance(
            seed=0, num_labels=2, lam=30.0
        )
        solutions = batch_sizes(instance)
        assert set(solutions) == set(BATCH_ALGORITHMS)
        for name, solution in solutions.items():
            assert is_cover(instance, solution.posts), name

    def test_stream_sizes_runs_requested_algorithms(self):
        instance = make_effectiveness_instance(
            seed=0, num_labels=2, lam=30.0
        )
        results = stream_sizes(instance, tau=15.0)
        assert set(results) == set(STREAM_ALGORITHMS)
        for name, result in results.items():
            assert is_cover(instance, result.to_solution().posts), name

    def test_optimum_lower_bounds_approximations(self):
        instance = make_effectiveness_instance(
            seed=0, num_labels=2, lam=30.0
        )
        optimum = optimum_size(instance)
        for solution in batch_sizes(instance).values():
            assert solution.size >= optimum

    def test_rate_constant_sane(self):
        assert EFFECTIVENESS_RATE_PER_MIN > 0
