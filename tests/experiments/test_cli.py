"""The experiments command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "fig6", "fig15"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_run_one_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "broad_topic" in out
        assert "rows in" in out

    def test_csv_output(self, capsys):
        assert main(["table1", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("broad_topic,topic,keywords")

    def test_seed_flag_changes_sampling(self, capsys):
        main(["table1", "--seed", "1", "--csv"])
        first = capsys.readouterr().out
        main(["table1", "--seed", "2", "--csv"])
        second = capsys.readouterr().out
        assert first != second

    def test_injected_clock_times_the_run(self, capsys):
        ticks = [5.0, 7.5]
        assert main(["table1"], clock=lambda: ticks.pop(0)) == 0
        out = capsys.readouterr().out
        assert "rows in 2.5s" in out

    def test_session_clock_is_the_default(self, capsys):
        from repro.observability import facade

        ticks = [0.0, 0.4]
        with facade.session(clock=lambda: ticks.pop(0)):
            assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "rows in 0.4s" in out
