"""Smoke and shape tests for every experiment driver (tiny configs).

Each driver must run end to end and produce rows with the expected
columns; where the paper states a robust qualitative shape, we assert it
on a small-but-not-trivial configuration.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ablation_greedy_heap,
    ablation_proportional,
    ablation_scan_order,
    fig6_overlap,
    fig7_lambda,
    fig8_daylong,
    fig9_stream_lambda,
    fig10_stream_tau,
    fig11_stream_overlap,
    fig12_stream_daylong,
    fig13_time_mqdp,
    table1_topics,
    table2_matching,
)


class TestRegistryCompleteness:
    def test_every_table_and_figure_present(self):
        expected = {
            "table1", "table2",
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15",
        }
        assert expected <= set(ALL_EXPERIMENTS)

    def test_all_have_descriptions(self):
        for module in ALL_EXPERIMENTS.values():
            assert module.DESCRIPTION


class TestTable1:
    def test_rows_shape(self):
        rows = table1_topics.run(seed=0)
        assert len(rows) == 4
        assert {"broad_topic", "topic", "keywords"} <= set(rows[0])

    def test_requested_broads_only(self):
        rows = table1_topics.run(seed=0, broads=("health",))
        assert all(r["broad_topic"] == "health" for r in rows)


class TestTable2:
    def test_matching_grows_with_label_set_size(self):
        rows = table2_matching.run(
            seed=0, sizes=(2, 5, 20), minutes=1.0,
            tweets_per_sec=15.0, sets_per_size=8,
        )
        rates = [row["matching_per_min"] for row in rows]
        assert rates[0] < rates[1] < rates[2]


class TestFig6:
    def test_shapes(self):
        rows = fig6_overlap.run(
            seed=1, overlaps=(1.0, 1.8), trials=2, lam=30.0
        )
        # at overlap=1 Scan is optimal (per-label optimality)
        assert rows[0]["scan_err"] == pytest.approx(0.0, abs=1e-9)
        # sizes shrink as overlap grows (posts cover several labels)
        assert rows[1]["greedy_sc_size"] < rows[0]["greedy_sc_size"]


class TestFig7:
    def test_error_grows_with_lambda(self):
        rows = fig7_lambda.run(seed=1, lams=(10.0, 90.0), trials=2)
        assert rows[0]["scan_err"] < rows[1]["scan_err"]

    def test_greedy_beats_scan(self):
        rows = fig7_lambda.run(seed=1, lams=(30.0,), trials=3)
        assert rows[0]["greedy_sc_err"] < rows[0]["scan_err"]


class TestFig8:
    def test_scan_linear_and_greedy_smallest(self):
        rows = fig8_daylong.run(
            seed=0, sizes=(2, 8), lam_minutes=(10.0,),
            scale=0.004, duration=21_600.0,
        )
        assert rows[0]["posts"] > 0
        for row in rows:
            assert row["greedy_sc_size"] <= row["scan_size"]
        # scan roughly linear in |L| (x4 labels -> ~x4 size)
        ratio = rows[1]["scan_size"] / rows[0]["scan_size"]
        assert 2.0 < ratio < 7.0


class TestStreamingFigures:
    def test_fig9_scan_plus_beats_scan(self):
        rows = fig9_stream_lambda.run(
            seed=1, taus=(30.0,), lams=(30.0, 120.0), trials=2
        )
        for row in rows:
            assert row["stream_scan+_err"] <= row["stream_scan_err"]
            assert 0.0 <= row["stream_greedy_sc_err"] <= 3.0

    def test_fig10_scan_flat_beyond_lambda(self):
        rows = fig10_stream_tau.run(
            seed=1, lams=(40.0,), tau_factors=(1.5, 3.0), trials=2
        )
        # both taus exceed lambda: StreamScan output identical
        assert rows[0]["stream_scan_err"] == pytest.approx(
            rows[1]["stream_scan_err"]
        )

    def test_fig11_columns(self):
        rows = fig11_stream_overlap.run(
            seed=0, overlaps=(1.0, 2.0), trials=1
        )
        assert len(rows) == 2
        assert "stream_greedy_sc_size" in rows[0]

    def test_fig12_runs(self):
        rows = fig12_stream_daylong.run(
            seed=0, sizes=(2,), lam_minutes=(10.0,),
            scale=0.004, duration=21_600.0,
        )
        assert rows[0]["stream_scan_size"] > 0


class TestTimingFigures:
    def test_fig13_scan_faster_than_greedy(self):
        rows = fig13_time_mqdp.run(
            seed=0, sizes=(2,), lam_minutes=(10.0,),
            scale=0.004, duration=21_600.0,
        )
        row = rows[0]
        assert row["scan_us_per_post"] < row["greedy_sc_us_per_post"]


class TestAblations:
    def test_scan_order_rows(self):
        rows = ablation_scan_order.run(seed=0, overlaps=(1.5,), trials=2)
        assert {"sorted_size", "longest_first_size",
                "shortest_first_size"} <= set(rows[0])

    def test_greedy_heap_strategies_agree_on_size(self):
        rows = ablation_greedy_heap.run(
            seed=0, sizes=(2,), lam_minutes=(10.0,),
            scale=0.004, duration=10_800.0,
        )
        for row in rows:
            assert row["rescan_size"] == row["lazy_heap_size"]

    def test_proportional_shifts_output_to_dense_half(self):
        rows = ablation_proportional.run(seed=0, trials=2)
        for row in rows:
            assert (
                row["variable_dense_share"] >= row["fixed_dense_share"]
            )


class TestExtensions:
    def test_stream_proportional_tracks_input(self):
        from repro.experiments import ext_stream_proportional

        rows = ext_stream_proportional.run(seed=0, trials=2)
        assert rows
        for row in rows:
            assert row["prop_dense_share"] >= row["fixed_dense_share"]
            # tracks the input distribution more closely
            assert abs(
                row["prop_dense_share"] - row["input_dense_share"]
            ) <= abs(
                row["fixed_dense_share"] - row["input_dense_share"]
            )
