"""Property tests for the pipeline facade over random document streams."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiversificationPipeline, is_cover
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery

WORDS = ["tiger", "golf", "lebron", "nba", "storm", "flood",
         "lunch", "coffee", "weekend"]

QUERIES = [
    TopicQuery(label="golf", keywords=frozenset({"tiger", "golf"})),
    TopicQuery(label="nba", keywords=frozenset({"lebron", "nba"})),
    TopicQuery(label="weather", keywords=frozenset({"storm", "flood"})),
]


def _documents(seed: int, n: int):
    rng = random.Random(seed)
    timestamps = sorted(rng.uniform(0, 600) for _ in range(n))
    return [
        Document(
            doc_id=i,
            timestamp=t,
            text=" ".join(rng.choices(WORDS, k=rng.randint(2, 6))),
        )
        for i, t in enumerate(timestamps)
    ]


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=40))
@settings(deadline=None, max_examples=30)
def test_batch_digest_always_covers(seed, n):
    pipeline = DiversificationPipeline(
        QUERIES, lam=60.0, dedup_distance=None
    )
    result = pipeline.digest(_documents(seed, n))
    assert is_cover(result.instance, result.posts)
    assert result.matched + result.unmatched_dropped == n


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=40))
@settings(deadline=None, max_examples=30)
def test_stream_feed_emissions_are_matched_posts(seed, n):
    pipeline = DiversificationPipeline(
        QUERIES, lam=60.0, tau=20.0,
        stream_algorithm="stream_scan", dedup_distance=None,
    )
    documents = _documents(seed, n)
    emissions = []
    for document in documents:
        emissions.extend(pipeline.feed(document))
    emissions.extend(pipeline.finish())
    matcher = pipeline.matcher
    by_id = {d.doc_id: d for d in documents}
    for emission in emissions:
        document = by_id[emission.post.uid]
        assert matcher.match(document.text)
        assert emission.delay <= max(20.0, 60.0) + 1e-9


@given(st.integers(min_value=0, max_value=10_000))
@settings(deadline=None, max_examples=15)
def test_dedup_only_reduces_output(seed):
    documents = _documents(seed, 30)
    # duplicate a handful of texts verbatim
    documents += [
        Document(doc_id=100 + i, timestamp=d.timestamp + 600.0,
                 text=d.text)
        for i, d in enumerate(documents[:5])
    ]
    documents.sort(key=lambda d: d.timestamp)
    with_dedup = DiversificationPipeline(
        QUERIES, lam=60.0, dedup_distance=0
    ).digest(documents)
    without = DiversificationPipeline(
        QUERIES, lam=60.0, dedup_distance=None
    ).digest(documents)
    assert with_dedup.matched <= without.matched
