"""Every example script must run end to end (deliverable smoke tests).

Executed in-process via runpy so assertion failures inside the examples
surface as test failures, with stdout captured and spot-checked for the
landmark lines each walkthrough promises.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

LANDMARKS = {
    "quickstart.py": ("OPT selects", "stream_scan"),
    "news_monitoring.py": ("profile topics:", "digest:"),
    "sentiment_timeline.py": ("fixed lambda", "proportional"),
    "streaming_dashboard.py": ("offline optimum", "Section 5.1"),
    "storm_tracker.py": ("spatiotemporal cover", "storm track"),
    "daily_digest.py": ("coverage vs budget", "per topic:"),
    "trace_a_request.py": ("assembled trace", "per-tenant SLO"),
}


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} missing"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    for landmark in LANDMARKS[script]:
        assert landmark in out, (script, landmark)


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(LANDMARKS), (
        "examples and smoke tests out of sync"
    )
