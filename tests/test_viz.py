"""Terminal visualisation helpers."""

from repro.core.budgeted import coverage_curve
from repro.core.instance import Instance
from repro.viz import budget_bars, label_lanes, timeline


def _instance():
    return Instance.from_specs(
        [(0.0, "a"), (5.0, "ab"), (10.0, "b")], lam=2.0
    )


class TestTimeline:
    def test_marks_posts_and_selection(self):
        instance = _instance()
        art = timeline(instance, selected=[instance.posts[1]], width=21)
        row = art.splitlines()[0]
        assert row[0] == "."
        assert row[10] == "#"
        assert row[20] == "."

    def test_axis_shows_range(self):
        art = timeline(_instance(), width=21)
        axis = art.splitlines()[1]
        assert axis.startswith("0")
        assert axis.endswith("10")

    def test_empty_instance(self):
        assert "empty" in timeline(Instance([], lam=1.0))

    def test_identical_values_collapse_left(self):
        instance = Instance.from_specs(
            [(3.0, "a"), (3.0, "a")], lam=1.0
        )
        row = timeline(instance, width=10).splitlines()[0]
        assert row[0] == "."
        assert row.count(".") == 1


class TestLabelLanes:
    def test_one_lane_per_label(self):
        art = label_lanes(_instance(), width=21)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a |")
        assert lines[1].startswith("b |")

    def test_lane_contents(self):
        instance = _instance()
        art = label_lanes(instance, selected=[instance.posts[1]],
                          width=21)
        lane_a = art.splitlines()[0].split("|")[1]
        # the multilabel post at value 5 is selected, shown as '#'
        assert lane_a[10] == "#"
        assert lane_a[0] == "."
        # value 10 post has no label a
        assert lane_a[20] == " "

    def test_empty_instance(self):
        assert "empty" in label_lanes(Instance([], lam=1.0))


class TestBudgetBars:
    def test_bars_track_fractions(self):
        curve = [(0, 0.0), (1, 0.5), (2, 1.0)]
        art = budget_bars(curve, width=10)
        lines = art.splitlines()
        assert lines[0].endswith("0.0%")
        assert "#####" in lines[1]
        assert lines[2].count("#") == 10

    def test_thinning_long_curves(self):
        curve = [(k, k / 100.0) for k in range(101)]
        art = budget_bars(curve, max_rows=5)
        assert len(art.splitlines()) == 5

    def test_empty_curve(self):
        assert "empty" in budget_bars([])

    def test_integration_with_coverage_curve(self):
        instance = _instance()
        art = budget_bars(coverage_curve(instance))
        assert "100.0%" in art
