"""The streaming dedup path under interleaved multi-session feeds.

The SimHash index must only learn fingerprints of *admitted* documents.
Before the fix pinned here, ``DiversificationPipeline.feed`` registered a
document's fingerprint during the duplicate probe — before the unmatched
filter, the monotonicity gate, and the supervisor's sanitization had run
— so a document the solver never saw could silently swallow a later,
perfectly legitimate near-twin.  The interleaved-session tests mirror the
serving layer, where many user sessions push documents through shared and
per-session pipelines in arbitrary interleavings.
"""

import math

import pytest

from repro import DiversificationPipeline, ResilienceConfig
from repro.errors import StreamOrderError
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.index.simhash import hamming_distance, simhash
from repro.resilience.policies import SanitizationPolicy

# Texts chosen so UNMATCHED and MATCHED_TWIN are SimHash near-duplicates
# at distance 10 (pinned below) while only the twin carries a keyword.
UNMATCHED = "weather is nice today by the lake"
MATCHED_TWIN = "weather is nice today by the tiger"
DEDUP_DISTANCE = 12


def _queries():
    return [
        TopicQuery(label="golf", keywords=frozenset({"tiger", "golf"})),
        TopicQuery(label="nba", keywords=frozenset({"lebron", "nba"})),
    ]


def _pipeline(**kwargs):
    # lam is kept below every inter-arrival gap so the "instant"
    # algorithm emits each admitted post — making admission observable.
    kwargs.setdefault("dedup_distance", DEDUP_DISTANCE)
    kwargs.setdefault("stream_algorithm", "instant")
    return DiversificationPipeline(_queries(), lam=0.1, **kwargs)


def test_fixture_texts_are_near_duplicates():
    distance = hamming_distance(simhash(UNMATCHED), simhash(MATCHED_TWIN))
    assert 0 < distance <= DEDUP_DISTANCE


class TestAdmissionGatesDedup:
    def test_unmatched_document_does_not_shadow_matched_twin(self):
        pipeline = _pipeline()
        assert pipeline.feed(Document(0, 0.0, UNMATCHED)) == []
        emissions = pipeline.feed(Document(1, 1.0, MATCHED_TWIN))
        # The twin is a legitimate, admitted post: it must reach the
        # solver (and, under "instant", be emitted immediately).
        assert [e.post.uid for e in emissions] == [1]
        pipeline.finish()

    def test_order_violation_does_not_poison_retry(self):
        pipeline = _pipeline()
        pipeline.feed(Document(0, 100.0, "tiger wins the open"))
        late = Document(1, 50.0, "lebron dominates the nba game")
        with pytest.raises(StreamOrderError):
            pipeline.feed(late)
        # The producer fixes the timestamp and re-sends the same message;
        # it must not collide with its own failed first attempt.
        emissions = pipeline.feed(
            Document(1, 100.0, "lebron dominates the nba game")
        )
        assert [e.post.uid for e in emissions] == [1]
        pipeline.finish()

    def test_true_duplicates_are_still_dropped(self):
        pipeline = _pipeline()
        first = pipeline.feed(Document(0, 0.0, "tiger wins the open"))
        second = pipeline.feed(Document(1, 1.0, "tiger wins the open"))
        assert [e.post.uid for e in first] == [0]
        assert second == []
        pipeline.finish()


class TestSupervisedDedup:
    def _supervised(self):
        return _pipeline(
            resilience=ResilienceConfig(policy=SanitizationPolicy()),
        )

    def test_quarantined_corrupt_value_does_not_shadow_redelivery(self):
        pipeline = self._supervised()
        # A mangled timestamp gets the post quarantined...
        bad = Document(0, math.nan, "tiger wins the open")
        assert pipeline.feed(bad) == []
        assert pipeline.supervisor.health.quarantined == 1
        assert not pipeline.supervisor.accepted(0)
        # ...then the transport re-parses and re-delivers the same
        # message.  It must be admitted, not dropped as a near-duplicate
        # of its own quarantined ghost.
        emissions = pipeline.feed(Document(1, 5.0, "tiger wins the open"))
        pipeline.finish()
        assert pipeline.supervisor is None
        assert [e.post.uid for e in emissions] == [1]

    def test_duplicate_uid_redelivery_does_not_reregister(self):
        pipeline = self._supervised()
        pipeline.feed(Document(0, 0.0, "tiger wins the open"))
        # Same uid, reworded beyond the SimHash radius: the supervisor
        # rejects it as a duplicate uid; registration must not blow up on
        # the already-registered doc_id.
        reworded = Document(0, 1.0, "lebron dominates the nba game")
        assert pipeline.feed(reworded) == []
        assert pipeline.supervisor.health.duplicates == 1
        pipeline.finish()


class TestInterleavedSessions:
    def test_sessions_have_independent_dedup_state(self):
        """Two per-session pipelines fed in interleaved order: session A's
        history must never shadow session B's documents."""
        session_a = _pipeline()
        session_b = _pipeline()
        text = "tiger wins the open"
        out_a1 = session_a.feed(Document(0, 0.0, text))
        out_b1 = session_b.feed(Document(100, 0.5, text))
        out_a2 = session_a.feed(Document(1, 1.0, text))
        out_b2 = session_b.feed(Document(101, 1.5, text))
        # each session admits its first copy and drops its own re-post
        assert [e.post.uid for e in out_a1] == [0]
        assert [e.post.uid for e in out_b1] == [100]
        assert out_a2 == []
        assert out_b2 == []
        session_a.finish()
        session_b.finish()

    def test_shared_pipeline_interleaved_feeds_keep_counts_exact(self):
        """One shared pipeline, two producers interleaving: duplicates
        are dropped exactly once each, non-duplicates all admitted."""
        pipeline = _pipeline()
        feed_plan = [
            (0, 0.0, "tiger wins the open"),            # A: admitted
            (100, 1.0, "lebron dominates the nba game"),  # B: admitted
            (1, 2.0, "tiger wins the open"),            # A: duplicate
            (101, 3.0, "lebron dominates the nba game"),  # B: duplicate
            (2, 4.0, UNMATCHED),                        # A: unmatched
            (102, 5.0, MATCHED_TWIN),                   # B: admitted
        ]
        emitted = []
        for uid, when, text in feed_plan:
            emitted.extend(pipeline.feed(Document(uid, when, text)))
        emitted.extend(pipeline.finish())
        assert sorted(e.post.uid for e in emitted) == [0, 100, 102]

    def test_interleaved_sessions_against_batch_reference(self):
        """The streaming dedup decisions match the batch digest over the
        same interleaved document set."""
        documents = [
            Document(0, 0.0, "tiger wins the open"),
            Document(100, 10.0, "lebron dominates the nba game"),
            Document(1, 20.0, "tiger wins the open"),
            Document(2, 30.0, "golf playoff goes to extra holes"),
            Document(101, 40.0, "nba trade rumors heat up"),
        ]
        stream = _pipeline()
        emitted = []
        for document in documents:
            emitted.extend(stream.feed(document))
        emitted.extend(stream.finish())
        batch = _pipeline().digest(documents)
        streamed_uids = {e.post.uid for e in emitted}
        # instant streaming emits every admitted post; the batch path
        # admits the same survivors into its instance.
        assert streamed_uids == {p.uid for p in batch.instance.posts}
