"""PostStore / DocumentProjector: projection equivalence with the batch
pipeline's preprocessing, ordering invariants, window expiry."""

import pytest

from repro.core.instance import Instance
from repro.core.post import Post
from repro.errors import ReproError
from repro.incremental import DocumentProjector, PostStore
from repro.index.inverted_index import Document
from repro.index.query import LabelMatcher, TopicQuery
from repro.pipeline import DiversificationPipeline

QUERIES = [
    TopicQuery("golf", ["golf", "pga"]),
    TopicQuery("nba", ["nba", "dunk"]),
    TopicQuery("tech", ["tech", "gadget"]),
]

TEXTS = [
    "golf pga birdie",
    "nba dunk highlight",
    "tech gadget launch",
    "golf nba crossover dunk pga",
    "nothing relevant here",
]


def make_docs(n, step=10.0):
    return [
        Document(i, i * step, f"{TEXTS[i % len(TEXTS)]} filler{i * 7}")
        for i in range(n)
    ]


def build_store(docs, dedup_distance=None):
    store = PostStore(DocumentProjector(
        QUERIES, dedup_distance=dedup_distance
    ))
    for doc in docs:
        store.ingest_document(doc)
    return store


class TestProjectionEquivalence:
    @pytest.mark.parametrize("dedup", [None, 3])
    def test_matches_batch_pipeline_preprocessing(self, dedup):
        docs = make_docs(30)
        # near-duplicates: same text as an earlier doc, later value
        docs += [
            Document(100 + i, 1000.0 + i, docs[i].text) for i in range(4)
        ]
        pipeline = DiversificationPipeline(
            QUERIES, lam=30.0, dedup_distance=dedup
        )
        batch = pipeline.digest(docs)
        store = build_store(docs, dedup_distance=dedup)
        instance = store.materialize([q.label for q in QUERIES], 30.0)
        assert instance.posts == batch.instance.posts
        assert instance.labels == batch.instance.labels
        assert store.projector.duplicates_dropped == \
            batch.duplicates_dropped
        assert store.live_documents - len(instance.posts) == \
            batch.unmatched_dropped

    def test_subset_materialization_equals_subset_batch(self):
        docs = make_docs(25)
        store = build_store(docs)
        subset = ["golf", "nba"]
        pipeline = DiversificationPipeline(
            [q for q in QUERIES if q.label in subset],
            lam=20.0, dedup_distance=None,
        )
        batch = pipeline.digest(docs)
        instance = store.materialize(subset, 20.0)
        assert instance.posts == batch.instance.posts
        assert instance.labels == frozenset(subset)

    def test_unmatched_documents_are_counted_not_stored(self):
        docs = [Document(1, 1.0, "nothing"), Document(2, 2.0, "golf")]
        store = build_store(docs)
        assert len(store) == 1
        assert store.live_documents == 2


class TestStoreInvariants:
    def test_posts_stay_sorted_under_shuffled_insert(self):
        store = PostStore()
        values = [5.0, 1.0, 9.0, 3.0, 3.0, 7.0]
        for uid, value in enumerate(values):
            store.add(Post(uid=uid, value=value,
                           labels=frozenset({"golf"}), text=""))
        instance = store.materialize(["golf"], 2.0)
        keys = [(p.value, p.uid) for p in instance.posts]
        assert keys == sorted(keys)
        # from_sorted must agree with the validating constructor
        strict = Instance(instance.posts, 2.0, labels=["golf"])
        assert strict.posts == instance.posts

    def test_duplicate_uid_rejected(self):
        store = PostStore()
        post = Post(uid=7, value=1.0, labels=frozenset({"golf"}), text="")
        store.add(post)
        with pytest.raises(ReproError):
            store.add(post)

    def test_posts_near_is_exact(self):
        store = PostStore()
        for uid, value in enumerate([0.0, 9.9, 10.0, 20.0, 30.0, 30.1]):
            store.add(Post(uid=uid, value=value,
                           labels=frozenset({"golf"}), text=""))
        near = store.posts_near("golf", 20.0, 10.0)
        assert [p.uid for p in near] == [2, 3, 4]
        assert store.posts_near("nba", 20.0, 10.0) == []


class TestExpiry:
    def test_expire_drops_old_posts_and_unmatched(self):
        docs = [
            Document(1, 1.0, "golf"),
            Document(2, 2.0, "nothing"),
            Document(3, 3.0, "nba dunk"),
            Document(4, 4.0, "golf pga"),
        ]
        store = build_store(docs)
        removed = store.expire(2.5)
        assert [p.uid for p in removed] == [1]
        assert store.horizon == 2.5
        assert len(store) == 2
        assert store.live_documents == 2  # unmatched value 2.0 expired too
        assert store.expired == 1
        instance = store.materialize(["golf", "nba", "tech"], 1.0)
        assert [p.uid for p in instance.posts] == [3, 4]

    def test_expire_trims_label_indexes(self):
        store = build_store(make_docs(12))
        store.expire(60.0)
        # posts_near must not resurrect expired posts
        for label in ("golf", "nba", "tech"):
            for post in store.posts_near(label, 0.0, 1000.0):
                assert post.value >= 60.0

    def test_horizon_never_regresses(self):
        store = build_store(make_docs(6))
        store.expire(30.0)
        store.expire(10.0)
        assert store.horizon == 30.0

    def test_stats_json_safe(self):
        import json

        store = build_store(make_docs(6), dedup_distance=3)
        store.expire(20.0)
        json.dumps(store.stats())


class TestMatcherSubsetLemma:
    def test_subset_matching_equals_full_match_intersection(self):
        # the relabeling in materialize() is sound because per-query
        # matching is independent: match over a subset of queries equals
        # the full match intersected with the subset's labels
        full = LabelMatcher(QUERIES)
        subset_queries = [q for q in QUERIES if q.label != "tech"]
        subset = LabelMatcher(subset_queries)
        universe = frozenset(q.label for q in subset_queries)
        for doc in make_docs(40):
            assert subset.match(doc.text) == \
                full.match(doc.text) & universe
