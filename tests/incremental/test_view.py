"""CoverView delta maintenance: instant-decision inserts, bounded
expiry repair, drift accounting, read memoization."""

import json
import random

import pytest

from repro.core.post import Post
from repro.errors import ReproError
from repro.incremental import CoverView, PostStore

LABELS = ("golf", "nba")


def make_post(uid, value, labels=("golf",)):
    return Post(uid=uid, value=float(value),
                labels=frozenset(labels), text=f"post {uid}")


def seeded_view(lam=10.0, **kwargs):
    store = PostStore()
    view = CoverView(store, LABELS, lam, **kwargs)
    view.seed([], baseline_size=1, epoch=0)
    return store, view


def feed(store, view, post):
    store.add(post)
    return view.apply_insert(post)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        store = PostStore()
        with pytest.raises(ReproError):
            CoverView(store, LABELS, -1.0)
        with pytest.raises(ReproError):
            CoverView(store, LABELS, 1.0, rebuild_ratio=0.5)
        with pytest.raises(ReproError):
            CoverView(store, LABELS, 1.0, rebuild_slack=-1)

    def test_starts_stale(self):
        view = CoverView(PostStore(), LABELS, 1.0)
        assert view.stale
        assert not view.fresh(0)
        assert not view.apply_insert(make_post(1, 0.0))


class TestInstantDecisionInsert:
    def test_first_post_per_label_is_selected(self):
        store, view = seeded_view(lam=10.0)
        assert feed(store, view, make_post(1, 0.0, ("golf",)))
        assert feed(store, view, make_post(2, 5.0, ("nba",)))
        assert not feed(store, view, make_post(3, 5.0, ("golf",)))
        assert {p.uid for p in view.cover_posts()} == {1, 2}

    def test_post_outside_lambda_is_selected(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 0.0))
        assert feed(store, view, make_post(2, 10.5))
        assert not feed(store, view, make_post(3, 10.0))

    def test_irrelevant_labels_ignored(self):
        store, view = seeded_view(lam=10.0)
        post = make_post(1, 0.0, ("tech",))
        store.add(post)
        assert not view.apply_insert(post)
        assert view.ledger.inserts == 0

    def test_members_relabeled_to_view_universe(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 0.0, ("golf", "tech")))
        (member,) = view.cover_posts()
        assert member.labels == frozenset({"golf"})

    def test_cover_valid_under_any_insertion_order(self):
        rng = random.Random(42)
        posts = [
            make_post(uid, rng.uniform(0, 100),
                      rng.sample(LABELS, rng.randint(1, 2)))
            for uid in range(60)
        ]
        for trial in range(5):
            rng.shuffle(posts)
            store, view = seeded_view(lam=7.0)
            for post in posts:
                feed(store, view, post)
            assert view.verify() == []


class TestExpiryRepair:
    def test_expired_member_evicted_and_neighbors_repair(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 0.0))   # selected
        feed(store, view, make_post(2, 5.0))   # covered by 1
        feed(store, view, make_post(3, 20.0))  # selected
        removed = store.expire(1.0)
        assert [p.uid for p in removed] == [1]
        assert view.apply_expire(removed) == 1
        # post 2 (value 5.0) lost its only cover; repair re-selects it
        assert {p.uid for p in view.cover_posts()} == {2, 3}
        assert view.verify() == []
        assert view.ledger.repairs == 1
        assert view.ledger.repaired_pairs >= 1

    def test_expiry_of_non_member_is_cheap(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 3.0))   # selected
        feed(store, view, make_post(2, 0.0))   # covered, not selected
        removed = store.expire(1.0)
        assert [p.uid for p in removed] == [2]
        assert view.apply_expire(removed) == 0
        assert view.ledger.expired_members == 0
        assert view.verify() == []

    def test_stale_view_ignores_deltas(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 0.0))
        view.invalidate()
        assert view.apply_expire(store.expire(1.0)) == 0
        assert view.cover_posts() == ()

    def test_repair_randomized_property(self):
        rng = random.Random(7)
        store, view = seeded_view(lam=5.0)
        uid = 0
        clock = 0.0
        for step in range(200):
            clock += rng.uniform(0.0, 2.0)
            post = make_post(uid, clock,
                             rng.sample(LABELS, rng.randint(1, 2)))
            uid += 1
            feed(store, view, post)
            if step % 17 == 0 and clock > 20.0:
                view.apply_expire(store.expire(clock - 20.0))
            assert view.verify() == []


class TestDrift:
    def test_drift_flags_needs_rebuild(self):
        store, view = seeded_view(
            lam=0.0, rebuild_ratio=1.0, rebuild_slack=2
        )
        # lam=0: every distinct value selects.  baseline=1, bound=3.
        for uid in range(4):
            feed(store, view, make_post(uid, float(uid)))
        assert view.needs_rebuild
        assert view.ledger.rebuild_flags == 1
        assert not view.fresh(0)
        assert view.drift_ratio() == 4.0

    def test_reseed_clears_drift(self):
        store, view = seeded_view(
            lam=0.0, rebuild_ratio=1.0, rebuild_slack=2
        )
        for uid in range(4):
            feed(store, view, make_post(uid, float(uid)))
        assert view.needs_rebuild
        view.seed(store.materialize(LABELS, 0.0).posts,
                  baseline_size=4, epoch=3)
        assert not view.needs_rebuild
        assert view.fresh(3)


class TestReadPath:
    def test_materialize_memoized_until_mutation(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 0.0))
        first = view.materialize()
        second = view.materialize()
        assert first[0] is second[0]
        assert first[1] is second[1]
        feed(store, view, make_post(2, 50.0))
        third = view.materialize()
        assert third[0] is not first[0]
        assert view.ledger.reads == 3

    def test_solution_is_canonical(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(2, 50.0))
        feed(store, view, make_post(1, 0.0))
        _, solution = view.materialize()
        assert solution.algorithm == "view:greedy_sc"
        assert [p.uid for p in solution.posts] == [1, 2]

    def test_snapshot_json_safe(self):
        store, view = seeded_view(lam=10.0)
        feed(store, view, make_post(1, 0.0))
        view.apply_expire(store.expire(0.5))
        payload = view.snapshot()
        json.dumps(payload)
        assert payload["size"] == len(view.cover_posts())
        assert payload["ledger"]["inserts"] == 1

    def test_epoch_discipline(self):
        store, view = seeded_view(lam=10.0)
        assert view.fresh(0)
        assert not view.fresh(1)
        view.epoch = 1
        assert view.fresh(1)
