"""Per-(label-set) view window overrides.

The store physically expires at the *widest* window any view needs
(``ViewRegistry.retention``); narrower overrides are per-view horizons
that clip reads without touching shared state.  These tests pin the
registry semantics (``set_window`` / ``window_for`` / ``retention`` /
``advance``), the view's own horizon maintenance, the store's clipped
read primitives, and the service-level ``set_view_window`` end to end.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.registry import solve
from repro.errors import ReproError
from repro.incremental import DocumentProjector, PostStore
from repro.incremental.registry import ViewRegistry
from repro.incremental.view import CoverView
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DigestRequest, DiversificationService, \
    ServiceConfig

QUERIES = [
    TopicQuery("golf", ["golf", "pga"]),
    TopicQuery("nba", ["nba", "dunk"]),
]

LAM = 30.0


def make_docs(n=24, step=10.0, offset=0):
    texts = ("golf pga birdie", "nba dunk highlight")
    return [
        Document(
            offset + i, (offset + i) * step,
            f"{texts[(offset + i) % 2]} filler{(offset + i) * 7}",
        )
        for i in range(n)
    ]


def build_store(docs):
    store = PostStore(DocumentProjector(QUERIES, dedup_distance=None))
    for doc in docs:
        store.ingest_document(doc)
    return store


def seeded_view(registry, store, labels, lam=LAM):
    """Seed a registry view from a real batch solve (epoch 0)."""
    key = ViewRegistry.key_for(labels, lam, "greedy_sc", "time")
    instance = store.materialize(labels, lam)
    solution = solve("greedy_sc", instance)
    view = registry.seed(
        key, solution.posts, len(solution.posts), registry.epoch
    )
    assert view is not None
    return key, view


def run(coro):
    return asyncio.run(coro)


# -- registry semantics ----------------------------------------------------


def test_window_for_override_beats_default_and_clears():
    registry = ViewRegistry(build_store([]), default_window=50.0)
    assert registry.window_for(("golf",)) == 50.0
    registry.set_window(("golf",), 20.0)
    assert registry.window_for(("golf",)) == 20.0
    assert registry.window_for(("nba",)) == 50.0
    assert registry.window_for(("golf", "nba")) == 50.0  # exact key only
    assert registry.windows() == {("golf",): 20.0}
    registry.set_window(("golf",), None)
    assert registry.window_for(("golf",)) == 50.0
    assert registry.windows() == {}


def test_retention_is_the_widest_window():
    store = build_store([])
    unbounded = ViewRegistry(store, default_window=None)
    assert unbounded.retention() is None
    unbounded.set_window(("golf",), 10.0)
    # an override can narrow a view, never widen unbounded retention
    assert unbounded.retention() is None

    bounded = ViewRegistry(store, default_window=50.0)
    assert bounded.retention() == 50.0
    bounded.set_window(("golf",), 20.0)  # narrower: retention unchanged
    assert bounded.retention() == 50.0
    bounded.set_window(("nba",), 80.0)  # wider: retention follows
    assert bounded.retention() == 80.0
    bounded.set_window(("nba",), None)
    assert bounded.retention() == 50.0


def test_set_window_invalidates_only_the_exact_label_set():
    store = build_store(make_docs())
    registry = ViewRegistry(store)
    _, golf_view = seeded_view(registry, store, ("golf",))
    _, both_view = seeded_view(registry, store, ("golf", "nba"))
    invalidated = registry.set_window(("golf",), 40.0)
    assert invalidated == 1
    assert golf_view.stale  # must re-seed against the new horizon
    assert golf_view.window == 40.0
    assert not both_view.stale  # different label set: untouched
    assert registry.invalidations == 1


def test_advance_slides_horizons_and_reports_affected_labels():
    docs = make_docs(24)  # values 0..230
    store = build_store(docs)
    registry = ViewRegistry(store, default_window=150.0)
    registry.set_window(("golf",), 50.0)  # narrower than retention
    _, golf_view = seeded_view(registry, store, ("golf",))
    _, nba_view = seeded_view(registry, store, ("nba",))
    # seeding already attached each view's clipped horizon
    assert golf_view.horizon == 180.0
    assert nba_view.horizon == 80.0
    # the corpus moves on: mirror the service's write path — ingest,
    # physical expiry at retention(), then advance the view horizons
    for doc in make_docs(10, offset=24):  # values up to 330
        post = store.ingest_document(doc)
        registry.apply_insert(post)
    removed = store.expire(330.0 - registry.retention())
    registry.apply_expire(removed)
    assert store.horizon == 180.0
    affected = registry.advance(store.max_value)
    # the narrower golf view clips itself past the store horizon, so
    # its labels must join the invalidation set...
    assert affected == {"golf"}
    assert golf_view.horizon == 280.0
    assert all(p.value >= 280.0 for p in golf_view.cover_posts())
    # ...while the default-window nba view lands exactly AT the store
    # horizon: the expiry pass already reported those labels
    assert nba_view.horizon == 180.0
    again = registry.advance(store.max_value)
    assert again == set()  # nothing moved: the no-op fast path


def test_seed_attaches_window_and_horizon():
    docs = make_docs(24)
    store = build_store(docs)
    registry = ViewRegistry(store, default_window=100.0)
    _, view = seeded_view(registry, store, ("golf",))
    assert view.window == 100.0
    assert view.horizon == 230.0 - 100.0


# -- view horizon maintenance ----------------------------------------------


def test_advance_horizon_evicts_repairs_and_stays_valid():
    store = build_store(make_docs(24))
    view = CoverView(store, ("golf",), LAM)
    instance = store.materialize(("golf",), LAM)
    solution = solve("greedy_sc", instance)
    view.seed(solution.posts, len(solution.posts), 0)
    assert view.verify() == []
    evicted = view.advance_horizon(115.0)
    assert evicted is not None
    assert view.horizon == 115.0
    assert all(p.value >= 115.0 for p in view.cover_posts())
    # the maintained cover still covers the clipped instance
    assert view.verify() == []
    clipped, _ = view.materialize()
    assert all(p.value >= 115.0 for p in clipped.posts)
    # moving backwards (or not at all) is the memo-preserving no-op
    assert view.advance_horizon(115.0) is None
    assert view.advance_horizon(50.0) is None


def test_inserts_behind_the_horizon_are_ignored():
    store = build_store(make_docs(24))
    view = CoverView(store, ("golf",), LAM)
    instance = store.materialize(("golf",), LAM)
    solution = solve("greedy_sc", instance)
    view.seed(solution.posts, len(solution.posts), 0)
    view.advance_horizon(100.0)
    from repro.core.post import Post

    stale_post = Post(uid=900, value=40.0, labels=frozenset({"golf"}),
                      text="late straggler")
    assert view.apply_insert(stale_post) is False
    assert 900 not in {p.uid for p in view.cover_posts()}


# -- store read primitives --------------------------------------------------


def test_live_documents_since_clips_matched_and_unmatched():
    docs = make_docs(10)  # values 0..90, all matched
    docs.append(Document(50, 55.0, "nothing relevant"))  # unmatched
    store = build_store(docs)
    assert store.live_documents == 11
    assert store.live_documents_since(None) == 11
    assert store.live_documents_since(0.0) == 11
    # >= 50.0: matched posts at 50..90 (5) plus the unmatched at 55
    assert store.live_documents_since(50.0) == 6
    assert store.live_documents_since(56.0) == 4
    assert store.live_documents_since(1000.0) == 0


def test_materialize_min_value_equals_filtered_batch():
    docs = make_docs(24)
    store = build_store(docs)
    clipped = store.materialize(("golf", "nba"), LAM, min_value=100.0)
    full = store.materialize(("golf", "nba"), LAM)
    assert clipped.posts == tuple(
        p for p in full.posts if p.value >= 100.0
    )
    assert clipped.labels == full.labels


# -- the service surface ----------------------------------------------------


def make_service(**overrides) -> DiversificationService:
    overrides.setdefault("dedup_distance", None)
    return DiversificationService(QUERIES, ServiceConfig(**overrides))


def test_set_view_window_preconditions():
    views_off = make_service(views=False)
    with pytest.raises(ReproError):
        views_off.set_view_window(("golf",), 10.0)
    views_off.close()

    deduped = DiversificationService(
        QUERIES, ServiceConfig(dedup_distance=3)
    )
    with pytest.raises(ReproError):
        deduped.set_view_window(("golf",), 10.0)
    deduped.close()

    service = make_service()
    with pytest.raises(ReproError):
        service.set_view_window(("curling",), 10.0)
    with pytest.raises(ReproError):
        service.set_view_window(("golf",), 0.0)
    with pytest.raises(ReproError):
        service.set_view_window((), 10.0)
    service.close()


def test_narrower_override_clips_one_label_set_only():
    service = make_service()  # no default window: keep everything
    service.ingest(make_docs(24))  # values 0..230
    epoch_before = service.epoch
    epoch = service.set_view_window(("golf",), 100.0)
    assert epoch > epoch_before  # the override bumps the corpus epoch
    golf = run(service.digest(DigestRequest(lam=LAM, labels=("golf",))))
    assert golf.status == "ok"
    # clipped at max_value - window = 130: 5 golf posts remain, and
    # the 6 nba documents inside the clipped window count as unmatched
    assert all(p.value >= 130.0 for p in golf.result.instance.posts)
    assert golf.result.matched == 5
    assert golf.result.unmatched_dropped == 6
    nba = run(service.digest(DigestRequest(lam=LAM, labels=("nba",))))
    assert min(p.value for p in nba.result.instance.posts) < 130.0
    service.close()


def test_override_windows_survive_further_ingests_and_views():
    service = make_service()
    service.ingest(make_docs(24))
    service.set_view_window(("golf",), 100.0)
    first = run(
        service.digest(DigestRequest(lam=LAM, labels=("golf",)))
    )  # batch solve + view seed at the clipped horizon
    assert not first.view
    service.ingest(make_docs(4, offset=24))  # values up to 270
    second = run(
        service.digest(DigestRequest(lam=LAM, labels=("golf",)))
    )
    assert second.view  # served from the maintained view
    # the view slid its own horizon with the corpus: 270 - 100
    assert all(
        p.value >= 170.0 for p in second.result.instance.posts
    )
    from repro.core.coverage import uncovered_pairs

    assert uncovered_pairs(
        second.result.instance, second.result.solution.posts
    ) == []
    service.close()


def test_wider_override_retains_more_than_the_default():
    service = make_service(view_window=50.0)
    service.ingest(make_docs(10))  # values 0..90, horizon at 40
    service.set_view_window(("golf",), 200.0)
    service.ingest(make_docs(14, offset=10))  # values up to 230
    # nba stays on the 50.0 default: clipped at 230 - 50 = 180
    nba = run(service.digest(DigestRequest(lam=LAM, labels=("nba",))))
    assert all(p.value >= 180.0 for p in nba.result.instance.posts)
    # golf's wider window reaches back to the physical horizon (40.0,
    # set before the override): far older than the default allows
    golf = run(service.digest(DigestRequest(lam=LAM, labels=("golf",))))
    oldest = min(p.value for p in golf.result.instance.posts)
    assert oldest < 180.0
    assert oldest >= 40.0
    service.close()


def test_global_window_behavior_is_unchanged_by_the_feature():
    # no overrides anywhere: the pre-existing global-window semantics
    # (physical expiry + carried-forward cache on untouched labels)
    service = make_service(view_window=100.0)
    service.ingest(make_docs(24))
    response = run(service.digest(DigestRequest(lam=LAM)))
    assert all(
        p.value >= 130.0 for p in response.result.instance.posts
    )
    registry = service._views
    assert registry.retention() == 100.0
    assert registry.windows() == {}
    # an unmatched-only ingest must still carry cached digests forward
    # (advance() reports nothing when horizons track the store's own)
    service.ingest([Document(999, 9999.0, "nothing relevant here")])
    again = run(service.digest(DigestRequest(lam=LAM)))
    assert again.cached or again.view
    service.close()


def test_introspect_exposes_window_overrides():
    service = make_service(view_window=50.0)
    service.ingest(make_docs(10))
    service.set_view_window(("golf",), 75.0)
    snapshot = service.introspect()["views"]
    assert snapshot["default_window"] == 50.0
    assert snapshot["window_overrides"] == {"golf": 75.0}
    assert snapshot["retention"] == 75.0
    service.close()
