"""Satellite property suite: the same posts ingested in shuffled orders
must leave the maintained view cover verifier-valid and within the
declared drift bound of the batch solver's cover — including across
checkpoint/restore and window expiry."""

import random

import pytest

from repro.core.coverage import uncovered_pairs
from repro.index.inverted_index import Document
from repro.index.query import LabelMatcher, TopicQuery
from repro.service import DigestRequest, DiversificationService, \
    ServiceConfig

from ..service.conftest import run

TOPIC_TEXTS = ("golf putt", "nba dunk", "cpu kernel")
LAM = 30.0


def make_queries():
    return [
        TopicQuery("golf", ["golf", "putt"]),
        TopicQuery("nba", ["nba", "dunk"]),
        TopicQuery("tech", ["cpu", "kernel"]),
    ]


def make_service(**overrides):
    # dedup stays off: SimHash kept-sets are arrival-order dependent, so
    # shuffled ingest with dedup on would legitimately change the corpus
    overrides.setdefault("dedup_distance", None)
    return DiversificationService(make_queries(), ServiceConfig(**overrides))


def topic_docs(n, offset=0, step=10.0):
    docs = []
    for i in range(n):
        uid = offset + i
        text = (
            f"{TOPIC_TEXTS[i % 3]} story{uid} "
            f"tok{uid * 7} pad{uid * 13}"
        )
        docs.append(Document(uid, uid * step, text))
    return docs


def assert_view_within_declared_bound(service):
    """Every servable (non-stale) view satisfies its drift bound."""
    snapshot = service.introspect()["views"]
    assert snapshot is not None
    for view in snapshot["views"]:
        if view["stale"]:
            continue
        bound = (
            service.config.view_rebuild_ratio * view["baseline_size"]
            + service.config.view_rebuild_slack
        )
        assert view["size"] <= bound, view
        assert not view["needs_rebuild"] or view["size"] > bound


@pytest.mark.parametrize("seed", range(5))
def test_shuffled_ingest_matches_batch_reference(seed):
    docs = topic_docs(36)
    rng = random.Random(seed)
    rng.shuffle(docs)
    viewed = make_service(audit_sample=1.0)
    reference = make_service(views=False)
    request = DigestRequest(lam=LAM)
    served_from_view = 0
    chunk = max(3, 1 + seed)
    for start in range(0, len(docs), chunk):
        batch = docs[start:start + chunk]
        viewed.ingest(batch)
        reference.ingest(batch)
        got = run(viewed.digest(request))
        want = run(reference.digest(request))
        # identical projected instance: both paths see one corpus
        assert got.result.instance.posts == want.result.instance.posts
        # whatever was served must be a valid λ-cover of that instance
        assert uncovered_pairs(
            got.result.instance, got.result.solution.posts
        ) == []
        if got.view:
            served_from_view += 1
        assert_view_within_declared_bound(viewed)
    # deltas, not re-solves, absorbed the later chunks
    assert served_from_view > 0
    assert viewed.solves < reference.solves
    findings = viewed.auditor.audit_pending()
    assert findings and all(f.covered for f in findings)
    assert "view" in {f.source for f in findings}


@pytest.mark.parametrize("seed", range(3))
def test_shuffled_orders_agree_with_each_other(seed):
    """Two services fed the same documents in different orders converge
    to the same served instance, and both serve valid covers."""
    docs = topic_docs(30)
    other = list(docs)
    random.Random(seed).shuffle(other)
    first = make_service()
    second = make_service()
    first.ingest(docs)
    # interleave digests with ingest chunks on the shuffled twin so its
    # view really is built by deltas, not one cold batch solve
    request = DigestRequest(lam=LAM)
    for start in range(0, len(other), 7):
        second.ingest(other[start:start + 7])
        run(second.digest(request))
    a = run(first.digest(request))
    b = run(second.digest(request))
    assert a.result.instance.posts == b.result.instance.posts
    for response in (a, b):
        assert uncovered_pairs(
            response.result.instance, response.result.solution.posts
        ) == []


def streaming_overrides(**overrides):
    overrides.setdefault("stream_algorithm", "instant")
    overrides.setdefault("stream_lam", 0.1)
    return overrides


def test_equivalence_across_checkpoint_restore():
    service = make_service(**streaming_overrides(audit_sample=1.0))
    request = DigestRequest(lam=LAM)
    before = topic_docs(12)

    async def play():
        for doc in before:
            await service.feed(doc)
        checkpoint = service.checkpoint()
        await service.digest(request)
        for doc in topic_docs(9, offset=100):
            await service.feed(doc)
        grown = await service.digest(request)
        service.restore(checkpoint)
        rolled_back = await service.digest(request)
        return grown, rolled_back

    grown, rolled_back = run(play())
    # the rolled-back digest matches a fresh batch service fed only the
    # pre-checkpoint documents
    reference = make_service(views=False)
    reference.ingest(before)
    want = run(reference.digest(request))
    assert rolled_back.result.instance.posts == want.result.instance.posts
    assert {p.uid for p in grown.result.instance.posts} > \
        {p.uid for p in rolled_back.result.instance.posts}
    for response in (grown, rolled_back):
        assert uncovered_pairs(
            response.result.instance, response.result.solution.posts
        ) == []
    assert_view_within_declared_bound(service)
    findings = service.auditor.audit_pending()
    assert findings and all(f.covered for f in findings)


def test_views_keep_serving_after_restore():
    """Post-restore the rebuilt projection re-seeds on the next solve and
    subsequent ingests are once again absorbed as deltas."""
    service = make_service(**streaming_overrides())
    request = DigestRequest(lam=LAM)

    async def play():
        for doc in topic_docs(9):
            await service.feed(doc)
        checkpoint = service.checkpoint()
        service.restore(checkpoint)
        await service.digest(request)         # re-seeds the view
        service.ingest(topic_docs(3, offset=200))
        return await service.digest(request)

    response = run(play())
    assert response.view
    assert uncovered_pairs(
        response.result.instance, response.result.solution.posts
    ) == []


def test_equivalence_under_window_expiry():
    window = 100.0
    service = make_service(view_window=window, audit_sample=1.0)
    request = DigestRequest(lam=20.0)
    docs = topic_docs(40, step=5.0)
    matcher = LabelMatcher(make_queries())
    for start in range(0, len(docs), 8):
        service.ingest(docs[start:start + 8])
        response = run(service.digest(request))
        horizon = max(d.timestamp for d in docs[:start + 8]) - window
        expected = {
            d.doc_id for d in docs[:start + 8]
            if d.timestamp >= horizon and matcher.match(d.text)
        }
        assert {p.uid for p in response.result.instance.posts} == expected
        assert uncovered_pairs(
            response.result.instance, response.result.solution.posts
        ) == []
        assert_view_within_declared_bound(service)
    views = service.introspect()["views"]
    assert views["store"]["expired"] > 0
    findings = service.auditor.audit_pending()
    assert findings and all(f.covered for f in findings)
