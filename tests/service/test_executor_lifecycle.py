"""The service's warm solver executor: one pool across requests.

The scaling fix made pooled executors persistent; the service is the
caller that benefits — it holds ONE executor instance for its lifetime,
so the thread pool spun up by the first digest serves every later one.
These tests pin the lifecycle: warm across requests, surfaced in
introspection, killed cleanly on checkpoint restore and on ``close()``
(both of which leave the service serviceable — the next solve lazily
rebuilds the pool).
"""

from __future__ import annotations

from repro.index.inverted_index import Document
from repro.service import DigestRequest

from .conftest import make_docs, make_service, run


def streaming_service(**overrides):
    overrides.setdefault("stream_algorithm", "instant")
    overrides.setdefault("stream_lam", 0.1)
    return make_service(**overrides)


def test_one_executor_instance_for_the_service_lifetime():
    service = make_service(executor="thread", workers=2)
    executor = service.executor
    assert service.batcher.executor is executor
    service.ingest(make_docs(12))

    async def scenario():
        first = await service.digest(DigestRequest(lam=30.0))
        second = await service.digest(
            DigestRequest(lam=40.0)  # different key: a real second solve
        )
        return first, second

    first, second = run(scenario())
    assert first.status == "ok" and second.status == "ok"
    assert service.executor is executor  # never swapped out
    service.close()


def test_introspect_reports_executor_state():
    service = make_service(executor="thread", workers=3)
    info = service.introspect()["queues"]["executor"]
    assert info == {"name": "thread", "workers": 3, "pool_alive": False}
    service.close()


def test_restore_closes_the_warm_pool():
    service = streaming_service(executor="thread", workers=2)

    async def scenario():
        for i in range(4):
            await service.feed(Document(
                i, 1000.0 + 10 * i,
                f"golf putt stream{i} marker{i * 17}",
            ))
        checkpoint = service.checkpoint()
        await service.digest(DigestRequest(lam=30.0, labels=("golf",)))
        return checkpoint

    checkpoint = run(scenario())
    # force a warm pool even if the solve path stayed inline
    service.executor.run(len, [((1, 2),), ((3,),)])
    assert service.executor.alive
    service.restore(checkpoint)
    assert not service.executor.alive  # rollback killed the workers

    # the restored service still serves (pool rebuilds lazily)
    response = run(
        service.digest(DigestRequest(lam=30.0, labels=("golf",)))
    )
    assert response.status == "ok"
    service.close()


def test_close_is_idempotent_and_not_terminal():
    service = make_service(executor="thread", workers=2)
    service.ingest(make_docs(6))
    service.executor.run(len, [((1, 2),), ((3,),)])
    assert service.executor.alive
    service.close()
    assert not service.executor.alive
    service.close()  # idempotent

    response = run(service.digest(DigestRequest(lam=30.0)))
    assert response.status == "ok"
    service.close()
