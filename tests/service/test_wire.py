"""Round-trip property tests for the wire format (satellite 1).

Every serializable type must satisfy ``from_dict(json.loads(json.dumps(
x.to_dict()))) == x`` — i.e. survive a real JSON hop, not just a dict
copy.  ``Instance`` has identity equality by design, so its round trip is
checked field-wise.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.solution import Solution
from repro.pipeline import DigestResult
from repro.resilience.ladder import DowngradeEvent
from repro.service import DigestRequest, ServiceResponse
from repro.stream.events import Emission

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
labels_st = st.frozensets(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=4
)
texts = st.text(max_size=40)

posts_st = st.builds(
    Post,
    uid=st.integers(min_value=0, max_value=10**6),
    value=finite,
    labels=labels_st,
    text=texts,
)


def hop(payload):
    """Force the payload through an actual JSON encode/decode."""
    return json.loads(json.dumps(payload))


@st.composite
def instances(draw):
    posts = draw(
        st.lists(posts_st, min_size=1, max_size=8, unique_by=lambda p: p.uid)
    )
    lam = draw(st.floats(min_value=0.0, max_value=1e6, width=32))
    universe = frozenset().union(*(p.labels for p in posts))
    return Instance(posts, lam, labels=universe)


@st.composite
def solutions(draw):
    instance = draw(instances())
    size = draw(st.integers(min_value=0, max_value=len(instance.posts)))
    return Solution(
        algorithm=draw(st.sampled_from(["opt", "greedy_sc", "scan+"])),
        posts=tuple(instance.posts[:size]),
        elapsed=draw(st.floats(min_value=0.0, max_value=10.0, width=32)),
    )


downgrades_st = st.builds(
    DowngradeEvent,
    from_algorithm=st.sampled_from(["opt", "greedy_sc"]),
    to_algorithm=st.sampled_from(["scan+", "scan"]),
    trigger=st.sampled_from(["budget", "error"]),
    elapsed=st.floats(min_value=0.0, max_value=5.0, width=32),
    at=st.one_of(st.none(), finite),
)


@given(posts_st)
def test_post_round_trips(post):
    assert Post.from_dict(hop(post.to_dict())) == post


@given(posts_st)
def test_post_labels_serialize_sorted(post):
    assert post.to_dict()["labels"] == sorted(post.labels)


@settings(max_examples=50)
@given(instances())
def test_instance_round_trips_fieldwise(instance):
    back = Instance.from_dict(hop(instance.to_dict()))
    assert back.posts == instance.posts
    assert back.lam == instance.lam
    assert back.labels == instance.labels


@settings(max_examples=50)
@given(solutions())
def test_solution_round_trips(solution):
    back = Solution.from_dict(hop(solution.to_dict()))
    assert back == solution
    assert back.elapsed == solution.elapsed  # compare=False, check anyway


@given(posts_st, st.floats(min_value=0.0, max_value=1e6, width=32))
def test_emission_round_trips(post, delay):
    emission = Emission(post=post, emitted_at=post.value + delay)
    back = Emission.from_dict(hop(emission.to_dict()))
    assert back == emission
    assert back.delay == emission.delay


@given(downgrades_st)
def test_downgrade_event_round_trips(event):
    assert DowngradeEvent.from_dict(hop(event.to_dict())) == event


@settings(max_examples=30)
@given(
    solutions(),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.lists(downgrades_st, max_size=3),
)
def test_digest_result_round_trips(solution, duplicates, unmatched, events):
    instance = Instance(
        solution.posts or [Post(0, 0.0, frozenset("a"))],
        lam=1.0,
    )
    result = DigestResult(
        solution=solution,
        instance=instance,
        matched=len(instance.posts),
        duplicates_dropped=duplicates,
        unmatched_dropped=unmatched,
        downgrades=tuple(events),
    )
    back = DigestResult.from_dict(hop(result.to_dict()))
    assert back.solution == result.solution
    assert back.instance.posts == result.instance.posts
    assert back.instance.lam == result.instance.lam
    assert back.instance.labels == result.instance.labels
    assert back.matched == result.matched
    assert back.duplicates_dropped == result.duplicates_dropped
    assert back.unmatched_dropped == result.unmatched_dropped
    assert back.downgrades == result.downgrades


def test_service_response_is_json_safe():
    posts = (Post(1, 5.0, frozenset({"a"}), text="hello"),)
    instance = Instance(posts, lam=2.0)
    result = DigestResult(
        solution=Solution("greedy_sc", posts),
        instance=instance,
        matched=1,
        duplicates_dropped=0,
        unmatched_dropped=2,
    )
    response = ServiceResponse(
        status="ok", result=result, algorithm="greedy_sc",
        cached=True, latency_s=0.01, epoch=3,
    )
    payload = hop(response.to_dict())
    assert payload["status"] == "ok"
    assert payload["cached"] is True
    assert payload["epoch"] == 3
    restored = DigestResult.from_dict(payload["result"])
    assert restored.solution == result.solution


def test_shed_response_serializes_without_result():
    response = ServiceResponse(
        status="shed", result=None, algorithm="greedy_sc",
        reason="token bucket empty",
    )
    payload = hop(response.to_dict())
    assert payload["result"] is None
    assert payload["reason"] == "token bucket empty"


def test_digest_request_normalises_labels():
    request = DigestRequest(lam=5.0, labels=("b", "a", "b"))
    assert request.labels == ("a", "b")
