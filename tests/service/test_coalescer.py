"""Unit tests for single-flight coalescing and solver micro-batching."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.engine.executors import SerialExecutor, ThreadExecutor
from repro.service import MicroBatcher, RequestCoalescer

from .conftest import run


def test_lone_submit_computes():
    async def main():
        coalescer = RequestCoalescer()

        async def compute():
            return 42

        result, coalesced = await coalescer.submit("k", compute)
        assert (result, coalesced) == (42, False)
        assert coalescer.inflight() == 0

    run(main())


def test_concurrent_identical_keys_share_one_run():
    async def main():
        coalescer = RequestCoalescer()
        gate = asyncio.Event()
        calls = []

        async def compute():
            calls.append(1)
            await gate.wait()
            return object()  # identity proves sharing

        async def late_release():
            await asyncio.sleep(0)
            gate.set()

        results = await asyncio.gather(
            *[coalescer.submit("k", compute) for _ in range(6)],
            late_release(),
        )
        outcomes = results[:6]
        assert len(calls) == 1
        leaders = [r for r, c in outcomes if not c]
        followers = [r for r, c in outcomes if c]
        assert len(leaders) == 1 and len(followers) == 5
        assert all(f is leaders[0] for f in followers)

    run(main())


def test_distinct_keys_do_not_coalesce():
    async def main():
        coalescer = RequestCoalescer()

        async def compute_for(key):
            await asyncio.sleep(0)
            return key * 2

        pairs = await asyncio.gather(
            *[
                coalescer.submit(k, lambda k=k: compute_for(k))
                for k in range(4)
            ]
        )
        assert [r for r, _ in pairs] == [0, 2, 4, 6]
        assert not any(c for _, c in pairs)

    run(main())


def test_leader_failure_propagates_and_releases_key():
    async def main():
        coalescer = RequestCoalescer()
        gate = asyncio.Event()

        async def explode():
            await gate.wait()
            raise ValueError("boom")

        async def late_release():
            await asyncio.sleep(0)
            gate.set()

        outcomes = await asyncio.gather(
            coalescer.submit("k", explode),
            coalescer.submit("k", explode),
            late_release(),
            return_exceptions=True,
        )
        assert all(
            isinstance(o, ValueError) for o in outcomes[:2]
        ), outcomes
        # key released: the next submit computes fresh
        async def recover():
            return "fine"

        assert await coalescer.submit("k", recover) == ("fine", False)

    run(main())


def test_sequential_submits_compute_each_time():
    """Coalescing is in-flight-only; memoisation is the cache's job."""

    async def main():
        coalescer = RequestCoalescer()
        calls = []

        async def compute():
            calls.append(1)
            return len(calls)

        first = await coalescer.submit("k", compute)
        second = await coalescer.submit("k", compute)
        assert first == (1, False)
        assert second == (2, False)

    run(main())


def test_batcher_collects_same_tick_jobs_into_one_batch():
    async def main():
        batcher = MicroBatcher(SerialExecutor(), window=0.0, max_batch=8)
        results = await asyncio.gather(
            *[batcher.run(lambda i=i: i * i) for i in range(5)]
        )
        assert results == [0, 1, 4, 9, 16]
        assert batcher.batches == 1
        assert batcher.jobs == 5

    run(main())


def test_batcher_flushes_at_max_batch():
    async def main():
        batcher = MicroBatcher(SerialExecutor(), window=60.0, max_batch=2)
        results = await asyncio.gather(
            *[batcher.run(lambda i=i: i) for i in range(4)]
        )
        assert results == [0, 1, 2, 3]
        assert batcher.batches == 2  # never waited for the 60s window

    run(main())


def test_batcher_isolates_job_failures():
    async def main():
        batcher = MicroBatcher(SerialExecutor(), max_batch=3)

        def ok():
            return "ok"

        def bad():
            raise RuntimeError("this job only")

        outcomes = await asyncio.gather(
            batcher.run(ok), batcher.run(bad), batcher.run(ok),
            return_exceptions=True,
        )
        assert outcomes[0] == "ok" and outcomes[2] == "ok"
        assert isinstance(outcomes[1], RuntimeError)

    run(main())


def test_batcher_on_thread_executor_runs_off_loop():
    async def main():
        batcher = MicroBatcher(ThreadExecutor(2), max_batch=4)
        loop_thread = threading.get_ident()
        threads = await asyncio.gather(
            *[batcher.run(threading.get_ident) for _ in range(4)]
        )
        assert all(t != loop_thread for t in threads)

    run(main())


def test_batcher_rejects_bad_parameters():
    with pytest.raises(ValueError):
        MicroBatcher(SerialExecutor(), window=-1.0)
    with pytest.raises(ValueError):
        MicroBatcher(SerialExecutor(), max_batch=0)
