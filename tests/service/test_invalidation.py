"""Checkpoint-restore cache coherence (satellite 6).

The scenario: a service streams along, takes a checkpoint, keeps
streaming and caches digests computed against that *newer* corpus, then
crashes and is restored from the checkpoint.  The restored service has
rolled back to the checkpoint's corpus — serving any digest cached after
the checkpoint would hand out posts the service no longer remembers.
The epoch bump inside :meth:`DiversificationService.restore` is what
forbids that; these tests pin it.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.index.inverted_index import Document
from repro.service import DigestRequest

from .conftest import make_service, run


def golf_doc(uid: int, ts: float, extra: str = "") -> Document:
    return Document(uid, ts, f"golf putt stream{uid} marker{uid * 17} {extra}")


def streaming_service(**overrides):
    overrides.setdefault("stream_algorithm", "instant")
    overrides.setdefault("stream_lam", 0.1)
    return make_service(**overrides)


def test_restore_must_not_serve_post_checkpoint_cached_digests():
    service = streaming_service()
    request = DigestRequest(lam=30.0, labels=("golf",))

    async def scenario():
        # phase 1: stream to a known-good point, checkpoint it
        for i in range(4):
            await service.feed(golf_doc(i, 1000.0 + 10 * i))
        checkpoint = service.checkpoint()

        # phase 2: stream PAST the checkpoint, then cache a digest that
        # can see the post-checkpoint posts
        for i in range(4, 8):
            await service.feed(golf_doc(i, 1000.0 + 10 * i))
        newer = await service.digest(request)
        assert {p.uid for p in newer.result.instance.posts} == set(range(8))
        cached = await service.digest(request)
        assert cached.cached  # the dangerous entry exists

        # phase 3: crash-and-restore to the checkpoint
        pre_restore_epoch = service.epoch
        new_epoch = service.restore(checkpoint)
        assert new_epoch > pre_restore_epoch

        # the restored service recomputes: no cache hit, and the digest
        # only contains the checkpointed half of the stream
        recovered = await service.digest(request)
        return newer, recovered

    newer, recovered = run(scenario())
    assert not recovered.cached
    assert recovered.epoch > newer.epoch
    recovered_uids = {p.uid for p in recovered.result.instance.posts}
    assert recovered_uids == {0, 1, 2, 3}  # nothing from the lost future


def test_restore_rolls_back_streamed_corpus_but_keeps_ingested():
    from .conftest import make_docs

    service = streaming_service()
    service.ingest(make_docs(n=6))

    async def scenario():
        for i in range(3):
            await service.feed(golf_doc(100 + i, 5000.0 + 10 * i))
        checkpoint = service.checkpoint()
        for i in range(3, 9):
            await service.feed(golf_doc(100 + i, 5000.0 + 10 * i))
        assert service.health()["corpus"] == {"ingested": 6, "streamed": 9}
        service.restore(checkpoint)
        assert service.health()["corpus"] == {"ingested": 6, "streamed": 3}

    run(scenario())


def test_stream_continues_after_restore():
    service = streaming_service()

    async def scenario():
        for i in range(3):
            await service.feed(golf_doc(i, 1000.0 + 10 * i))
        checkpoint = service.checkpoint()
        await service.feed(golf_doc(3, 1030.0))
        service.restore(checkpoint)
        # uid 3 was rolled back: re-feeding it is not a duplicate
        emissions = await service.feed(golf_doc(3, 1030.0, "redelivered"))
        assert emissions
        assert service.health()["supervisor"]["duplicates"] == 0
        # but a checkpointed uid IS still a duplicate after restore
        await service.feed(golf_doc(2, 1035.0, "late duplicate"))
        assert service.health()["supervisor"]["duplicates"] == 1
        return service.health()["corpus"]["streamed"]

    assert run(scenario()) == 4


def test_near_duplicate_dedup_survives_restore():
    """adopt_supervisor rebuilds the SimHash index from the journal."""
    service = streaming_service(dedup_distance=3)
    base = "golf putt morning round on the lakeside course today"

    async def scenario():
        await service.feed(Document(0, 1000.0, base))
        checkpoint = service.checkpoint()
        service.restore(checkpoint)
        # an exact near-twin (same text, new uid) must still be dropped
        emissions = await service.feed(Document(1, 1010.0, base))
        assert emissions == []
        assert service.health()["corpus"]["streamed"] == 1

    run(scenario())


def test_checkpoint_before_any_feed_is_an_error():
    service = streaming_service()
    with pytest.raises(ReproError):
        service.checkpoint()
