"""Service-level tests for the incremental read path: view serving,
epoch discipline, restore invalidation, windowing, poisoning, and the
view-related introspection surfaces."""

from __future__ import annotations

import json

import pytest

from repro.core.coverage import uncovered_pairs
from repro.errors import ReproError
from repro.index.inverted_index import Document
from repro.observability import facade
from repro.service import DigestRequest, ServiceConfig

from .conftest import make_docs, make_service, run


# -- serving ------------------------------------------------------------------


def test_view_serves_after_ingest_without_resolve():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)

    with facade.session() as bundle:
        run(service.digest(request))          # solve + seed
        service.ingest(make_docs(n=3, offset=500))
        response = run(service.digest(request))

    assert response.view and not response.cached
    assert service.solves == 1
    assert response.result.solution.algorithm.startswith("view:")
    assert uncovered_pairs(
        response.result.instance, response.result.solution.posts
    ) == []
    counters = bundle.registry.counters()
    assert counters["service.view_hits"] == 1
    assert counters["service.views.seeds"] == 1


def test_unmatched_only_ingest_keeps_cache_entry():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    # an unmatched document touches no labels: the fine-grained epoch
    # bump carries the cached digest forward instead of purging it
    service.ingest([Document(999, 9990.0, "nothing relevant here")])
    second = run(service.digest(request))
    assert second.cached and not second.view
    assert service.cache.stats.carried_forward == 1


def test_view_result_counts_match_batch_result():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    first = run(service.digest(request))
    # one matched doc (invalidates golf entries) plus one unmatched doc
    # (never enters the instance, still counted as a live document)
    service.ingest([
        Document(998, 9980.0, "golf putt fresh nine98"),
        Document(999, 9990.0, "nothing relevant here"),
    ])
    second = run(service.digest(request))
    assert second.view
    assert second.result.matched == len(second.result.instance.posts)
    assert second.result.matched == first.result.matched + 1
    assert second.result.unmatched_dropped == \
        first.result.unmatched_dropped + 1


def test_view_served_response_round_trips_to_dict():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    service.ingest(make_docs(n=3, offset=500))
    response = run(service.digest(request))
    payload = response.to_dict()
    json.dumps(payload)
    assert payload["view"] is True and payload["cached"] is False


def test_cache_hit_still_wins_over_view():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    second = run(service.digest(request))
    assert second.cached and not second.view


# -- epoch discipline ---------------------------------------------------------


def test_stale_epoch_view_never_served():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    assert service._views is not None
    # wind the registry back and purge the cache: the request's epoch
    # no longer matches the registry's committed one — the read must
    # miss, and the solve's seed is refused as dead-epoch
    service._views.epoch -= 1
    service.cache.bump_epoch("test-purge")
    response = run(service.digest(request))
    assert not response.view
    assert service._views.stale_reads >= 1
    assert service._views.stale_seeds >= 1


def test_dimension_override_bypasses_views():
    service = make_service()
    service.ingest(make_docs())
    run(service.digest(DigestRequest(lam=30.0)))
    response = run(
        service.digest(DigestRequest(lam=30.0, dimension="sequence"))
    )
    assert not response.view
    # and the off-dimension solve did not seed a view on its dimension
    assert all(
        v["dimension"] == "time"
        for v in service.introspect()["views"]["views"]
    )


def test_dead_epoch_seed_is_refused():
    from repro.service import ViewRegistry

    service = make_service()
    service.ingest(make_docs(n=6))
    registry = service._views
    key = ViewRegistry.key_for(("golf",), 30.0, "greedy_sc", "time")
    # a solve that straddled an invalidation carries a dead epoch; the
    # registry must refuse it, mirroring cache.put's stale-drop rule
    assert registry.seed(key, [], 1, epoch=registry.epoch - 1) is None
    assert registry.stale_seeds == 1
    assert registry.get(key) is None


# -- restore / poisoning ------------------------------------------------------


def streaming_service(**overrides):
    overrides.setdefault("stream_algorithm", "instant")
    overrides.setdefault("stream_lam", 0.1)
    return make_service(**overrides)


def golf_stream_docs(n, start_uid=0):
    return [
        Document(
            start_uid + i,
            1000.0 + 10.0 * (start_uid + i),
            f"golf putt live{start_uid + i} hole{i * 31}",
        )
        for i in range(n)
    ]


def test_restore_invalidates_views_then_reseeds():
    service = streaming_service()
    request = DigestRequest(lam=30.0)

    async def play():
        for doc in golf_stream_docs(4):
            await service.feed(doc)
        await service.digest(request)
        checkpoint = service.checkpoint()
        service.restore(checkpoint)
        return await service.digest(request)

    response = run(play())
    # first post-restore read cannot come from a view (all invalidated)
    assert not response.view
    assert service.solves == 2
    # but the solve re-seeded: the next delta is absorbed incrementally
    run(service.feed(golf_stream_docs(1, start_uid=90)[0]))
    after = run(service.digest(request))
    assert after.view


def test_duplicate_uid_across_paths_poisons_views():
    service = streaming_service()
    service.ingest(make_docs(n=4))
    with facade.session() as bundle:
        # stream a doc whose uid collides with an ingested one
        run(service.feed(Document(0, 5000.0, "golf putt clash")))
    assert service._views_poisoned
    counters = bundle.registry.counters()
    assert counters["service.views.poisoned"] == 1
    # the corpus genuinely holds duplicate uids, which the batch
    # pipeline also rejects — poisoning turns that into an error
    # *response*, never a crash or a stale view serve
    response = run(service.digest(DigestRequest(lam=30.0)))
    assert response.status == "error" and not response.view
    assert "duplicate" in response.reason
    assert service.health()["views"]["poisoned"]


def test_restore_unpoisons_views():
    service = streaming_service()

    async def play():
        for doc in golf_stream_docs(3):
            await service.feed(doc)
        checkpoint = service.checkpoint()
        service.ingest([Document(0, 5000.0, "golf putt clash")])
        assert service._views_poisoned
        # roll back to the checkpoint: the clash document is forgotten
        # by the stream journal but not by _ingested — rebuild decides
        service.restore(checkpoint)

    run(play())
    # the rebuild re-hit the duplicate (ingested docs survive restore),
    # so views stay dark — poisoning is sticky until a clean rebuild
    assert service._views_poisoned


# -- windowing ----------------------------------------------------------------


def test_view_window_requires_time_dimension_and_no_dedup():
    with pytest.raises(ReproError):
        ServiceConfig(view_window=10.0, dedup_distance=None,
                      dimension="sequence")
    with pytest.raises(ReproError):
        ServiceConfig(view_window=10.0, dedup_distance=3)
    with pytest.raises(ReproError):
        ServiceConfig(view_window=10.0, dedup_distance=None, views=False)
    with pytest.raises(ReproError):
        ServiceConfig(view_window=-1.0, dedup_distance=None)


def test_view_window_bounds_served_instance():
    service = make_service(view_window=50.0)
    request = DigestRequest(lam=10.0)
    service.ingest(make_docs(n=12, step=10.0))  # values 0..110
    response = run(service.digest(request))
    values = [p.value for p in response.result.instance.posts]
    assert min(values) >= 110.0 - 50.0
    assert service.introspect()["views"]["store"]["expired"] > 0


# -- introspection ------------------------------------------------------------


def test_health_and_introspect_expose_views():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    service.ingest(make_docs(n=3, offset=500))
    run(service.digest(request))

    health = service.health()["views"]
    assert not health["poisoned"]
    assert health["hits"] == 1 and health["seeds"] == 1

    deep = service.introspect()["views"]
    json.dumps(deep)
    (view,) = deep["views"]
    assert view["ledger"]["inserts"] >= 3
    assert view["baseline_size"] >= 1

    service_off = make_service(views=False)
    assert service_off.health()["views"] is None
    assert service_off.introspect()["views"] is None


def test_views_off_service_never_serves_views():
    service = make_service(views=False)
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    service.ingest(make_docs(n=3, offset=500))
    response = run(service.digest(request))
    assert not response.view
    assert service.solves == 2
