"""Durable ingest wired into the serving tier.

The serving-side contract: replayed ingest goes through the same
supervised feed path as live traffic, every admitted arrival bumps the
cache epoch, and a crash-restart-replay cycle can never serve a digest
cached against a corpus the revived service does not hold.
"""

from __future__ import annotations

import pytest

from repro.resilience.policies import SanitizationPolicy
from repro.resilience.supervisor import ResilienceConfig
from repro.service import DigestRequest

from .conftest import make_docs, make_service, run


def make_durable_service(**overrides):
    overrides.setdefault(
        "resilience", ResilienceConfig(policy=SanitizationPolicy())
    )
    return make_service(**overrides)


class TestDurableIngestWiring:
    def test_applied_documents_join_corpus_and_bump_epoch(
        self, tmp_path
    ):
        service = make_durable_service()
        ingest = service.durable_ingest(tmp_path)
        epoch_before = service.epoch
        for doc in make_docs(9):
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        assert service.corpus_size() == 9
        assert service.epoch > epoch_before

    def test_ingest_and_feed_share_the_dedup_gate(self, tmp_path):
        """A document already fed live must not re-enter the corpus
        when its WAL record replays — the supervisor uid gate and the
        idempotency key both refuse it."""
        service = make_durable_service()
        ingest = service.durable_ingest(tmp_path)
        docs = make_docs(6)
        run(service.feed(docs[0]))
        for doc in docs:
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        assert service.corpus_size() == len(docs)
        assert ingest.duplicate_applies() == 0

    def test_emissions_fan_out_to_subscriptions(self, tmp_path):
        service = make_durable_service()
        subscription = service.subscribe()
        ingest = service.durable_ingest(tmp_path)
        for doc in make_docs(12):
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        assert subscription.delivered > 0


class TestCrashRecovery:
    def test_revived_service_matches_uninterrupted_corpus(
        self, tmp_path
    ):
        service = make_durable_service()
        ingest = service.durable_ingest(tmp_path)
        for doc in make_docs(15):
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        expected = ingest.corpus_digest()

        revived_service = make_durable_service()
        revived = revived_service.durable_ingest(tmp_path)
        assert revived.recover() is True
        revived.drain()
        revived.flush()
        assert revived.corpus_digest() == expected
        assert revived.duplicate_applies() == 0
        assert revived_service.corpus_size() == service.corpus_size()

    def test_replayed_ingest_invalidates_cached_digests(self, tmp_path):
        """The headline serving property: a digest cached before an
        ingest recovery is unreachable once the replay restores the
        corpus — the restore path bumps the epoch under the cache."""
        service = make_durable_service()
        ingest = service.durable_ingest(tmp_path)
        docs = make_docs(12)
        for doc in docs[:8]:
            ingest.append(doc)
        ingest.drain()
        ingest.flush()

        request = DigestRequest(lam=30.0)
        first = run(service.digest(request))
        again = run(service.digest(request))
        assert again.cached  # sanity: the digest did get cached

        # the ingest consumer crashes; a replacement recovers over the
        # same directory into the same live service, then replays the
        # producer's full batch
        revived = service.durable_ingest(tmp_path)
        revived.recover()
        for doc in docs:
            revived.append(doc)
        revived.drain()
        revived.flush()

        response = run(service.digest(request))
        assert not response.cached
        assert response.epoch > first.epoch
        assert response.result is not None
        assert revived.duplicate_applies() == 0

    def test_recovery_bumps_epoch_before_serving(self, tmp_path):
        service = make_durable_service()
        ingest = service.durable_ingest(tmp_path)
        for doc in make_docs(6):
            ingest.append(doc)
        ingest.drain()
        ingest.flush()

        revived_service = make_durable_service()
        revived = revived_service.durable_ingest(tmp_path)
        epoch_fresh = revived_service.epoch
        revived.recover()
        assert revived_service.epoch > epoch_fresh
