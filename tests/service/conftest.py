"""Shared fixtures for the serving-layer tests.

Everything here is deterministic: texts carry per-document unique tokens
so SimHash never accidentally merges two fixtures, timestamps are evenly
spaced, and services default to ``dedup_distance=None`` so document
counts stay exact unless a test opts dedup back in.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

import pytest

from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DiversificationService, ServiceConfig

TOPIC_TEXTS = ("golf putt", "nba dunk", "cpu kernel")


def make_queries() -> List[TopicQuery]:
    return [
        TopicQuery("golf", ["golf", "putt"]),
        TopicQuery("nba", ["nba", "dunk"]),
        TopicQuery("tech", ["cpu", "kernel"]),
    ]


def make_docs(
    n: int = 24, step: float = 10.0, offset: int = 0
) -> List[Document]:
    """``n`` documents cycling through the three topics, ``step`` apart."""
    docs = []
    for i in range(n):
        uid = offset + i
        text = (
            f"{TOPIC_TEXTS[i % 3]} update number{uid} "
            f"token{uid * 7} extra{uid * 13}"
        )
        docs.append(Document(uid, uid * step, text))
    return docs


def make_service(
    queries: Optional[Sequence[TopicQuery]] = None,
    **overrides,
) -> DiversificationService:
    overrides.setdefault("dedup_distance", None)
    return DiversificationService(
        queries if queries is not None else make_queries(),
        ServiceConfig(**overrides),
    )


def run(coro):
    """The suite has no pytest-asyncio; drive coroutines explicitly."""
    return asyncio.run(coro)


@pytest.fixture
def queries() -> List[TopicQuery]:
    return make_queries()


@pytest.fixture
def docs() -> List[Document]:
    return make_docs()
