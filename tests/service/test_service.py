"""End-to-end tests for :class:`DiversificationService`.

The acceptance criteria from the issue live here: N identical concurrent
requests cost exactly one solver run (asserted through observability
counters) and return byte-identical results; overload degrades down the
ladder and sheds at the hard watermark with zero unhandled exceptions;
injected stream faults surface as health counters, never as crashes.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.errors import ReproError, ServiceOverloadError
from repro.core.post import Post
from repro.index.inverted_index import Document
from repro.observability import facade
from repro.resilience.faults import FaultInjector
from repro.resilience.policies import SanitizationPolicy
from repro.resilience.supervisor import ResilienceConfig
from repro.service import DigestRequest, ServiceConfig

from .conftest import make_docs, make_queries, make_service, run


def canonical(response) -> str:
    return json.dumps(response.result.to_dict(), sort_keys=True)


# -- coalescing (acceptance criterion) ---------------------------------------


def test_identical_concurrent_requests_share_one_solve():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0, labels=("golf", "nba"))

    async def burst():
        return await asyncio.gather(
            *[service.digest(request) for _ in range(10)]
        )

    with facade.session() as bundle:
        responses = run(burst())

    counters = bundle.registry.counters()
    assert counters["service.solves"] == 1
    assert counters["service.coalesced"] == 9
    assert counters["service.requests"] == 10
    assert service.solves == 1
    leaders = [r for r in responses if not r.coalesced]
    assert len(leaders) == 1
    assert all(r.status == "ok" for r in responses)
    payloads = {canonical(r) for r in responses}
    assert len(payloads) == 1  # byte-identical results


def test_equivalent_requests_coalesce_across_label_order():
    """The coalesce key is normalised, not the request object."""
    service = make_service()
    service.ingest(make_docs())

    async def burst():
        return await asyncio.gather(
            service.digest(DigestRequest(lam=30.0, labels=("golf", "nba"))),
            service.digest(DigestRequest(lam=30.0, labels=("nba", "golf"))),
        )

    run(burst())
    assert service.solves == 1


def test_distinct_requests_do_not_coalesce_but_batch():
    service = make_service()
    service.ingest(make_docs())

    async def burst():
        return await asyncio.gather(
            *[
                service.digest(DigestRequest(lam=float(20 + i)))
                for i in range(4)
            ]
        )

    responses = run(burst())
    assert service.solves == 4
    assert not any(r.coalesced for r in responses)
    assert service.batcher.batches == 1  # one executor dispatch


# -- caching -----------------------------------------------------------------


def test_second_request_is_served_from_cache():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)

    with facade.session() as bundle:
        first = run(service.digest(request))
        second = run(service.digest(request))

    assert not first.cached and second.cached
    assert canonical(first) == canonical(second)
    assert service.solves == 1
    counters = bundle.registry.counters()
    assert counters["service.cache.hits"] == 1
    assert counters["service.cache.misses"] == 1


def test_ingest_invalidates_cache():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    first = run(service.digest(request))
    service.ingest(make_docs(n=6, offset=1000))
    second = run(service.digest(request))
    assert not second.cached
    assert second.epoch > first.epoch
    # the maintained view absorbed the ingest as a delta: the stale
    # cache entry is gone, but no second batch solve ran either —
    # and the new documents are still visible in the served digest
    assert second.view
    assert service.solves == 1
    assert len(second.result.instance.posts) > len(first.result.instance.posts)


def test_ingest_invalidates_cache_views_off():
    # with views disabled the PR-4 contract holds: every post-ingest
    # digest is a fresh batch solve
    service = make_service(views=False)
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    first = run(service.digest(request))
    service.ingest(make_docs(n=6, offset=1000))
    second = run(service.digest(request))
    assert not second.cached
    assert not second.view
    assert second.epoch > first.epoch
    assert service.solves == 2
    assert len(second.result.instance.posts) > len(first.result.instance.posts)


def test_stream_advance_invalidates_cache_only_when_admitted():
    service = make_service()
    service.ingest(make_docs())
    request = DigestRequest(lam=30.0)
    run(service.digest(request))
    epoch = service.epoch

    # an unmatched document is dropped by sanitization: no epoch bump
    run(service.feed(Document(5000, 50000.0, "nothing relevant here")))
    assert service.epoch == epoch
    assert run(service.digest(request)).cached

    # an admitted document advances the corpus: cache invalidated
    run(service.feed(Document(5001, 50010.0, "golf putt streamed fresh")))
    assert service.epoch > epoch
    response = run(service.digest(request))
    assert not response.cached
    assert 5001 in {p.uid for p in response.result.instance.posts}


# -- admission control --------------------------------------------------------


def degrade_service(**overrides):
    overrides.setdefault("soft_watermark", 1)
    overrides.setdefault("hard_watermark", 100)
    overrides.setdefault("degrade_ladder", ("greedy_sc", "scan+", "scan"))
    service = make_service(**overrides)
    service.ingest(make_docs())
    return service


def test_pressure_degrades_down_the_ladder():
    service = degrade_service()

    async def burst():
        return await asyncio.gather(
            *[
                service.digest(DigestRequest(lam=float(20 + i)))
                for i in range(3)
            ]
        )

    responses = run(burst())
    assert [r.status for r in responses] == ["ok", "degraded", "degraded"]
    assert [r.algorithm for r in responses] == ["greedy_sc", "scan+", "scan"]
    assert all(r.result is not None for r in responses)
    assert service.admission.decisions["degrade"] == 2


def test_degradation_clamps_at_the_last_rung():
    service = degrade_service()

    async def burst():
        return await asyncio.gather(
            *[
                service.digest(DigestRequest(lam=float(20 + i)))
                for i in range(6)
            ]
        )

    responses = run(burst())
    assert all(r.result is not None for r in responses)
    assert responses[-1].algorithm == "scan"  # not past the end


def test_hard_watermark_sheds_without_exceptions():
    service = make_service(soft_watermark=1, hard_watermark=2)
    service.ingest(make_docs())

    async def burst():
        return await asyncio.gather(
            *[
                service.digest(DigestRequest(lam=float(20 + i)))
                for i in range(6)
            ]
        )

    with facade.session() as bundle:
        responses = run(burst())

    shed = [r for r in responses if r.status == "shed"]
    served = [r for r in responses if r.result is not None]
    assert len(shed) == 4 and len(served) == 2
    assert all(r.result is None for r in shed)
    assert all("hard watermark" in r.reason for r in shed)
    assert bundle.registry.counters()["service.shed"] == 4


def test_token_bucket_sheds_overflow():
    service = make_service(rate=0.000001, burst=2.0)
    service.ingest(make_docs())

    async def burst():
        return await asyncio.gather(
            *[
                service.digest(DigestRequest(lam=float(20 + i)))
                for i in range(5)
            ]
        )

    responses = run(burst())
    statuses = [r.status for r in responses]
    assert statuses.count("shed") == 3
    assert all("token bucket" in r.reason
               for r in responses if r.status == "shed")


def test_raise_on_shed_opts_into_exceptions():
    service = make_service(
        rate=0.000001, burst=1.0, raise_on_shed=True
    )
    service.ingest(make_docs(n=6))

    async def two():
        await service.digest(DigestRequest(lam=25.0))
        await service.digest(DigestRequest(lam=26.0))

    with pytest.raises(ServiceOverloadError):
        run(two())


# -- error surfacing ----------------------------------------------------------


def test_unknown_labels_become_error_responses():
    service = make_service()
    service.ingest(make_docs(n=6))
    response = run(
        service.digest(DigestRequest(lam=30.0, labels=("astrology",)))
    )
    assert response.status == "error"
    assert response.result is None
    assert "astrology" in response.reason
    assert service.errors == 1


def test_unknown_algorithm_becomes_error_response():
    service = make_service()
    service.ingest(make_docs(n=6))
    response = run(
        service.digest(DigestRequest(lam=30.0, algorithm="quantum"))
    )
    assert response.status == "error"
    assert "quantum" in response.reason
    # the key was released: a valid retry works
    ok = run(service.digest(DigestRequest(lam=30.0)))
    assert ok.status == "ok"


def test_config_rejects_unknown_names():
    with pytest.raises(ReproError):
        ServiceConfig(algorithm="quantum")
    with pytest.raises(ReproError):
        ServiceConfig(degrade_ladder=("greedy_sc", "quantum"))
    with pytest.raises(ReproError):
        ServiceConfig(stream_algorithm="quantum")
    with pytest.raises(ReproError):
        ServiceConfig(executor="process")  # live closures don't pickle


# -- subscriptions ------------------------------------------------------------


def streaming_service(**overrides):
    overrides.setdefault("stream_algorithm", "instant")
    overrides.setdefault("stream_lam", 0.1)
    return make_service(**overrides)


def golf_docs(n, start_uid=0):
    return [
        Document(
            start_uid + i,
            1000.0 + 10.0 * (start_uid + i),
            f"golf putt live{start_uid + i} hole{i * 31}",
        )
        for i in range(n)
    ]


def test_subscription_label_filtering():
    service = streaming_service()
    golf_sub = service.subscribe(labels=["golf"], session="alice")
    all_sub = service.subscribe(session="bob")

    async def play():
        for doc in golf_docs(3):
            await service.feed(doc)
        await service.feed(Document(900, 10000.0, "nba dunk clip900"))

    run(play())
    golf_seen = golf_sub.drain()
    assert len(golf_seen) == 3
    assert all("golf" in e.post.labels for e in golf_seen)
    assert len(all_sub.drain()) == 4
    assert golf_sub.filtered == 1


def test_subscribe_rejects_unknown_labels():
    service = streaming_service()
    with pytest.raises(ReproError):
        service.subscribe(labels=["astrology"])


def test_unsubscribe_stops_delivery():
    service = streaming_service()
    sub = service.subscribe(labels=["golf"])
    run(service.feed(golf_docs(1)[0]))
    service.unsubscribe(sub)
    run(service.feed(golf_docs(1, start_uid=50)[0]))
    assert len(sub.drain()) == 1


def test_subscription_next_awaits_future_emissions():
    service = streaming_service()
    sub = service.subscribe(labels=["golf"])

    async def scenario():
        consumer = asyncio.ensure_future(sub.next())
        await asyncio.sleep(0)  # the consumer is now parked on a waiter
        await service.feed(golf_docs(1)[0])
        return await asyncio.wait_for(consumer, timeout=2)

    emission = run(scenario())
    assert "golf" in emission.post.labels
    assert len(sub) == 0


def test_subscription_overflow_drops_oldest():
    service = streaming_service(subscription_depth=2)
    sub = service.subscribe(labels=["golf"])

    async def flood():
        for doc in golf_docs(5):
            await service.feed(doc)

    run(flood())
    kept = sub.drain()
    assert len(kept) == 2
    assert sub.dropped == 3
    assert [e.post.uid for e in kept] == [3, 4]  # newest survive


def test_finish_fans_out_tail_emissions():
    # tau far beyond the last arrival: every decision deadline is still
    # pending when the stream ends, so the tail only appears on finish()
    service = streaming_service(
        stream_algorithm="stream_scan+", stream_lam=0.1, tau=1000.0
    )
    sub = service.subscribe()

    async def play():
        for doc in golf_docs(4):
            await service.feed(doc)
        return await service.finish()

    tail = run(play())
    assert len(sub.drain()) >= len(tail) > 0


# -- fault tolerance ----------------------------------------------------------


def test_injected_faults_surface_as_health_not_exceptions():
    policy = SanitizationPolicy(
        on_malformed_value="clamp", reorder_buffer=4
    )
    service = streaming_service(
        resilience=ResilienceConfig(policy=policy)
    )
    clean = [
        Post(
            uid=i,
            value=1000.0 + 10.0 * i,
            labels=frozenset({"golf"}),
            text=f"golf putt live{i} hole{i * 31}",
        )
        for i in range(40)
    ]
    injector = FaultInjector(
        seed=7, drop=0.1, duplicate=0.15, delay=0.1,
        reorder=0.1, corrupt=0.15, displacement=3,
    )
    mangled = injector.apply(clean)

    async def play():
        for post in mangled:
            await service.feed(
                Document(post.uid, post.value, post.text)
            )
        await service.flush_stream()
        return await service.digest(DigestRequest(lam=30.0))

    response = run(play())  # zero unhandled exceptions is the assertion
    assert response.status in ("ok", "degraded")
    health = service.health()["supervisor"]
    assert health["arrivals"] == len(mangled)
    assert health["duplicates"] > 0
    assert health["admitted"] <= len(clean)
    # admitted stream documents became digest corpus
    assert service.health()["corpus"]["streamed"] > 0


def test_service_with_math_nan_timestamp_does_not_crash():
    service = streaming_service()
    run(service.feed(Document(1, math.nan, "golf putt broken")))
    assert service.health()["supervisor"]["quarantined"] >= 1


# -- health -------------------------------------------------------------------


def test_health_snapshot_is_json_safe_and_counts():
    service = streaming_service()
    service.ingest(make_docs(n=6))
    sub = service.subscribe(labels=["golf"], session="alice")

    async def act():
        await service.digest(DigestRequest(lam=30.0))
        await service.digest(DigestRequest(lam=30.0))
        for doc in golf_docs(2):
            await service.feed(doc)

    run(act())
    health = json.loads(json.dumps(service.health()))
    assert health["requests"] == 2
    assert health["solves"] == 1
    assert health["cache"]["hits"] == 1
    assert health["corpus"] == {"ingested": 6, "streamed": 2}
    assert health["subscriptions"][str(sub.sid)]["delivered"] == 2
    assert health["pending"] == 0
