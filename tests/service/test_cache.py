"""Unit tests for the epoch-keyed result cache."""

from __future__ import annotations

import pytest

from repro.service import ResultCache
from repro.service.cache import CacheKey


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def key(cache, labels=("golf",), lam=30.0, algorithm="greedy_sc"):
    return cache.key_for(labels, lam, algorithm, "time")


def test_put_get_round_trip(clock):
    cache = ResultCache(clock=clock)
    k = key(cache)
    assert cache.get(k) is None
    assert cache.put(k, "digest")
    assert cache.get(k) == "digest"
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_key_for_normalises_labels(clock):
    cache = ResultCache(clock=clock)
    assert key(cache, labels=("b", "a", "a")) == key(cache, labels=("a", "b"))


def test_distinct_parameters_distinct_keys(clock):
    cache = ResultCache(clock=clock)
    base = key(cache)
    assert key(cache, lam=31.0) != base
    assert key(cache, algorithm="scan+") != base
    assert key(cache, labels=("nba",)) != base


def test_bump_epoch_purges_and_unreaches(clock):
    cache = ResultCache(clock=clock)
    k = key(cache)
    cache.put(k, "old")
    assert cache.bump_epoch("ingest") == 1
    assert len(cache) == 0
    assert cache.stats.invalidations == 1
    # the stale key misses even if a caller kept it around
    assert cache.get(k) is None
    # and a fresh key for the same query is a different key
    assert key(cache) != k
    assert key(cache).epoch == 1


def test_put_refuses_dead_epoch_keys(clock):
    """A solve that straddled an invalidation must not resurrect the old
    corpus."""
    cache = ResultCache(clock=clock)
    stale = key(cache)
    cache.bump_epoch("stream-advance")
    assert not cache.put(stale, "stale-digest")
    assert len(cache) == 0


def test_lru_eviction_order(clock):
    cache = ResultCache(capacity=2, clock=clock)
    k1, k2, k3 = (key(cache, lam=float(i)) for i in range(3))
    cache.put(k1, 1)
    cache.put(k2, 2)
    assert cache.get(k1) == 1  # refresh k1; k2 becomes LRU
    cache.put(k3, 3)
    assert cache.get(k2) is None
    assert cache.get(k1) == 1
    assert cache.get(k3) == 3
    assert cache.stats.evictions == 1


def test_ttl_expiry_is_lazy(clock):
    cache = ResultCache(ttl=5.0, clock=clock)
    k = key(cache)
    cache.put(k, "digest")
    clock.advance(4.9)
    assert cache.get(k) == "digest"
    clock.advance(0.2)
    assert cache.get(k) is None
    assert cache.stats.expirations == 1
    assert k not in cache


def test_hit_rate(clock):
    cache = ResultCache(clock=clock)
    k = key(cache)
    assert cache.hit_rate() == 0.0
    cache.get(k)
    cache.put(k, 1)
    cache.get(k)
    assert cache.hit_rate() == 0.5


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)
    with pytest.raises(ValueError):
        ResultCache(ttl=0.0)


def test_cache_key_is_hashable_and_value_typed():
    k = CacheKey(0, ("a",), 1.0, "scan", "time")
    assert hash(k) == hash(CacheKey(0, ("a",), 1.0, "scan", "time"))


# -- label-targeted invalidation ---------------------------------------------


def test_label_bump_invalidates_only_touched_entries(clock):
    cache = ResultCache(clock=clock)
    golf = key(cache, labels=("golf",))
    nba = key(cache, labels=("nba",))
    both = key(cache, labels=("golf", "nba"))
    for k, v in ((golf, "g"), (nba, "n"), (both, "gn")):
        cache.put(k, v)
    epoch = cache.bump_epoch("ingest", labels={"golf"})
    assert epoch == 1
    # golf-touching entries are gone — under old or re-derived keys
    assert cache.get(golf) is None
    assert cache.get(key(cache, labels=("golf",))) is None
    assert cache.get(key(cache, labels=("golf", "nba"))) is None
    # the disjoint entry survives, re-keyed to the new epoch
    assert cache.get(key(cache, labels=("nba",))) == "n"
    assert cache.get(nba) is None  # ...but not under its dead key
    assert cache.stats.invalidations == 2
    assert cache.stats.carried_forward == 1
    assert cache.stats.invalidations_by_label == {"golf": 2}


def test_label_bump_counts_each_affected_label(clock):
    cache = ResultCache(clock=clock)
    cache.put(key(cache, labels=("golf", "nba")), "gn")
    cache.put(key(cache, labels=("golf", "tech")), "gt")
    cache.bump_epoch("ingest", labels={"golf", "nba"})
    by_label = cache.stats.invalidations_by_label
    assert by_label == {"golf": 2, "nba": 1}


def test_empty_label_bump_carries_everything(clock):
    cache = ResultCache(clock=clock)
    cache.put(key(cache, labels=("golf",)), "g")
    cache.put(key(cache, labels=("nba",)), "n")
    epoch = cache.bump_epoch("noop-ingest", labels=set())
    assert epoch == 1
    assert cache.stats.invalidations == 0
    assert cache.stats.carried_forward == 2
    assert cache.get(key(cache, labels=("golf",))) == "g"
    assert cache.get(key(cache, labels=("nba",))) == "n"


def test_none_label_bump_purges_everything(clock):
    cache = ResultCache(clock=clock)
    cache.put(key(cache, labels=("golf",)), "g")
    cache.put(key(cache, labels=("nba",)), "n")
    cache.bump_epoch("restore", labels=None)
    assert len(cache) == 0
    assert cache.stats.invalidations == 2
    assert cache.stats.carried_forward == 0


def test_label_bump_survivor_respects_ttl(clock):
    cache = ResultCache(ttl=5.0, clock=clock)
    cache.put(key(cache, labels=("nba",)), "n")
    clock.advance(4.0)
    cache.bump_epoch("ingest", labels={"golf"})
    # the carry-forward does not refresh the entry's deadline
    clock.advance(1.5)
    assert cache.get(key(cache, labels=("nba",))) is None
    assert cache.stats.expirations == 1
