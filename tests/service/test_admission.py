"""Unit tests for the token bucket and the admission controller."""

from __future__ import annotations

import pytest

from repro.service import AdmissionController, TokenBucket
from repro.service.admission import ADMIT, DEGRADE, SHED


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert bucket.available() == 3.0
    assert all(bucket.try_acquire() for _ in range(3))
    assert not bucket.try_acquire()


def test_bucket_refills_continuously_up_to_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    for _ in range(3):
        bucket.try_acquire()
    clock.now = 0.75  # 1.5 tokens back
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.now = 100.0  # refill clamps at burst
    assert bucket.available() == 3.0


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=-1.0)


def test_admit_below_soft_watermark():
    controller = AdmissionController(soft_watermark=4, hard_watermark=8)
    decision = controller.admit(queue_depth=3)
    assert decision.action == ADMIT
    assert decision.degrade_steps == 0


def test_degrade_steps_scale_with_depth():
    controller = AdmissionController(soft_watermark=4, hard_watermark=100)
    assert controller.admit(4).degrade_steps == 1
    assert controller.admit(8).degrade_steps == 2
    assert controller.admit(13).degrade_steps == 3


def test_shed_at_hard_watermark():
    controller = AdmissionController(soft_watermark=4, hard_watermark=8)
    decision = controller.admit(8)
    assert decision.action == SHED
    assert "hard watermark" in decision.reason


def test_shed_on_empty_bucket_even_when_queue_is_shallow():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    controller = AdmissionController(bucket=bucket)
    assert controller.admit(0).action == ADMIT
    decision = controller.admit(0)
    assert decision.action == SHED
    assert "token bucket" in decision.reason


def test_hard_watermark_shed_does_not_spend_a_token():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    controller = AdmissionController(
        bucket=bucket, soft_watermark=1, hard_watermark=2
    )
    assert controller.admit(5).action == SHED
    assert bucket.available() == 1.0  # shed before the bucket was touched


def test_decision_tally():
    controller = AdmissionController(soft_watermark=2, hard_watermark=4)
    for depth in (0, 1, 2, 3, 4, 9):
        controller.admit(depth)
    assert controller.decisions == {ADMIT: 2, DEGRADE: 2, SHED: 2}


def test_rejects_inverted_watermarks():
    with pytest.raises(ValueError):
        AdmissionController(soft_watermark=10, hard_watermark=5)
    with pytest.raises(ValueError):
        AdmissionController(soft_watermark=0)
