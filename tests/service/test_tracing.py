"""End-to-end request tracing through the serving stack.

The property under test: *every* served response — cold, cache hit,
coalesced follower, degraded, shed — carries a trace_id whose assembled
span tree is a real tree (every parent resolves in-trace, no cycles),
rooted at ``service.request``, and whose link-spans resolve to the trace
that actually computed the digest.  Checked under thread and process
executors and under admission-triggered degradation.
"""

from __future__ import annotations

import asyncio
import logging

import pytest

from repro import make_parallel_solver, observability
from repro.core.registry import register, unregister
from repro.observability import structlog
from repro.service import DigestRequest

from .conftest import make_docs, make_service, run


# -- tree property helpers --------------------------------------------------

def assert_is_tree(assembled):
    """Parent links resolve in-trace, acyclically, covering every span."""
    seen = set()

    def walk(node, parent_id):
        sid = node["span_id"]
        assert sid not in seen, f"span {sid} reached twice (cycle?)"
        seen.add(sid)
        if parent_id is not None:
            assert node["parent_id"] == parent_id
        for child in node.get("children", []):
            walk(child, sid)

    for root in assembled["roots"]:
        walk(root, None)
    assert len(seen) == assembled["spans"]
    return seen


def names_of(assembled):
    out = []

    def walk(node):
        out.append(node["name"])
        for child in node.get("children", []):
            walk(child)
        linked = node.get("linked")
        if linked:
            for root in linked["roots"]:
                walk(root)

    for root in assembled["roots"]:
        walk(root)
    return out


def find_spans(assembled, name):
    found = []

    def walk(node):
        if node["name"] == name:
            found.append(node)
        for child in node.get("children", []):
            walk(child)

    for root in assembled["roots"]:
        walk(root)
    return found


def assert_traced_request(bundle, response, *, expect=()):
    """The per-response property: trace_id + well-formed span tree."""
    assert response.trace_id, f"{response.status} response lost its trace"
    tree = bundle.tracer.assemble(response.trace_id)
    assert tree["spans"] > 0
    assert_is_tree(tree)
    roots = [r["name"] for r in tree["roots"]]
    assert "service.request" in roots
    names = names_of(tree)
    for name in expect:
        assert name in names, f"{name} missing from {names}"
    return tree


# -- every status carries a well-formed trace -------------------------------

class TestEveryStatusIsTraced:
    def test_cold_cached_and_coalesced(self):
        with observability.session() as bundle:
            service = make_service(coalesce_window=0.02)
            service.ingest(make_docs())

            async def scenario():
                cold = await service.digest(
                    DigestRequest(lam=25.0, session="acme"))
                a, b = await asyncio.gather(
                    service.digest(DigestRequest(lam=30.0)),
                    service.digest(DigestRequest(lam=30.0)),
                )
                hit = await service.digest(
                    DigestRequest(lam=25.0, session="beta"))
                return cold, a, b, hit

            cold, a, b, hit = run(scenario())
            # cold: its own trace did the solving
            assert cold.status == "ok" and not cold.cached
            assert cold.result.trace_id == cold.trace_id
            assert cold.result.solve_span_id is not None
            assert_traced_request(
                bundle, cold, expect=("service.solve",))
            # coalesced pair: exactly one solver run, two traces
            assert {a.coalesced, b.coalesced} == {True, False}
            follower = a if a.coalesced else b
            leader = b if a.coalesced else a
            assert follower.trace_id != leader.trace_id
            assert follower.result.trace_id == leader.trace_id
            # cache hit: fresh trace, producer's digest
            assert hit.cached
            assert hit.trace_id != cold.trace_id
            assert hit.result.trace_id == cold.trace_id
            assert_traced_request(
                bundle, hit, expect=("service.cache_hit",))
            # distinct requests never share span ids
            trees = [bundle.tracer.assemble(r.trace_id)
                     for r in (cold, a, b, hit)]
            ids = [assert_is_tree(t) for t in trees]
            assert not set.intersection(*map(set, ids))

    def test_shed_and_degraded_are_traced(self):
        with observability.session() as bundle:
            service = make_service(rate=0.0001, burst=1.0)
            service.ingest(make_docs(6))

            async def scenario():
                ok = await service.digest(DigestRequest(lam=25.0))
                shed = await service.digest(DigestRequest(lam=30.0))
                return ok, shed

            ok, shed = run(scenario())
            assert shed.status == "shed" and shed.result is None
            assert_traced_request(bundle, shed)
            assert shed.trace_id != ok.trace_id

    def test_error_is_traced(self):
        with observability.session() as bundle:
            service = make_service()
            service.ingest(make_docs(6))
            response = run(service.digest(
                DigestRequest(lam=25.0, labels=("nope",))))
            assert response.status == "error"
            assert_traced_request(bundle, response)

    def test_trace_id_minted_even_with_observability_off(self):
        service = make_service()
        service.ingest(make_docs(6))
        response = run(service.digest(DigestRequest(lam=25.0)))
        assert response.status == "ok"
        assert response.trace_id
        assert response.result.trace_id == response.trace_id


# -- link-spans resolve to the producing trace ------------------------------

class TestLinkSpans:
    def test_follower_links_to_leaders_solve_span(self):
        with observability.session() as bundle:
            service = make_service(coalesce_window=0.02)
            service.ingest(make_docs())

            async def scenario():
                return await asyncio.gather(
                    service.digest(DigestRequest(lam=26.0, session="x")),
                    service.digest(DigestRequest(lam=26.0, session="y")),
                )

            a, b = run(scenario())
            follower = a if a.coalesced else b
            leader = b if a.coalesced else a
            tree = assert_traced_request(
                bundle, follower, expect=("service.coalesced_wait",))
            (link,) = find_spans(tree, "service.coalesced_wait")
            assert link["attributes"]["link_trace_id"] == leader.trace_id
            assert link["attributes"]["link_span_id"] == \
                leader.result.solve_span_id
            # following the link lands in the leader's solve
            linked_names = names_of(link["linked"])
            assert "service.solve" in linked_names
            leader_ids = assert_is_tree(
                bundle.tracer.assemble(leader.trace_id))
            assert leader.result.solve_span_id in leader_ids

    def test_cache_hit_links_to_producing_trace(self):
        with observability.session() as bundle:
            service = make_service()
            service.ingest(make_docs())

            async def scenario():
                cold = await service.digest(DigestRequest(lam=25.0))
                hit = await service.digest(DigestRequest(lam=25.0))
                return cold, hit

            cold, hit = run(scenario())
            tree = assert_traced_request(
                bundle, hit, expect=("service.cache_hit",))
            (link,) = find_spans(tree, "service.cache_hit")
            assert link["attributes"]["link_trace_id"] == cold.trace_id
            assert link["attributes"]["link_span_id"] == \
                cold.result.solve_span_id
            assert "service.solve" in names_of(link["linked"])


# -- executor boundaries ----------------------------------------------------

class TestExecutors:
    def test_thread_executor_engine_spans_join_the_trace(self):
        register("greedy.threads", make_parallel_solver(
            "greedy_sc", executor="thread", workers=2, max_shards=4))
        try:
            with observability.session() as bundle:
                service = make_service()
                service.ingest(make_docs())
                response = run(service.digest(DigestRequest(
                    lam=25.0, algorithm="greedy.threads")))
                assert response.status == "ok"
                tree = assert_traced_request(
                    bundle, response, expect=("service.solve",))
                names = names_of(tree)
                assert any(n.startswith("engine.greedy_sc.")
                           for n in names), names
        finally:
            unregister("greedy.threads")

    def test_process_pool_worker_spans_join_the_trace(self):
        register("scan.procs", make_parallel_solver(
            "scan", executor="process", workers=2, max_shards=4))
        try:
            with observability.session() as bundle:
                service = make_service()
                service.ingest(make_docs())
                response = run(service.digest(DigestRequest(
                    lam=25.0, algorithm="scan.procs")))
                assert response.status == "ok"
                tree = assert_traced_request(
                    bundle, response,
                    expect=("service.solve", "engine.scan.shard"))
                # the adopted worker spans hang under this trace, and
                # adoption was actually exercised
                shards = find_spans(tree, "engine.scan.shard")
                assert len(shards) >= 1
                counters = bundle.registry.counters()
                assert counters.get("trace.spans_adopted", 0) >= 1
        finally:
            unregister("scan.procs")


# -- admission-triggered degradation under load -----------------------------

class TestDegradationTracing:
    def test_degraded_responses_stay_traced_and_evented(self):
        with observability.session() as bundle:
            service = make_service(
                soft_watermark=1, hard_watermark=64,
                algorithm="greedy_sc",
            )
            service.ingest(make_docs())

            async def scenario():
                return await asyncio.gather(*[
                    service.digest(DigestRequest(
                        lam=20.0 + i, session=f"t{i}"))
                    for i in range(4)
                ])

            with structlog.capture() as events:
                responses = run(scenario())
            statuses = {r.status for r in responses}
            assert "degraded" in statuses
            for response in responses:
                expect = ("service.solve",) if response.result and \
                    response.result.trace_id == response.trace_id else ()
                assert_traced_request(bundle, response, expect=expect)
            degrade_events = [
                e for e in events if e["event"] == "service.degrade"
            ]
            assert degrade_events
            degraded = [r for r in responses if r.status == "degraded"]
            assert {e["trace_id"] for e in degrade_events} >= \
                {r.trace_id for r in degraded}
            # ladder steps are recorded in the event
            assert all(e["requested"] == "greedy_sc"
                       for e in degrade_events)
            assert all(e["steps"] >= 1 for e in degrade_events)


# -- quiet-failure regression: correlated events ----------------------------

class TestQuietFailureEvents:
    def test_shed_emits_correlated_warning(self):
        service = make_service(rate=0.0001, burst=1.0)
        service.ingest(make_docs(6))

        async def scenario():
            await service.digest(DigestRequest(lam=25.0))
            with structlog.capture() as events:
                shed = await service.digest(
                    DigestRequest(lam=30.0, session="acme"))
            return shed, events

        shed, events = run(scenario())
        assert shed.status == "shed"
        (event,) = [e for e in events if e["event"] == "service.shed"]
        assert event["level"] == "WARNING"
        assert event["trace_id"] == shed.trace_id
        assert event["tenant"] == "acme"
        assert event["reason"] == shed.reason

    def test_cache_invalidation_race_emits_correlated_event(self):
        service = make_service()
        service.ingest(make_docs())

        async def scenario():
            async def racing_solve():
                return await service.digest(
                    DigestRequest(lam=25.0, session="acme"))

            task = asyncio.ensure_future(racing_solve())
            await asyncio.sleep(0)  # let the solve enter the executor
            service.ingest(make_docs(3, offset=100))  # epoch moves
            return await task

        with structlog.capture() as events:
            response = run(scenario())
        # the digest was served, but publishing it was refused
        assert response.status == "ok"
        assert service.cache.stats.stale_drops == 1
        assert len(service.cache) == 0
        (event,) = [
            e for e in events if e["event"] == "service.cache_stale_drop"
        ]
        assert event["level"] == "WARNING"
        assert event["trace_id"] == response.trace_id
        assert event["tenant"] == "acme"
        assert event["key_epoch"] < event["epoch"]

    def test_every_response_status_is_evented(self):
        with observability.session():
            service = make_service(coalesce_window=0.02)
            service.ingest(make_docs())

            async def scenario():
                with structlog.capture() as events:
                    cold = await service.digest(DigestRequest(lam=25.0))
                    hit = await service.digest(DigestRequest(lam=25.0))
                return (cold, hit), events

            (cold, hit), events = run(scenario())
            ok_events = [e for e in events if e["event"] == "service.ok"]
            assert {e["trace_id"] for e in ok_events} == \
                {cold.trace_id, hit.trace_id}
            cached_flags = {e["trace_id"]: e["cached"] for e in ok_events}
            assert cached_flags[cold.trace_id] is False
            assert cached_flags[hit.trace_id] is True


# -- the introspection endpoint ---------------------------------------------

class TestIntrospect:
    def test_introspect_is_json_safe_and_complete(self):
        import json

        with observability.session():
            service = make_service(audit_sample=1.0)
            service.ingest(make_docs())
            run(service.digest(DigestRequest(lam=25.0, session="acme")))
            snap = service.introspect()
        json.dumps(snap)
        assert snap["epoch"] == 1
        assert snap["corpus"]["ingested"] == 24
        assert snap["queues"]["pending"] == 0
        assert snap["cache"]["entries"] == 1
        assert snap["cache"]["stats"]["stale_drops"] == 0
        assert snap["admission"]["decisions"]["admit"] == 1
        assert snap["observability_enabled"] is True
        assert snap["open_spans"] == []
        (slo_record,) = snap["slo"]
        assert slo_record["tenant"] == "acme"
        assert slo_record["lifetime"]["requests"] == 1
        assert snap["auditor"]["sampled"] == 1
        # supervisor health appears once the streaming path has run;
        # the key itself is always present
        assert "supervisor" in snap

    def test_introspect_without_observability(self):
        service = make_service()
        service.ingest(make_docs(6))
        run(service.digest(DigestRequest(lam=25.0)))
        snap = service.introspect()
        assert snap["observability_enabled"] is False
        assert snap["open_spans"] == []
        assert len(snap["slo"]) == 1

    def test_slo_prometheus_round_trips(self):
        from repro.observability import parse_prometheus

        service = make_service()
        service.ingest(make_docs(6))
        run(service.digest(DigestRequest(lam=25.0, session="acme")))
        samples = parse_prometheus(service.slo_prometheus())
        labels = [s["labels"] for s in samples
                  if s["name"] == "service_slo_requests_total"]
        assert {"tenant": "acme", "algorithm": "greedy_sc"} in labels
