"""The digest auditor: sampling, coverage re-verification, OPT ratios."""

from __future__ import annotations

import asyncio
import dataclasses
import logging

import pytest

from repro import observability
from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.registry import solve
from repro.core.solution import Solution
from repro.observability import structlog
from repro.pipeline import DigestResult
from repro.service.auditor import DigestAuditor

from .conftest import make_service, run
from repro.service import DigestRequest


def make_result(n_posts: int = 8, lam: float = 3.0,
                corrupt: bool = False) -> DigestResult:
    posts = [
        Post(uid=i, value=float(i), labels=frozenset({"a", "b"}))
        for i in range(n_posts)
    ]
    instance = Instance(posts=posts, lam=lam)
    solution = solve("greedy_sc", instance)
    if corrupt:
        solution = dataclasses.replace(
            solution, posts=solution.posts[:1]
        )
    return DigestResult(
        solution=solution,
        instance=instance,
        matched=n_posts,
        duplicates_dropped=0,
        unmatched_dropped=0,
        trace_id="feedface",
    )


class TestValidation:
    def test_sample_rate_bounds(self):
        with pytest.raises(ValueError):
            DigestAuditor(sample_rate=1.5)
        with pytest.raises(ValueError):
            DigestAuditor(sample_rate=-0.1)

    def test_queue_bound_positive(self):
        with pytest.raises(ValueError):
            DigestAuditor(max_queue=0)


class TestSampling:
    def test_none_result_is_ignored(self):
        auditor = DigestAuditor()
        assert auditor.observe(None) is False
        assert auditor.offered == 0

    def test_rate_zero_samples_nothing(self):
        auditor = DigestAuditor(sample_rate=0.0)
        assert auditor.observe(make_result()) is False
        assert auditor.offered == 1
        assert auditor.sampled == 0
        assert auditor.pending() == 0

    def test_rate_one_samples_everything(self):
        auditor = DigestAuditor(sample_rate=1.0)
        for _ in range(5):
            assert auditor.observe(make_result()) is True
        assert auditor.sampled == 5

    def test_fractional_rate_is_seed_deterministic(self):
        picks = []
        for _ in range(2):
            auditor = DigestAuditor(sample_rate=0.5, seed=7)
            picks.append([
                auditor.observe(make_result()) for _ in range(20)
            ])
        assert picks[0] == picks[1]
        assert 0 < sum(picks[0]) < 20

    def test_queue_overflow_drops_oldest(self):
        auditor = DigestAuditor(max_queue=2)
        for epoch in range(4):
            auditor.observe(make_result(), epoch=epoch)
        assert auditor.pending() == 2
        assert auditor.dropped == 2
        findings = auditor.audit_pending()
        assert [f.epoch for f in findings] == [2, 3]


class TestAuditing:
    def test_clean_digest_passes(self):
        auditor = DigestAuditor()
        auditor.observe(make_result(), tenant="acme",
                        algorithm="greedy_sc", epoch=2)
        (finding,) = auditor.audit_pending()
        assert finding.covered is True
        assert finding.uncovered_pairs == 0
        assert finding.tenant == "acme"
        assert finding.epoch == 2
        assert finding.trace_id == "feedface"
        assert auditor.coverage_violations == 0
        assert auditor.pass_rate() == 1.0

    def test_corrupted_digest_is_detected(self):
        auditor = DigestAuditor()
        auditor.observe(make_result(corrupt=True), tenant="acme")
        with structlog.capture() as events:
            (finding,) = auditor.audit_pending()
        assert finding.covered is False
        assert finding.uncovered_pairs > 0
        assert auditor.coverage_violations == 1
        assert auditor.pass_rate() == 0.0
        (event,) = events
        assert event["event"] == "audit.coverage_violation"
        assert event["level"] == "WARNING"
        assert event["trace_id"] == "feedface"
        assert event["tenant"] == "acme"
        assert event["uncovered_pairs"] == finding.uncovered_pairs

    def test_violation_counter_reaches_the_facade(self):
        with observability.session() as bundle:
            auditor = DigestAuditor()
            auditor.observe(make_result(corrupt=True))
            auditor.observe(make_result())
            auditor.audit_pending()
        counters = bundle.registry.counters()
        assert counters["audit.coverage_violations"] == 1
        assert counters["audit.audited"] == 2
        assert counters["audit.samples"] == 2

    def test_ratio_computed_on_small_instances(self):
        auditor = DigestAuditor(opt_max_posts=12)
        auditor.observe(make_result(n_posts=8))
        (finding,) = auditor.audit_pending()
        assert finding.opt is not None
        assert finding.approx_ratio is not None
        assert finding.approx_ratio >= 1.0

    def test_ratio_skipped_above_opt_bound(self):
        auditor = DigestAuditor(opt_max_posts=4)
        auditor.observe(make_result(n_posts=8))
        (finding,) = auditor.audit_pending()
        assert finding.covered is True
        assert finding.opt is None
        assert finding.approx_ratio is None

    def test_snapshot_shape(self):
        auditor = DigestAuditor(sample_rate=1.0)
        auditor.observe(make_result())
        auditor.observe(make_result(corrupt=True))
        auditor.audit_pending()
        snap = auditor.snapshot()
        assert snap["offered"] == 2
        assert snap["sampled"] == 2
        assert snap["audited"] == 2
        assert snap["coverage_violations"] == 1
        assert snap["pass_rate"] == 0.5
        assert snap["approx_ratio"]["count"] == 1
        assert snap["approx_ratio"]["mean"] >= 1.0
        assert snap["pending"] == 0
        assert snap["running"] is False
        import json

        json.dumps(snap)


class TestBackgroundLoop:
    def test_start_drains_and_stop_flushes(self):
        async def scenario():
            auditor = DigestAuditor()
            auditor.observe(make_result())
            task = auditor.start(interval=0.001)
            assert auditor.start(interval=0.001) is task  # idempotent
            await asyncio.sleep(0.02)
            assert auditor.pending() == 0
            assert auditor.snapshot()["running"] is True
            # queued after the drain, flushed by stop()'s final drain
            auditor.observe(make_result())
            await auditor.stop()
            assert auditor.pending() == 0
            assert auditor.audited == 2
            assert auditor.snapshot()["running"] is False

        run(scenario())

    def test_stop_without_start_is_a_noop(self):
        async def scenario():
            await DigestAuditor().stop()

        run(scenario())


class TestServiceIntegration:
    def test_service_feeds_auditor_and_passes(self):
        service = make_service(audit_sample=1.0)
        from .conftest import make_docs

        service.ingest(make_docs())

        async def scenario():
            await service.digest(DigestRequest(lam=25.0, session="acme"))
            await service.digest(DigestRequest(lam=35.0, session="beta"))

        run(scenario())
        assert service.auditor.sampled == 2
        findings = service.auditor.audit_pending()
        assert len(findings) == 2
        assert all(f.covered for f in findings)
        assert {f.tenant for f in findings} == {"acme", "beta"}
        assert service.introspect()["auditor"]["pass_rate"] == 1.0

    def test_audit_off_by_default(self):
        service = make_service()
        from .conftest import make_docs

        service.ingest(make_docs())
        run(service.digest(DigestRequest(lam=25.0)))
        assert service.auditor.sampled == 0
