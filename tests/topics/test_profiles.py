"""Profiles (label sets) and the ambiguity filter."""

import random

import pytest

from repro.topics.lda_sim import SyntheticTopicModel
from repro.topics.profiles import (
    discard_ambiguous,
    make_label_set,
    make_label_sets,
)


@pytest.fixture(scope="module")
def model():
    return SyntheticTopicModel.train(random.Random(42))


class TestDiscardAmbiguous:
    def test_keeps_215_by_default(self, model):
        trimmed = discard_ambiguous(random.Random(0), model)
        assert len(trimmed.topics) == 215

    def test_noop_when_keep_exceeds_size(self, model):
        same = discard_ambiguous(random.Random(0), model, keep=9999)
        assert same is model

    def test_broad_mapping_consistent(self, model):
        trimmed = discard_ambiguous(random.Random(0), model)
        assert set(trimmed.broad_of) == {
            t.label for t in trimmed.topics
        }

    def test_kept_topics_are_a_subset(self, model):
        trimmed = discard_ambiguous(random.Random(0), model)
        original = {t.label for t in model.topics}
        assert {t.label for t in trimmed.topics} <= original


class TestLabelSets:
    def test_profile_within_one_broad_topic(self, model):
        profile = make_label_set(random.Random(1), model, size=5)
        broads = {model.broad_of[t.label] for t in profile}
        assert len(broads) == 1
        assert len(profile) == 5

    def test_distinct_topics_in_profile(self, model):
        profile = make_label_set(random.Random(2), model, size=20)
        assert len({t.label for t in profile}) == 20

    def test_oversized_profile_rejected(self, model):
        with pytest.raises(ValueError):
            make_label_set(random.Random(0), model, size=31)

    def test_many_profiles(self, model):
        profiles = make_label_sets(random.Random(3), model, size=2,
                                   count=10)
        assert len(profiles) == 10
        assert all(len(p) == 2 for p in profiles)

    def test_profiles_vary(self, model):
        profiles = make_label_sets(random.Random(4), model, size=2,
                                   count=20)
        signatures = {
            tuple(sorted(t.label for t in p)) for p in profiles
        }
        assert len(signatures) > 1
