"""The synthetic topic model."""

import random

import pytest

from repro.text.vocab import BROAD_TOPICS
from repro.topics.lda_sim import SyntheticTopicModel


@pytest.fixture(scope="module")
def model():
    return SyntheticTopicModel.train(random.Random(42))


class TestTraining:
    def test_default_topic_count(self, model):
        assert len(model.topics) == 300

    def test_ten_broad_groups_of_thirty(self, model):
        groups = model.by_broad()
        assert len(groups) == 10
        assert all(len(topics) == 30 for topics in groups.values())

    def test_keywords_capped_at_forty(self, model):
        assert all(len(t.keywords) <= 40 for t in model.topics)
        # dedup may trim a few, but topics should stay near-full
        assert all(len(t.keywords) >= 30 for t in model.topics)

    def test_weights_normalised(self, model):
        for topic in model.topics[:20]:
            total = sum(weight for _, weight in topic.weights)
            assert total == pytest.approx(1.0)

    def test_deterministic_under_seed(self):
        one = SyntheticTopicModel.train(random.Random(7))
        two = SyntheticTopicModel.train(random.Random(7))
        assert [t.label for t in one.topics] == [t.label for t in two.topics]
        assert [t.keywords for t in one.topics] == [
            t.keywords for t in two.topics
        ]

    def test_lookup_by_label(self, model):
        topic = model.topic("sports-00")
        assert model.broad_of[topic.label] == "sports"
        with pytest.raises(KeyError):
            model.topic("nope-99")

    def test_subset_preserves_order(self, model):
        labels = ["politics-02", "politics-00"]
        subset = model.subset(labels)
        assert [t.label for t in subset] == labels
        with pytest.raises(KeyError):
            model.subset(["politics-00", "ghost-01"])


class TestTopicStructure:
    def test_intra_broad_overlap_small_but_present(self, model):
        """Same-broad topics share a few keywords (hot base words), not
        most of them — the calibration behind Table 2's scaling."""
        sports = model.by_broad()["sports"]
        a, b = sports[0], sports[1]
        shared = a.keywords & b.keywords
        assert len(shared) < 10

    def test_cross_broad_overlap_negligible(self, model):
        groups = model.by_broad()
        sports = groups["sports"][0]
        politics = groups["politics"][0]
        assert len(sports.keywords & politics.keywords) <= 2

    def test_keywords_rooted_in_broad_vocabulary(self, model):
        """Every keyword is a pool word or a compound of pool words from
        some broad topic (leakage allows foreign pools)."""
        all_base = set()
        for pool in BROAD_TOPICS.values():
            all_base |= set(pool)
        compounds = set()
        for pool in BROAD_TOPICS.values():
            words = list(pool)
            for i in range(len(words)):
                for j in range(i + 1, len(words)):
                    compounds.add(words[i] + words[j])
        vocabulary = all_base | compounds
        for topic in model.topics[:30]:
            for keyword in topic.keywords:
                assert keyword in vocabulary, keyword
