"""The DiversificationPipeline facade."""

import pytest

from repro import DiversificationPipeline, is_cover
from repro.errors import ReproError, StreamOrderError
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery


def _queries():
    return [
        TopicQuery(label="golf", keywords=frozenset({"tiger", "golf"})),
        TopicQuery(label="nba", keywords=frozenset({"lebron", "nba"})),
    ]


def _documents():
    return [
        Document(0, 0.0, "tiger wins the open"),
        Document(1, 30.0, "tiger wins the open"),            # duplicate
        Document(2, 60.0, "lebron dominates the nba game"),
        Document(3, 90.0, "weather is nice today"),          # unmatched
        Document(4, 400.0, "golf playoff goes to extra holes"),
        Document(5, 500.0, "nba trade rumors heat up"),
    ]


class TestBatchDigest:
    def test_end_to_end(self):
        pipeline = DiversificationPipeline(_queries(), lam=120.0)
        result = pipeline.digest(_documents())
        assert result.duplicates_dropped == 1
        assert result.unmatched_dropped == 1
        assert result.matched == 4
        assert is_cover(result.instance, result.posts)
        assert 0 < result.size <= result.matched

    def test_dedup_disabled(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=120.0, dedup_distance=None
        )
        result = pipeline.digest(_documents())
        assert result.duplicates_dropped == 0
        assert result.matched == 5

    def test_algorithm_selectable(self):
        for algorithm in ("scan", "scan+", "greedy_sc", "opt"):
            pipeline = DiversificationPipeline(
                _queries(), lam=120.0, algorithm=algorithm
            )
            result = pipeline.digest(_documents())
            assert is_cover(result.instance, result.posts), algorithm

    def test_sentiment_dimension(self):
        documents = [
            Document(0, 0.0, "tiger great amazing win"),
            Document(1, 1.0, "tiger terrible awful collapse"),
            Document(2, 2.0, "tiger plays golf"),
        ]
        pipeline = DiversificationPipeline(
            _queries(), lam=0.4, dimension="sentiment",
            dedup_distance=None,
        )
        result = pipeline.digest(documents)
        values = [post.value for post in result.instance.posts]
        assert min(values) < 0 < max(values)
        assert is_cover(result.instance, result.posts)

    def test_custom_dimension_callable(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=1.0,
            dimension=lambda document: float(len(document.text)),
            dedup_distance=None,
        )
        result = pipeline.digest(_documents())
        assert is_cover(result.instance, result.posts)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ReproError):
            DiversificationPipeline(_queries(), lam=1.0,
                                    dimension="geography")

    def test_unknown_stream_algorithm_rejected(self):
        with pytest.raises(ReproError):
            DiversificationPipeline(_queries(), lam=1.0,
                                    stream_algorithm="nope")


class TestStreamingFeed:
    def test_feed_then_finish_covers(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=120.0, tau=60.0,
            stream_algorithm="stream_scan",
        )
        emissions = []
        for document in _documents():
            emissions.extend(pipeline.feed(document))
        emissions.extend(pipeline.finish())
        emitted_uids = {e.post.uid for e in emissions}
        assert emitted_uids  # something was selected
        # every emission corresponds to a matched document
        assert 3 not in emitted_uids  # the unmatched one

    def test_duplicates_never_emitted(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=1.0, tau=0.0,
            stream_algorithm="instant",
        )
        emissions = []
        for document in _documents():
            emissions.extend(pipeline.feed(document))
        emissions.extend(pipeline.finish())
        assert 1 not in {e.post.uid for e in emissions}

    def test_order_violation_rejected(self):
        pipeline = DiversificationPipeline(_queries(), lam=10.0, tau=1.0)
        pipeline.feed(Document(0, 100.0, "tiger wins the open"))
        with pytest.raises(StreamOrderError):
            pipeline.feed(Document(1, 50.0, "tiger misses the cut"))

    def test_dropped_documents_do_not_tighten_order_gate(self):
        # Regression: a near-duplicate (or unmatched) document never
        # reaches the solver, so its dimension value must not advance the
        # monotonicity gate.  Before the fix, feeding the duplicate at
        # t=100 made the perfectly valid t=50 arrival raise.
        pipeline = DiversificationPipeline(_queries(), lam=10.0, tau=1.0)
        pipeline.feed(Document(0, 10.0, "tiger wins the open"))
        # exact duplicate text, later timestamp: dropped by dedup
        assert pipeline.feed(Document(1, 100.0, "tiger wins the open")) \
            == []
        # unmatched text, even later timestamp: dropped by the matcher
        assert pipeline.feed(Document(2, 200.0, "weather is nice")) == []
        # a matched document between the duplicate's value and the last
        # admitted one must still be accepted
        emissions = pipeline.feed(Document(3, 50.0, "tiger misses cut"))
        emissions += pipeline.finish()
        assert {e.post.uid for e in emissions} >= {3}

    def test_admitted_documents_still_gate(self):
        # The gate still protects the solver: two *admitted* documents
        # regressing on the dimension is a real order violation.
        pipeline = DiversificationPipeline(_queries(), lam=10.0, tau=1.0)
        pipeline.feed(Document(0, 100.0, "tiger wins the open"))
        with pytest.raises(StreamOrderError):
            pipeline.feed(Document(1, 99.0, "lebron nba classic"))

    def test_finish_resets_state(self):
        pipeline = DiversificationPipeline(_queries(), lam=10.0, tau=1.0)
        pipeline.feed(Document(0, 100.0, "tiger"))
        pipeline.finish()
        # a fresh stream accepts earlier timestamps again
        emissions = pipeline.feed(Document(1, 0.0, "tiger"))
        assert pipeline.finish() or emissions

    def test_finish_without_feed(self):
        pipeline = DiversificationPipeline(_queries(), lam=10.0)
        assert pipeline.finish() == []

    def test_stream_matches_batch_when_tau_exceeds_lambda(self):
        documents = [d for d in _documents() if d.doc_id != 1]
        batch = DiversificationPipeline(
            _queries(), lam=120.0, algorithm="scan",
            dedup_distance=None,
        ).digest(documents)
        stream = DiversificationPipeline(
            _queries(), lam=120.0, tau=121.0,
            stream_algorithm="stream_scan", dedup_distance=None,
        )
        emissions = []
        for document in documents:
            emissions.extend(stream.feed(document))
        emissions.extend(stream.finish())
        assert {e.post.uid for e in emissions} == set(
            batch.solution.uids
        )


class TestSupervisedPipeline:
    """The opt-in resilient variants of feed() and digest()."""

    @staticmethod
    def _ticking_clock(step=1.0):
        state = {"now": 0.0}

        def clock():
            state["now"] += step
            return state["now"]

        return clock

    def test_supervised_feed_survives_out_of_order(self):
        from repro.resilience import ResilienceConfig, SanitizationPolicy

        pipeline = DiversificationPipeline(
            _queries(), lam=10.0, tau=1.0,
            resilience=ResilienceConfig(
                policy=SanitizationPolicy.lenient(reorder_buffer=2),
            ),
        )
        emissions = []
        shuffled = [
            Document(0, 100.0, "tiger wins the open"),
            Document(1, 50.0, "lebron nba classic"),   # out of order
            Document(2, 150.0, "golf playoff thriller"),
            Document(3, 200.0, "nba finals game seven"),
        ]
        for document in shuffled:
            emissions.extend(pipeline.feed(document))
        supervisor = pipeline.supervisor
        emissions.extend(pipeline.finish())
        # no StreamOrderError; the buffer restored order and everything
        # was admitted
        assert supervisor.health.admitted == 4
        assert [p.uid for p in supervisor.journal] == [1, 0, 2, 3]
        assert {e.post.uid for e in emissions}  # something emitted

    def test_supervised_feed_quarantines_unmatched(self):
        from repro.resilience import ResilienceConfig

        pipeline = DiversificationPipeline(
            _queries(), lam=10.0, tau=1.0,
            resilience=ResilienceConfig(),
        )
        pipeline.feed(Document(0, 1.0, "tiger wins the open"))
        pipeline.feed(Document(1, 2.0, "weather is nice today"))
        assert pipeline.supervisor.health.quarantined == 1
        assert pipeline.supervisor.health.admitted == 1
        pipeline.finish()
        assert pipeline.supervisor is None  # finish resets the stream

    def test_supervised_feed_checkpointable(self):
        from repro.resilience import ResilienceConfig

        pipeline = DiversificationPipeline(
            _queries(), lam=10.0, tau=1.0,
            resilience=ResilienceConfig(),
        )
        pipeline.feed(Document(0, 1.0, "tiger wins the open"))
        checkpoint = pipeline.supervisor.checkpoint()
        assert checkpoint.journal[0].uid == 0
        assert pipeline.supervisor.health.checkpoints == 1

    def test_stream_ladder_downgrade_via_config(self):
        from repro.resilience import ResilienceConfig

        pipeline = DiversificationPipeline(
            _queries(), lam=10.0, tau=1.0,
            resilience=ResilienceConfig(
                stream_ladder=("stream_greedy_sc+", "stream_scan"),
                arrival_budget=0.5,
                clock=self._ticking_clock(),
            ),
        )
        pipeline.feed(Document(0, 1.0, "tiger wins the open"))
        pipeline.feed(Document(1, 2.0, "lebron nba classic"))
        assert pipeline.supervisor.health.downgrades == 1
        assert pipeline.supervisor.algorithm_name == "stream_scan"

    def test_digest_ladder_downgrades_and_sticks(self):
        from repro.resilience import ResilienceConfig

        pipeline = DiversificationPipeline(
            _queries(), lam=120.0,
            resilience=ResilienceConfig(
                batch_ladder=("greedy_sc", "scan+", "scan"),
                digest_budget=0.5,
                clock=self._ticking_clock(),
            ),
        )
        result = pipeline.digest(_documents())
        assert result.solution.algorithm == "scan"
        assert [d.trigger for d in result.downgrades] == \
            ["budget", "budget"]
        assert is_cover(result.instance, result.posts)
        # sticky: the next digest starts straight at the bottom rung
        second = pipeline.digest(_documents())
        assert second.solution.algorithm == "scan"
        assert second.downgrades == ()

    def test_unsupervised_digest_reports_no_downgrades(self):
        pipeline = DiversificationPipeline(_queries(), lam=120.0)
        result = pipeline.digest(_documents())
        assert result.downgrades == ()
