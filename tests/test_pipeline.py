"""The DiversificationPipeline facade."""

import pytest

from repro import DiversificationPipeline, is_cover
from repro.errors import ReproError, StreamOrderError
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery


def _queries():
    return [
        TopicQuery(label="golf", keywords=frozenset({"tiger", "golf"})),
        TopicQuery(label="nba", keywords=frozenset({"lebron", "nba"})),
    ]


def _documents():
    return [
        Document(0, 0.0, "tiger wins the open"),
        Document(1, 30.0, "tiger wins the open"),            # duplicate
        Document(2, 60.0, "lebron dominates the nba game"),
        Document(3, 90.0, "weather is nice today"),          # unmatched
        Document(4, 400.0, "golf playoff goes to extra holes"),
        Document(5, 500.0, "nba trade rumors heat up"),
    ]


class TestBatchDigest:
    def test_end_to_end(self):
        pipeline = DiversificationPipeline(_queries(), lam=120.0)
        result = pipeline.digest(_documents())
        assert result.duplicates_dropped == 1
        assert result.unmatched_dropped == 1
        assert result.matched == 4
        assert is_cover(result.instance, result.posts)
        assert 0 < result.size <= result.matched

    def test_dedup_disabled(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=120.0, dedup_distance=None
        )
        result = pipeline.digest(_documents())
        assert result.duplicates_dropped == 0
        assert result.matched == 5

    def test_algorithm_selectable(self):
        for algorithm in ("scan", "scan+", "greedy_sc", "opt"):
            pipeline = DiversificationPipeline(
                _queries(), lam=120.0, algorithm=algorithm
            )
            result = pipeline.digest(_documents())
            assert is_cover(result.instance, result.posts), algorithm

    def test_sentiment_dimension(self):
        documents = [
            Document(0, 0.0, "tiger great amazing win"),
            Document(1, 1.0, "tiger terrible awful collapse"),
            Document(2, 2.0, "tiger plays golf"),
        ]
        pipeline = DiversificationPipeline(
            _queries(), lam=0.4, dimension="sentiment",
            dedup_distance=None,
        )
        result = pipeline.digest(documents)
        values = [post.value for post in result.instance.posts]
        assert min(values) < 0 < max(values)
        assert is_cover(result.instance, result.posts)

    def test_custom_dimension_callable(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=1.0,
            dimension=lambda document: float(len(document.text)),
            dedup_distance=None,
        )
        result = pipeline.digest(_documents())
        assert is_cover(result.instance, result.posts)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ReproError):
            DiversificationPipeline(_queries(), lam=1.0,
                                    dimension="geography")

    def test_unknown_stream_algorithm_rejected(self):
        with pytest.raises(ReproError):
            DiversificationPipeline(_queries(), lam=1.0,
                                    stream_algorithm="nope")


class TestStreamingFeed:
    def test_feed_then_finish_covers(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=120.0, tau=60.0,
            stream_algorithm="stream_scan",
        )
        emissions = []
        for document in _documents():
            emissions.extend(pipeline.feed(document))
        emissions.extend(pipeline.finish())
        emitted_uids = {e.post.uid for e in emissions}
        assert emitted_uids  # something was selected
        # every emission corresponds to a matched document
        assert 3 not in emitted_uids  # the unmatched one

    def test_duplicates_never_emitted(self):
        pipeline = DiversificationPipeline(
            _queries(), lam=1.0, tau=0.0,
            stream_algorithm="instant",
        )
        emissions = []
        for document in _documents():
            emissions.extend(pipeline.feed(document))
        emissions.extend(pipeline.finish())
        assert 1 not in {e.post.uid for e in emissions}

    def test_order_violation_rejected(self):
        pipeline = DiversificationPipeline(_queries(), lam=10.0, tau=1.0)
        pipeline.feed(Document(0, 100.0, "tiger"))
        with pytest.raises(StreamOrderError):
            pipeline.feed(Document(1, 50.0, "tiger"))

    def test_finish_resets_state(self):
        pipeline = DiversificationPipeline(_queries(), lam=10.0, tau=1.0)
        pipeline.feed(Document(0, 100.0, "tiger"))
        pipeline.finish()
        # a fresh stream accepts earlier timestamps again
        emissions = pipeline.feed(Document(1, 0.0, "tiger"))
        assert pipeline.finish() or emissions

    def test_finish_without_feed(self):
        pipeline = DiversificationPipeline(_queries(), lam=10.0)
        assert pipeline.finish() == []

    def test_stream_matches_batch_when_tau_exceeds_lambda(self):
        documents = [d for d in _documents() if d.doc_id != 1]
        batch = DiversificationPipeline(
            _queries(), lam=120.0, algorithm="scan",
            dedup_distance=None,
        ).digest(documents)
        stream = DiversificationPipeline(
            _queries(), lam=120.0, tau=121.0,
            stream_algorithm="stream_scan", dedup_distance=None,
        )
        emissions = []
        for document in documents:
            emissions.extend(stream.feed(document))
        emissions.extend(stream.finish())
        assert {e.post.uid for e in emissions} == set(
            batch.solution.uids
        )
