"""Cross-module integration tests: the full Figure 1 pipeline, end to end.

Each test wires several subsystems together the way the examples (and a
real deployment) would, asserting the joints rather than the units.
"""

import random

import pytest

from repro import (
    Instance,
    Post,
    ProportionalLambda,
    greedy_sc,
    is_cover,
    opt,
    scan,
    scan_variable,
    stream_solve,
    verify_cover,
)
from repro.core.streaming import StreamScan
from repro.datagen.arrivals import bursty_times, poisson_times
from repro.datagen.tweets import TweetGenerator
from repro.datagen.workload import tweet_workload
from repro.index import BM25Scorer, InvertedIndex, LabelMatcher, SimHashIndex
from repro.stream.runner import run_stream
from repro.text.sentiment import sentiment_score
from repro.topics import SyntheticTopicModel, discard_ambiguous, make_label_set


@pytest.fixture(scope="module")
def pipeline():
    """Shared expensive fixtures: model, profile, one hour of tweets."""
    rng = random.Random(99)
    model = discard_ambiguous(rng, SyntheticTopicModel.train(rng))
    profile = make_label_set(rng, model, size=3)
    generator = TweetGenerator(model, rng, duplicate_prob=0.08)
    times = poisson_times(rng, rate=1.5, start=0.0, end=3600.0)
    documents = generator.generate(times)
    return model, profile, documents


class TestIndexPath:
    """Figure 1's first input option: search an inverted index."""

    def test_search_match_diversify(self, pipeline):
        _, profile, documents = pipeline
        index = InvertedIndex()
        for doc in documents:
            index.add(doc.doc_id, doc.timestamp, doc.text)
        matcher = LabelMatcher(profile)
        posts = matcher.search_posts(index)
        assert posts, "profile should match something in an hour of tweets"

        instance = Instance(posts, lam=300.0, labels=matcher.labels)
        digest = greedy_sc(instance)
        verify_cover(instance, digest.posts)
        assert digest.size < len(posts)

    def test_index_path_equals_direct_matching(self, pipeline):
        """Searching the index then labelling must give the same posts as
        matching the raw documents directly."""
        _, profile, documents = pipeline
        index = InvertedIndex()
        for doc in documents:
            index.add(doc.doc_id, doc.timestamp, doc.text)
        matcher = LabelMatcher(profile)
        via_index = {p.uid for p in matcher.search_posts(index)}
        direct = {p.uid for p in matcher.to_posts(documents)}
        assert via_index == direct

    def test_bm25_ranks_within_matched_set(self, pipeline):
        _, profile, documents = pipeline
        index = InvertedIndex()
        for doc in documents:
            index.add(doc.doc_id, doc.timestamp, doc.text)
        scorer = BM25Scorer(index)
        keywords = sorted(profile[0].keywords)[:5]
        ranked = scorer.search(keywords, k=5)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)


class TestDedupThenDiversify:
    def test_simhash_before_mqdp_shrinks_input_not_coverage(self, pipeline):
        _, profile, documents = pipeline
        dedup = SimHashIndex(max_distance=3)
        kept_ids, dropped = dedup.deduplicate(
            (d.doc_id, d.text) for d in documents
        )
        assert dropped, "duplicate_prob=0.08 should produce duplicates"
        kept = set(kept_ids)
        surviving = [d for d in documents if d.doc_id in kept]
        rng = random.Random(0)
        instance, posts = tweet_workload(
            rng, profile, surviving, lam=300.0
        )
        solution = scan(instance)
        assert is_cover(instance, solution.posts)


class TestStreamPath:
    """Figure 1's second input option: the matching module on a stream."""

    def test_matched_stream_into_streaming_algorithms(self, pipeline):
        _, profile, documents = pipeline
        matcher = LabelMatcher(profile)
        posts = matcher.to_posts(documents)
        instance = Instance(posts, lam=300.0, labels=matcher.labels)
        for name in ("stream_scan", "stream_scan+", "instant",
                     "stream_greedy_sc", "stream_greedy_sc+"):
            result = stream_solve(name, instance, tau=120.0)
            assert is_cover(instance, result.to_solution().posts), name
            assert result.max_delay() <= max(120.0, 300.0) + 1e-9

    def test_streaming_equals_batch_on_matched_data(self, pipeline):
        _, profile, documents = pipeline
        matcher = LabelMatcher(profile)
        posts = matcher.to_posts(documents)
        instance = Instance(posts, lam=300.0, labels=matcher.labels)
        batch = scan(instance)
        algorithm = StreamScan(instance.labels, lam=300.0, tau=301.0)
        streamed = run_stream(algorithm, instance.posts)
        assert set(streamed.to_solution().uids) == set(batch.uids)


class TestSentimentDimension:
    def test_sentiment_pipeline(self, pipeline):
        """Swap the diversity dimension: score texts, cover the polarity
        axis instead of the timeline."""
        _, profile, documents = pipeline
        matcher = LabelMatcher(profile)
        posts = matcher.to_posts_with_value(
            documents, value_of=lambda d: sentiment_score(d.text)
        )
        assert posts
        instance = Instance(posts, lam=0.3, labels=matcher.labels)
        solution = greedy_sc(instance)
        verify_cover(instance, solution.posts)
        # proportional variant on the same axis
        model = ProportionalLambda(instance, lam0=0.3)
        proportional = scan_variable(instance, model)
        assert is_cover(instance, proportional.posts, model)


class TestSmallExactOnRealisticData:
    def test_opt_on_a_short_burst(self):
        """The paper's usage envelope for OPT: |L| = 2, small window."""
        rng = random.Random(3)
        times, _ = bursty_times(rng, base_rate=0.05, start=0.0,
                                end=600.0, n_bursts=1)
        posts = [
            Post(
                uid=i, value=t,
                labels=frozenset(rng.sample(["a", "b"],
                                            rng.randint(1, 2))),
            )
            for i, t in enumerate(times)
        ] or [Post(uid=0, value=0.0, labels=frozenset("a"))]
        instance = Instance(posts, lam=60.0)
        exact = opt(instance)
        assert is_cover(instance, exact.posts)
        assert exact.size <= scan(instance).size
