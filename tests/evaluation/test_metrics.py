"""Evaluation metrics."""

import pytest

from repro.core.instance import Instance
from repro.core.post import make_posts
from repro.core.solution import Solution
from repro.evaluation.metrics import (
    mean,
    per_post_time,
    relative_error,
    summary,
)


class TestRelativeError:
    def test_matches_paper_definition(self):
        assert relative_error(15, 10) == pytest.approx(0.5)

    def test_zero_when_optimal(self):
        assert relative_error(10, 10) == 0.0

    def test_nonpositive_optimum_rejected(self):
        with pytest.raises(ValueError):
            relative_error(5, 0)

    def test_estimate_below_optimum_rejected(self):
        with pytest.raises(ValueError):
            relative_error(9, 10)


class TestPerPostTime:
    def test_divides_by_instance_size(self):
        instance = Instance.from_specs([(1.0, "a"), (2.0, "a")], lam=1.0)
        solution = Solution(
            algorithm="x",
            posts=tuple(make_posts([(1.0, "a")])),
            elapsed=4.0,
        )
        assert per_post_time(solution, instance) == 2.0

    def test_empty_instance_zero(self):
        instance = Instance([], lam=1.0)
        solution = Solution(algorithm="x", posts=(), elapsed=1.0)
        assert per_post_time(solution, instance) == 0.0


class TestAggregates:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_summary_fields(self):
        stats = summary([1.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["median"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["stdev"] > 0

    def test_summary_single_value_no_stdev(self):
        assert summary([5.0])["stdev"] == 0.0

    def test_summary_empty(self):
        assert summary([]) == {
            "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0,
            "stdev": 0.0,
        }
