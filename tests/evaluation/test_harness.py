"""Grid runner, table formatting and CSV export."""

from repro.evaluation.harness import format_table, rows_to_csv, run_grid


class TestRunGrid:
    def test_concatenates_rows(self):
        rows = run_grid([1, 2], lambda x: [{"x": x}, {"x": x * 10}])
        assert rows == [{"x": 1}, {"x": 10}, {"x": 2}, {"x": 20}]

    def test_empty_grid(self):
        assert run_grid([], lambda x: [{"x": x}]) == []


class TestFormatTable:
    def test_header_and_alignment(self):
        rows = [{"alg": "scan", "err": 0.25}, {"alg": "greedy", "err": 0.5}]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("alg")
        assert "err" in lines[0]
        assert lines[1].startswith("---")
        assert "scan" in lines[2]

    def test_title_included(self):
        table = format_table([{"a": 1}], title="== T ==")
        assert table.splitlines()[0] == "== T =="

    def test_column_order_first_appearance(self):
        rows = [{"b": 1, "a": 2}]
        assert format_table(rows).splitlines()[0].startswith("b")

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        table = format_table(rows)
        assert "3" in table

    def test_no_rows(self):
        assert "(no rows)" in format_table([])

    def test_float_formatting(self):
        table = format_table([{"v": 0.123456}])
        assert "0.1235" in table

    def test_large_float_scientific(self):
        table = format_table([{"v": 123456.0}])
        assert "e+05" in table


class TestCsv:
    def test_round_trippable(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_explicit_columns_filter(self):
        rows = [{"a": 1, "b": 2}]
        text = rows_to_csv(rows, columns=["a"])
        assert text.strip().splitlines() == ["a", "1"]
