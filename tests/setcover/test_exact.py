"""Exact branch-and-bound set cover."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmBudgetExceeded
from repro.setcover.exact import exact_set_cover
from repro.setcover.greedy import greedy_set_cover

from .test_greedy import families


def _min_cover_size_bruteforce(sets, universe):
    for size in range(0, len(sets) + 1):
        for combo in combinations(range(len(sets)), size):
            covered = set()
            for idx in combo:
                covered |= set(sets[idx])
            if universe <= covered:
                return size
    raise AssertionError("family does not cover the universe")


class TestExactBasics:
    def test_single_set(self):
        assert exact_set_cover([{1, 2}]) == [0]

    def test_beats_greedy_on_the_trap(self):
        sets = [{1, 2, 3, 4}, {1, 2, 5}, {3, 4, 6}]
        exact = exact_set_cover(sets)
        greedy = greedy_set_cover(sets)
        assert len(exact) < len(greedy)
        assert sorted(exact) == [1, 2]

    def test_disjoint_sets_all_needed(self):
        sets = [{1}, {2}, {3}]
        assert exact_set_cover(sets) == [0, 1, 2]

    def test_uncoverable_rejected(self):
        with pytest.raises(ValueError):
            exact_set_cover([{1}], universe={2})

    def test_node_budget_enforced(self):
        sets = [set(range(i, i + 3)) for i in range(40)]
        with pytest.raises(AlgorithmBudgetExceeded):
            exact_set_cover(sets, node_budget=0)

    def test_empty_universe(self):
        assert exact_set_cover([{1}], universe=set()) == []


class TestExactProperties:
    @given(families(max_sets=6, max_elements=8))
    @settings(deadline=None, max_examples=60)
    def test_matches_subset_enumeration(self, sets):
        universe = set()
        for s in sets:
            universe |= s
        expected = _min_cover_size_bruteforce(sets, universe)
        assert len(exact_set_cover(sets)) == expected

    @given(families())
    @settings(deadline=None)
    def test_result_is_a_cover(self, sets):
        chosen = exact_set_cover(sets)
        covered = set()
        for idx in chosen:
            covered |= sets[idx]
        universe = set()
        for s in sets:
            universe |= s
        assert covered == universe

    @given(families())
    @settings(deadline=None)
    def test_never_worse_than_greedy(self, sets):
        assert len(exact_set_cover(sets)) <= len(greedy_set_cover(sets))
