"""Generic greedy set cover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.setcover.greedy import greedy_set_cover


@st.composite
def families(draw, max_sets=8, max_elements=12):
    n_elements = draw(st.integers(min_value=1, max_value=max_elements))
    elements = list(range(n_elements))
    n_sets = draw(st.integers(min_value=1, max_value=max_sets))
    sets = [
        draw(st.sets(st.sampled_from(elements)))
        for _ in range(n_sets)
    ]
    # guarantee coverability by adding each element somewhere
    for element in elements:
        idx = draw(st.integers(min_value=0, max_value=n_sets - 1))
        sets[idx].add(element)
    return sets


class TestGreedyBasics:
    def test_single_set_covers_all(self):
        assert greedy_set_cover([{1, 2, 3}]) == [0]

    def test_picks_largest_first(self):
        chosen = greedy_set_cover([{1}, {1, 2, 3}, {2}])
        assert chosen[0] == 1

    def test_classic_greedy_trap(self):
        """Greedy takes the big middle set even though two sets suffice."""
        sets = [{1, 2, 3, 4}, {1, 2, 5}, {3, 4, 6}]
        chosen = greedy_set_cover(sets)
        assert chosen[0] == 0  # largest first
        assert len(chosen) == 3  # optimal is 2 (sets 1 and 2)

    def test_tie_broken_by_lowest_index(self):
        chosen = greedy_set_cover([{1, 2}, {1, 2}])
        assert chosen == [0]

    def test_explicit_universe_subset(self):
        # only element 1 must be covered; the small set wins nothing
        chosen = greedy_set_cover([{1}, {2, 3}], universe={1})
        assert chosen == [0]

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(ValueError):
            greedy_set_cover([{1}], universe={1, 99})

    def test_empty_universe_no_picks(self):
        assert greedy_set_cover([{1, 2}], universe=set()) == []

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            greedy_set_cover([{1}], strategy="bogus")


class TestGreedyProperties:
    @given(families())
    @settings(deadline=None)
    def test_result_is_a_cover(self, sets):
        chosen = greedy_set_cover(sets)
        covered = set()
        for idx in chosen:
            covered |= sets[idx]
        universe = set()
        for s in sets:
            universe |= s
        assert covered == universe

    @given(families())
    @settings(deadline=None)
    def test_no_redundant_zero_gain_picks(self, sets):
        """Every pick must contribute at least one new element."""
        chosen = greedy_set_cover(sets)
        covered = set()
        for idx in chosen:
            gain = sets[idx] - covered
            assert gain, f"set {idx} contributed nothing"
            covered |= sets[idx]

    @given(families())
    @settings(deadline=None)
    def test_strategies_identical(self, sets):
        rescan = greedy_set_cover(sets, strategy="rescan")
        heap = greedy_set_cover(sets, strategy="lazy_heap")
        assert rescan == heap
