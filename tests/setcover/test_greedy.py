"""Generic greedy set cover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.setcover.greedy import greedy_set_cover


@st.composite
def families(draw, max_sets=8, max_elements=12):
    n_elements = draw(st.integers(min_value=1, max_value=max_elements))
    elements = list(range(n_elements))
    n_sets = draw(st.integers(min_value=1, max_value=max_sets))
    sets = [
        draw(st.sets(st.sampled_from(elements)))
        for _ in range(n_sets)
    ]
    # guarantee coverability by adding each element somewhere
    for element in elements:
        idx = draw(st.integers(min_value=0, max_value=n_sets - 1))
        sets[idx].add(element)
    return sets


class TestGreedyBasics:
    def test_single_set_covers_all(self):
        assert greedy_set_cover([{1, 2, 3}]) == [0]

    def test_picks_largest_first(self):
        chosen = greedy_set_cover([{1}, {1, 2, 3}, {2}])
        assert chosen[0] == 1

    def test_classic_greedy_trap(self):
        """Greedy takes the big middle set even though two sets suffice."""
        sets = [{1, 2, 3, 4}, {1, 2, 5}, {3, 4, 6}]
        chosen = greedy_set_cover(sets)
        assert chosen[0] == 0  # largest first
        assert len(chosen) == 3  # optimal is 2 (sets 1 and 2)

    def test_tie_broken_by_lowest_index(self):
        chosen = greedy_set_cover([{1, 2}, {1, 2}])
        assert chosen == [0]

    def test_explicit_universe_subset(self):
        # only element 1 must be covered; the small set wins nothing
        chosen = greedy_set_cover([{1}, {2, 3}], universe={1})
        assert chosen == [0]

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(ValueError):
            greedy_set_cover([{1}], universe={1, 99})

    def test_empty_universe_no_picks(self):
        assert greedy_set_cover([{1, 2}], universe=set()) == []

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            greedy_set_cover([{1}], strategy="bogus")


class TestGreedyProperties:
    @given(families())
    @settings(deadline=None)
    def test_result_is_a_cover(self, sets):
        chosen = greedy_set_cover(sets)
        covered = set()
        for idx in chosen:
            covered |= sets[idx]
        universe = set()
        for s in sets:
            universe |= s
        assert covered == universe

    @given(families())
    @settings(deadline=None)
    def test_no_redundant_zero_gain_picks(self, sets):
        """Every pick must contribute at least one new element."""
        chosen = greedy_set_cover(sets)
        covered = set()
        for idx in chosen:
            gain = sets[idx] - covered
            assert gain, f"set {idx} contributed nothing"
            covered |= sets[idx]

    @given(families())
    @settings(deadline=None)
    def test_strategies_identical(self, sets):
        rescan = greedy_set_cover(sets, strategy="rescan")
        heap = greedy_set_cover(sets, strategy="lazy_heap")
        assert rescan == heap


@st.composite
def tie_heavy_families(draw, max_sets=10, max_elements=10):
    """Families engineered to force gain ties in (almost) every round.

    Elements are drawn from a small pool and every set gets one of only
    two sizes, so many sets share the maximum residual gain and the
    lowest-index tie-break decides most picks.  Duplicated sets (same
    elements, different index) sharpen it further.
    """
    n_elements = draw(st.integers(min_value=2, max_value=max_elements))
    elements = list(range(n_elements))
    small, large = draw(
        st.tuples(st.integers(1, 2), st.integers(2, 4)).map(sorted)
    )
    n_sets = draw(st.integers(min_value=2, max_value=max_sets))
    sets = []
    for _ in range(n_sets):
        size = draw(st.sampled_from([small, large]))
        size = min(size, n_elements)
        start = draw(st.integers(0, n_elements - 1))
        # contiguous windows over a ring: heavy overlap, frequent ties
        sets.append({
            elements[(start + k) % n_elements] for k in range(size)
        })
    if draw(st.booleans()):
        sets.append(set(sets[draw(st.integers(0, len(sets) - 1))]))
    # guarantee coverability
    for element in elements:
        idx = draw(st.integers(min_value=0, max_value=len(sets) - 1))
        sets[idx].add(element)
    return sets


class TestTieBreakParity:
    """The module docstring claims both strategies return identical
    covers when ties break the same way; these tests enforce it on
    tie-dense inputs, not just equal sizes."""

    @given(tie_heavy_families())
    @settings(deadline=None, max_examples=200)
    def test_identical_covers_on_tie_heavy_families(self, sets):
        rescan = greedy_set_cover(sets, strategy="rescan")
        heap = greedy_set_cover(sets, strategy="lazy_heap")
        # identical picks in identical order — the strong contract the
        # ablation benchmark's speed comparison rests on
        assert rescan == heap

    @given(tie_heavy_families(), st.data())
    @settings(deadline=None, max_examples=100)
    def test_identical_covers_with_partial_universe(self, sets, data):
        universe = set()
        for s in sets:
            universe |= s
        subset = data.draw(
            st.sets(st.sampled_from(sorted(universe)))
        ) if universe else set()
        rescan = greedy_set_cover(
            sets, universe=subset, strategy="rescan"
        )
        heap = greedy_set_cover(
            sets, universe=subset, strategy="lazy_heap"
        )
        assert rescan == heap

    def test_stale_equal_gain_entries_keep_index_order(self):
        """Regression pin for the lazy-heap drain order: after set 0's
        stale entry is re-validated down to the same gain as set 1's
        fresh entry, the smaller index must still win the tie."""
        sets = [{1, 2, 3}, {3, 4}, {1, 4}, {2, 5}, {5}]
        assert greedy_set_cover(sets, strategy="rescan") == \
            greedy_set_cover(sets, strategy="lazy_heap")
