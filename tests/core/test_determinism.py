"""Determinism: every solver must be a pure function of its instance.

Reproducibility is the whole point of this repository; any hidden
randomness or iteration-order dependence (e.g. set iteration over labels)
would silently break the experiment tables.  Each solver is run twice on
freshly constructed but identical instances and must pick identically.
"""

import random

import pytest

from repro.core.brute_force import exact_via_setcover
from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.opt import opt
from repro.core.post import Post
from repro.core.proportional import ProportionalLambda, scan_variable
from repro.core.scan import scan, scan_plus
from repro.core.streaming import stream_solve


def _build(seed: int) -> Instance:
    rng = random.Random(seed)
    n = rng.randint(5, 25)
    posts = [
        Post(
            uid=i,
            value=rng.uniform(0, 50),
            labels=frozenset(rng.sample("abcd", rng.randint(1, 3))),
        )
        for i in range(n)
    ]
    return Instance(posts, rng.choice([1.0, 4.0, 10.0]))


BATCH = (scan, scan_plus, greedy_sc, exact_via_setcover, opt)


class TestBatchDeterminism:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_picks_across_runs(self, seed):
        for solver in BATCH:
            first = solver(_build(seed))
            second = solver(_build(seed))
            assert first.uids == second.uids, solver

    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_engines_and_strategies_deterministic(self, seed):
        instance = _build(seed)
        baseline = greedy_sc(instance).uids
        assert greedy_sc(_build(seed), strategy="lazy_heap").uids \
            == baseline
        assert greedy_sc(_build(seed), engine="numpy").uids == baseline


class TestStreamingDeterminism:
    @pytest.mark.parametrize("seed", range(6))
    def test_identical_emissions_across_runs(self, seed):
        for name in ("stream_scan", "stream_scan+", "instant",
                     "stream_greedy_sc", "stream_greedy_sc+"):
            first = stream_solve(name, _build(seed), tau=3.0)
            second = stream_solve(name, _build(seed), tau=3.0)
            assert [
                (e.post.uid, e.emitted_at) for e in first.emissions
            ] == [
                (e.post.uid, e.emitted_at) for e in second.emissions
            ], name


class TestVariableLambdaDeterminism:
    @pytest.mark.parametrize("seed", range(4))
    def test_proportional_radii_and_picks_stable(self, seed):
        one = _build(seed)
        two = _build(seed)
        model_one = ProportionalLambda(one, lam0=2.0)
        model_two = ProportionalLambda(two, lam0=2.0)
        for post in one.posts:
            for label in post.labels:
                assert model_one.radius_of(post.uid, label) == \
                    model_two.radius_of(post.uid, label)
        assert scan_variable(one, model_one).uids == \
            scan_variable(two, model_two).uids
