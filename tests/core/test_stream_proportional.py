"""Streaming proportional diversity (the Section 6 extension)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.stream_proportional import (
    OnlineDensityEstimator,
    StreamScanProportional,
)
from repro.core.streaming import StreamScan
from repro.stream.runner import run_stream


def _posts(values, label="a", start_uid=0):
    return [
        Post(uid=start_uid + i, value=float(v), labels=frozenset({label}))
        for i, v in enumerate(values)
    ]


class TestOnlineDensityEstimator:
    def test_rate_rises_with_arrivals(self):
        estimator = OnlineDensityEstimator(decay=10.0)
        assert estimator.rate("a", 0.0) == 0.0
        for value in (0.0, 1.0, 2.0):
            estimator.observe(
                Post(uid=int(value), value=value, labels=frozenset("a"))
            )
        assert estimator.rate("a", 2.0) > 0.2

    def test_rate_decays_over_quiet_periods(self):
        estimator = OnlineDensityEstimator(decay=10.0)
        estimator.observe(Post(uid=0, value=0.0, labels=frozenset("a")))
        fresh = estimator.rate("a", 0.0)
        stale = estimator.rate("a", 50.0)
        assert stale < fresh * 0.05

    def test_exponential_decay_exact(self):
        estimator = OnlineDensityEstimator(decay=5.0)
        estimator.observe(Post(uid=0, value=0.0, labels=frozenset("a")))
        expected = math.exp(-10.0 / 5.0) / 5.0
        assert estimator.rate("a", 10.0) == pytest.approx(expected)

    def test_global_rate_counts_all_labels(self):
        estimator = OnlineDensityEstimator(decay=10.0)
        estimator.observe(Post(uid=0, value=0.0, labels=frozenset("a")))
        estimator.observe(Post(uid=1, value=0.0, labels=frozenset("b")))
        assert estimator.global_rate(0.0) == pytest.approx(0.2)
        assert estimator.rate("a", 0.0) == pytest.approx(0.1)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            OnlineDensityEstimator(decay=0.0)


def _run_proportional(posts, lam0, tau, **kwargs):
    labels = set()
    for post in posts:
        labels |= post.labels
    algorithm = StreamScanProportional(labels, lam0=lam0, tau=tau, **kwargs)
    result = run_stream(algorithm, sorted(posts, key=lambda p: p.value))
    return algorithm, result


class TestStreamScanProportional:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StreamScanProportional({"a"}, lam0=0.0, tau=1.0)
        with pytest.raises(ValueError):
            StreamScanProportional({"a"}, lam0=1.0, tau=-1.0)

    def test_single_post_emitted(self):
        algorithm, result = _run_proportional(
            _posts([5.0]), lam0=1.0, tau=2.0
        )
        assert result.size == 1

    def test_output_is_cover_under_replayed_radii(self):
        rng = random.Random(0)
        posts = _posts(sorted(rng.uniform(0, 100) for _ in range(60)))
        algorithm, result = _run_proportional(posts, lam0=4.0, tau=6.0)
        instance = Instance(posts, lam=4.0)
        model = algorithm.replay_model()
        assert is_cover(instance, result.to_solution().posts, model)

    def test_radii_bounded_by_e_lam0(self):
        rng = random.Random(1)
        posts = _posts(sorted(rng.uniform(0, 50) for _ in range(40)))
        algorithm, _ = _run_proportional(posts, lam0=3.0, tau=5.0)
        for radius in algorithm.assigned_radii.values():
            assert 0.0 < radius <= 3.0 * math.e + 1e-12

    def test_delay_bounded_by_tau_plus_radius(self):
        rng = random.Random(2)
        posts = _posts(sorted(rng.uniform(0, 80) for _ in range(80)))
        lam0, tau = 3.0, 4.0
        _, result = _run_proportional(posts, lam0=lam0, tau=tau)
        assert result.max_delay() <= tau + math.e * lam0 + 1e-9

    def test_dense_regions_get_more_representatives(self):
        """The proportionality claim, live: a burst followed by a sparse
        tail should receive a larger share of the output than fixed-lambda
        StreamScan gives it."""
        rng = random.Random(3)
        burst = sorted(rng.uniform(0.0, 50.0) for _ in range(120))
        tail = sorted(rng.uniform(50.0, 400.0) for _ in range(25))
        posts = _posts(burst + tail)
        lam0, tau = 10.0, 12.0

        algorithm, proportional = _run_proportional(
            posts, lam0=lam0, tau=tau, density0=len(posts) / 400.0
        )
        fixed_algorithm = StreamScan({"a"}, lam=lam0, tau=tau)
        fixed = run_stream(fixed_algorithm, posts)

        def dense_share(result):
            if result.size == 0:
                return 0.0
            dense = sum(1 for e in result.emissions
                        if e.post.value <= 50.0)
            return dense / result.size

        assert dense_share(proportional) > dense_share(fixed)

    def test_multilabel_stream_valid(self):
        rng = random.Random(4)
        posts = [
            Post(
                uid=i,
                value=float(i) * 1.7 + rng.random(),
                labels=frozenset(rng.sample("ab", rng.randint(1, 2))),
            )
            for i in range(50)
        ]
        posts.sort(key=lambda p: p.value)
        algorithm, result = _run_proportional(posts, lam0=3.0, tau=4.0)
        instance = Instance(posts, lam=3.0)
        model = algorithm.replay_model()
        assert is_cover(instance, result.to_solution().posts, model)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=40)
    def test_cover_property_random_streams(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 30)
        posts = [
            Post(
                uid=i,
                value=rng.uniform(0, 60),
                labels=frozenset(rng.sample("ab", rng.randint(1, 2))),
            )
            for i in range(n)
        ]
        posts.sort(key=lambda p: (p.value, p.uid))
        lam0 = rng.choice([1.0, 3.0])
        tau = rng.choice([0.5, 2.0, 10.0])
        algorithm, result = _run_proportional(posts, lam0=lam0, tau=tau)
        instance = Instance(posts, lam=lam0)
        model = algorithm.replay_model()
        assert is_cover(instance, result.to_solution().posts, model)
