"""Budgeted diversification (max coverage under a post budget)."""

import pytest
from hypothesis import given, settings

from repro.core.budgeted import coverage_curve, max_coverage
from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.core.proportional import ProportionalLambda

from ..conftest import small_instances


class TestMaxCoverage:
    def test_zero_budget(self, figure2_instance):
        solution, fraction = max_coverage(figure2_instance, 0)
        assert solution.size == 0
        assert fraction == 0.0

    def test_negative_budget_rejected(self, figure2_instance):
        with pytest.raises(ValueError):
            max_coverage(figure2_instance, -1)

    def test_sufficient_budget_reaches_full_coverage(
        self, figure2_instance
    ):
        solution, fraction = max_coverage(figure2_instance, 4)
        assert fraction == 1.0
        assert is_cover(figure2_instance, solution.posts)

    def test_stops_early_when_covered(self, figure2_instance):
        # full coverage needs 2 posts; a budget of 4 must not pad
        solution, fraction = max_coverage(figure2_instance, 4)
        assert solution.size == 2

    def test_budget_respected(self):
        instance = Instance.from_specs(
            [(float(v) * 10, "a") for v in range(10)], lam=1.0
        )
        solution, fraction = max_coverage(instance, 3)
        assert solution.size == 3
        assert fraction == pytest.approx(0.3)

    def test_first_pick_is_the_hub(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (0.1, "b"), (0.2, "c"), (0.3, "abc")], lam=1.0
        )
        solution, fraction = max_coverage(instance, 1)
        assert solution.posts[0].labels == frozenset("abc")
        assert fraction == 1.0

    def test_variable_lambda_model_supported(self):
        instance = Instance.from_specs(
            [(float(v), "a") for v in range(6)], lam=1.0
        )
        model = ProportionalLambda(instance, lam0=1.0)
        solution, fraction = max_coverage(instance, 2, model=model)
        assert solution.size <= 2
        assert 0.0 < fraction <= 1.0


class TestCoverageCurve:
    def test_monotone_and_bounded(self, figure2_instance):
        curve = coverage_curve(figure2_instance)
        fractions = [fraction for _, fraction in curve]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_curve_matches_pointwise_max_coverage(self, figure2_instance):
        curve = dict(coverage_curve(figure2_instance))
        for k in range(len(figure2_instance) + 1):
            _, fraction = max_coverage(figure2_instance, k)
            assert curve[k] == pytest.approx(fraction)

    def test_max_k_truncates(self, figure2_instance):
        curve = coverage_curve(figure2_instance, max_k=1)
        assert [k for k, _ in curve] == [0, 1]


class TestBudgetedProperties:
    @given(small_instances())
    @settings(deadline=None, max_examples=40)
    def test_diminishing_returns(self, instance):
        """Greedy max coverage is submodular: marginal gains shrink."""
        curve = coverage_curve(instance)
        gains = [
            round(curve[i + 1][1] - curve[i][1], 12)
            for i in range(len(curve) - 1)
        ]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(gains, gains[1:])
        )

    @given(small_instances())
    @settings(deadline=None, max_examples=40)
    def test_full_budget_is_a_cover(self, instance):
        solution, fraction = max_coverage(instance, len(instance))
        assert fraction == 1.0
        assert is_cover(instance, solution.posts)
