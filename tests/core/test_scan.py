"""Algorithm Scan / Scan+ (Section 4.3)."""

from typing import Dict, List

import pytest
from hypothesis import given

from repro.core.brute_force import exact_via_setcover
from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.scan import order_labels, scan, scan_label, scan_plus

from ..conftest import small_instances


def scan_plus_full_strike_reference(
    instance: Instance, label_order: List[str]
) -> List[Post]:
    """Scan+ with strikes applied to *every* pick label, processed or
    not — the naive formulation.  Striking already-processed labels is
    dead work (their flags are never read again) and striking the
    current label is a no-op (the value-based advance skips its window
    anyway), so the production code restricts strikes to strictly-later
    labels; this reference is the arbiter that the restriction is
    pick-preserving.
    """
    lam = instance.lam
    covered: Dict[str, List[bool]] = {
        a: [False] * len(instance.posting(a)) for a in instance.labels
    }

    def mark(picked: Post) -> None:
        for other_label in picked.labels:
            plist = instance.posting(other_label)
            lo, hi = plist.range_indices(
                picked.value - lam, picked.value + lam
            )
            lo = max(0, lo - 1)
            hi = min(len(plist), hi + 1)
            flags = covered[other_label]
            for idx in range(lo, hi):
                if abs(plist[idx].value - picked.value) <= lam:
                    flags[idx] = True

    picks: List[Post] = []
    for label in label_order:
        flags = covered[label]
        picks.extend(
            scan_label(
                instance.posting(label),
                lam,
                is_covered=lambda idx, flags=flags: flags[idx],
                on_pick=mark,
            )
        )
    return picks


class TestScanLabel:
    def _plist(self, values, label="a"):
        instance = Instance.from_specs(
            [(v, label) for v in values], lam=1.0
        )
        return instance.posting(label)

    def test_single_post(self):
        picks = scan_label(self._plist([5.0]), lam=1.0)
        assert [p.value for p in picks] == [5.0]

    def test_cluster_covered_by_furthest(self):
        """Posts 0,1,2 with lambda=1: picking the middle one suffices."""
        picks = scan_label(self._plist([0.0, 1.0, 2.0]), lam=1.0)
        assert [p.value for p in picks] == [1.0]

    def test_far_apart_posts_each_picked(self):
        picks = scan_label(self._plist([0.0, 10.0, 20.0]), lam=3.0)
        assert [p.value for p in picks] == [0.0, 10.0, 20.0]

    def test_trailing_post_added_when_uncovered(self):
        # 0,5 with lam 2: pick 0 (covers 0), then 5 must be added
        picks = scan_label(self._plist([0.0, 5.0]), lam=2.0)
        assert [p.value for p in picks] == [0.0, 5.0]

    def test_paper_greedy_shape(self):
        # 0, 5, 6, 12 with lam=2 -> picks 0 (alone), 6 (covers 5,6), 12
        picks = scan_label(self._plist([0.0, 5.0, 6.0, 12.0]), lam=2.0)
        assert [p.value for p in picks] == [0.0, 6.0, 12.0]

    def test_is_covered_skips_targets_but_not_picks(self):
        plist = self._plist([0.0, 1.0, 2.0])
        # mark index 0 covered: scan starts from index 1, picks value 2.0
        picks = scan_label(
            plist, lam=1.0, is_covered=lambda idx: idx == 0
        )
        assert [p.value for p in picks] == [2.0]

    def test_on_pick_callback_sees_every_pick(self):
        seen = []
        scan_label(self._plist([0.0, 10.0]), lam=1.0,
                   on_pick=seen.append)
        assert [p.value for p in seen] == [0.0, 10.0]

    def test_single_label_optimality_against_exact(self):
        """Scan is optimal per label (claimed in the Section 4.3 proof)."""
        values = [0.0, 0.4, 1.1, 2.0, 2.1, 5.0, 5.5, 9.0]
        instance = Instance.from_specs([(v, "a") for v in values], lam=1.0)
        picks = scan_label(instance.posting("a"), lam=1.0)
        optimal = exact_via_setcover(instance)
        assert len(picks) == optimal.size


class TestScan:
    def test_figure2_scan(self, figure2_instance):
        solution = scan(figure2_instance)
        assert is_cover(figure2_instance, solution.posts)
        # per-label optima: a -> 1 pick (P2), c -> 1 pick; union size 2
        assert solution.size == 2

    def test_scan_processes_labels_independently(self):
        # identical timelines under two labels: scan pays twice
        specs = [(0.0, "a"), (0.0, "b"), (10.0, "a"), (10.0, "b")]
        instance = Instance.from_specs(specs, lam=1.0)
        assert scan(instance).size == 4

    def test_label_order_does_not_change_plain_scan(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (1.0, "a"), (2.0, "b"), (8.0, "ab")], lam=1.0
        )
        sizes = {
            order: scan(instance, label_order=order).size
            for order in ("sorted", "longest_first", "shortest_first")
        }
        assert len(set(sizes.values())) == 1

    def test_unknown_order_rejected(self, figure2_instance):
        with pytest.raises(ValueError):
            order_labels(figure2_instance, "random")


class TestScanPlus:
    def test_cross_label_pick_reused(self):
        """A post picked for label a also covers its b pairs, so Scan+
        skips them while plain Scan pays again."""
        specs = [(0.0, "a"), (1.0, "ab"), (2.0, "b")]
        instance = Instance.from_specs(specs, lam=1.0)
        # plain Scan picks (1,'ab') for a, then (2,'b') for b
        assert scan(instance).size == 2
        # Scan+'s pick for a is the multi-label post, which strikes the
        # b pairs, so label b needs no pick at all
        plus = scan_plus(instance)
        assert is_cover(instance, plus.posts)
        assert plus.size == 1

    def test_never_worse_than_scan_on_disjoint_labels(self):
        specs = [(0.0, "a"), (5.0, "b"), (10.0, "a")]
        instance = Instance.from_specs(specs, lam=1.0)
        assert scan_plus(instance).size == scan(instance).size == 3

    def test_smoke_instance(self):
        instance = Instance.from_specs(
            [(0, "a"), (30, "ab"), (65, "b"), (70, "ab"), (120, "a")],
            lam=40,
        )
        solution = scan_plus(instance)
        assert is_cover(instance, solution.posts)
        assert solution.size <= scan(instance).size


class TestScanProperties:
    @given(small_instances())
    def test_scan_produces_valid_cover(self, instance):
        assert is_cover(instance, scan(instance).posts)

    @given(small_instances())
    def test_scan_plus_produces_valid_cover(self, instance):
        assert is_cover(instance, scan_plus(instance).posts)

    @given(small_instances())
    def test_approximation_bound_s(self, instance):
        """|Scan| <= s * |OPT| with s the max labels per post."""
        optimum = exact_via_setcover(instance).size
        s = instance.max_labels_per_post()
        assert scan(instance).size <= s * optimum

    @given(small_instances(max_labels=1))
    def test_single_label_scan_is_optimal(self, instance):
        optimum = exact_via_setcover(instance).size
        assert scan(instance).size == optimum

    @given(small_instances())
    def test_scan_plus_never_over_scan_times_labels(self, instance):
        # Scan+ is also an s-approximation (it never adds picks).
        optimum = exact_via_setcover(instance).size
        s = instance.max_labels_per_post()
        assert scan_plus(instance).size <= s * optimum

    @given(small_instances())
    def test_scan_plus_matches_full_strike_reference(self, instance):
        """Restricting strikes to later labels is pick-preserving."""
        for order in ("sorted", "longest_first", "shortest_first"):
            labels = order_labels(instance, order)
            reference = scan_plus_full_strike_reference(instance, labels)
            deduped = sorted(
                {p.uid: p for p in reference}.values(),
                key=lambda p: (p.value, p.uid),
            )
            assert scan_plus(instance, label_order=order).uids == \
                tuple(p.uid for p in deduped)
