"""Unit tests for Instance and PostingList."""

import pytest

from repro.core.instance import Instance
from repro.core.post import Post, make_posts
from repro.errors import InvalidInstanceError


class TestInstanceConstruction:
    def test_posts_sorted_by_value(self):
        instance = Instance.from_specs(
            [(5.0, "a"), (1.0, "a"), (3.0, "a")], lam=1.0
        )
        assert [p.value for p in instance.posts] == [1.0, 3.0, 5.0]

    def test_ties_broken_by_uid(self):
        posts = [
            Post(uid=2, value=1.0, labels=frozenset("a")),
            Post(uid=1, value=1.0, labels=frozenset("a")),
        ]
        instance = Instance(posts, lam=1.0)
        assert [p.uid for p in instance.posts] == [1, 2]

    def test_negative_lambda_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_specs([(1.0, "a")], lam=-0.1)

    def test_zero_lambda_allowed(self):
        instance = Instance.from_specs([(1.0, "a")], lam=0.0)
        assert instance.lam == 0.0

    def test_duplicate_uids_rejected(self):
        posts = [
            Post(uid=0, value=1.0, labels=frozenset("a")),
            Post(uid=0, value=2.0, labels=frozenset("a")),
        ]
        with pytest.raises(InvalidInstanceError):
            Instance(posts, lam=1.0)

    def test_empty_label_set_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([Post(uid=0, value=1.0, labels=frozenset())], lam=1.0)

    def test_labels_default_to_union(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (2.0, "bc")], lam=1.0
        )
        assert instance.labels == frozenset("abc")

    def test_explicit_universe_may_be_larger(self):
        instance = Instance.from_specs(
            [(1.0, "a")], lam=1.0, labels="abz"
        )
        assert instance.labels == frozenset("abz")
        assert len(instance.posting("z")) == 0

    def test_universe_smaller_than_used_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance.from_specs([(1.0, "ab")], lam=1.0, labels="a")

    def test_empty_instance_allowed(self):
        instance = Instance([], lam=1.0)
        assert len(instance) == 0
        assert instance.span() == 0.0


class TestPostingLists:
    def test_posting_list_contents(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (2.0, "ab"), (3.0, "b")], lam=1.0
        )
        assert [p.value for p in instance.posting("a")] == [1.0, 2.0]
        assert [p.value for p in instance.posting("b")] == [2.0, 3.0]

    def test_range_query_closed_bounds(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (2.0, "a"), (3.0, "a")], lam=1.0
        )
        hits = instance.posting("a").range(1.0, 2.0)
        assert [p.value for p in hits] == [1.0, 2.0]

    def test_range_query_empty(self):
        instance = Instance.from_specs([(1.0, "a")], lam=1.0)
        assert instance.posting("a").range(5.0, 9.0) == ()

    def test_count_in(self):
        instance = Instance.from_specs(
            [(float(v), "a") for v in range(10)], lam=1.0
        )
        assert instance.posting("a").count_in(2.0, 5.0) == 4

    def test_first_after(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (3.0, "a")], lam=1.0
        )
        plist = instance.posting("a")
        assert plist.first_after(1.0).value == 3.0
        assert plist.first_after(3.0) is None

    def test_posting_lists_mapping(self):
        instance = Instance.from_specs([(1.0, "ab")], lam=1.0)
        mapping = instance.posting_lists()
        assert set(mapping) == {"a", "b"}


class TestDerivedStatistics:
    def test_overlap_rate(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (2.0, "ab"), (3.0, "abc")], lam=1.0
        )
        assert instance.overlap_rate() == pytest.approx(2.0)

    def test_max_labels_per_post(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (2.0, "abc")], lam=1.0
        )
        assert instance.max_labels_per_post() == 3

    def test_span(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (9.0, "a")], lam=1.0
        )
        assert instance.span() == 8.0

    def test_post_lookup_by_uid(self):
        instance = Instance.from_specs([(1.0, "a"), (2.0, "b")], lam=1.0)
        assert instance.post(1).value == 2.0


class TestRestriction:
    def test_restricted_to_window(self):
        instance = Instance.from_specs(
            [(float(v), "a") for v in range(10)], lam=1.0
        )
        window = instance.restricted_to(3.0, 6.0)
        assert [p.value for p in window.posts] == [3.0, 4.0, 5.0, 6.0]

    def test_with_lam_keeps_posts(self):
        instance = Instance.from_specs([(1.0, "a")], lam=1.0)
        wider = instance.with_lam(5.0)
        assert wider.lam == 5.0
        assert wider.posts == instance.posts
