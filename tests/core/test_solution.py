"""The Solution result type."""

import pytest

from repro.core.post import Post, make_posts
from repro.core.solution import Solution


def _solution(values, algorithm="test"):
    return Solution.from_posts(algorithm, make_posts(
        [(v, "a") for v in values]
    ))


class TestSolution:
    def test_posts_sorted_by_value(self):
        solution = _solution([3.0, 1.0, 2.0])
        assert [p.value for p in solution.posts] == [1.0, 2.0, 3.0]

    def test_from_posts_dedupes_by_uid(self):
        post = Post(uid=0, value=1.0, labels=frozenset("a"))
        solution = Solution.from_posts("test", [post, post])
        assert solution.size == 1

    def test_uids_in_value_order(self):
        solution = _solution([2.0, 1.0])
        assert solution.uids == (1, 0)

    def test_len_and_iter(self):
        solution = _solution([1.0, 2.0])
        assert len(solution) == 2
        assert [p.value for p in solution] == [1.0, 2.0]

    def test_relative_error(self):
        solution = _solution([1.0, 2.0, 3.0])
        assert solution.relative_error(2) == pytest.approx(0.5)

    def test_relative_error_zero_optimum_rejected(self):
        with pytest.raises(ValueError):
            _solution([1.0]).relative_error(0)

    def test_elapsed_not_part_of_equality(self):
        posts = tuple(make_posts([(1.0, "a")]))
        fast = Solution(algorithm="x", posts=posts, elapsed=0.1)
        slow = Solution(algorithm="x", posts=posts, elapsed=9.9)
        assert fast == slow
