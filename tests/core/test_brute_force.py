"""The exact baselines (brute force, exact set cover)."""

import pytest
from hypothesis import given, settings

from repro.core.brute_force import (
    brute_force,
    exact_via_setcover,
    optimal_size,
)
from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.errors import AlgorithmBudgetExceeded

from ..conftest import small_instances


class TestBruteForce:
    def test_empty_instance(self):
        assert brute_force(Instance([], lam=1.0)).size == 0

    def test_figure2(self, figure2_instance):
        solution = brute_force(figure2_instance)
        assert solution.size == 2
        assert is_cover(figure2_instance, solution.posts)

    def test_post_cap_enforced(self):
        instance = Instance.from_specs(
            [(float(i), "a") for i in range(25)], lam=1.0
        )
        with pytest.raises(AlgorithmBudgetExceeded):
            brute_force(instance, max_posts=20)

    def test_finds_singleton_cover(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (0.5, "a"), (1.0, "b")], lam=1.0
        )
        assert brute_force(instance).size == 1


class TestExactViaSetcover:
    def test_figure2(self, figure2_instance):
        assert exact_via_setcover(figure2_instance).size == 2

    def test_optimal_size_helper(self, figure2_instance):
        assert optimal_size(figure2_instance) == 2

    @given(small_instances(max_posts=10))
    @settings(deadline=None, max_examples=60)
    def test_agrees_with_brute_force(self, instance):
        assert (
            exact_via_setcover(instance).size
            == brute_force(instance).size
        )

    @given(small_instances())
    def test_returns_valid_cover(self, instance):
        assert is_cover(instance, exact_via_setcover(instance).posts)
