"""Unit tests for the Post data model."""

import pytest

from repro.core.post import Post, make_posts


class TestPost:
    def test_labels_normalised_to_frozenset(self):
        post = Post(uid=0, value=1.0, labels={"a", "b"})
        assert isinstance(post.labels, frozenset)
        assert post.labels == frozenset({"a", "b"})

    def test_time_aliases_value(self):
        post = Post(uid=0, value=42.5, labels=frozenset("a"))
        assert post.time == 42.5

    def test_matches(self):
        post = Post(uid=0, value=0.0, labels=frozenset("ab"))
        assert post.matches("a")
        assert post.matches("b")
        assert not post.matches("c")

    def test_distance_is_absolute(self):
        early = Post(uid=0, value=1.0, labels=frozenset("a"))
        late = Post(uid=1, value=4.0, labels=frozenset("a"))
        assert early.distance(late) == 3.0
        assert late.distance(early) == 3.0

    def test_covers_requires_shared_label(self):
        only_a = Post(uid=0, value=0.0, labels=frozenset("a"))
        only_b = Post(uid=1, value=0.0, labels=frozenset("b"))
        assert not only_a.covers("a", only_b, lam=10.0)
        assert not only_a.covers("b", only_b, lam=10.0)

    def test_covers_requires_distance_within_lambda(self):
        first = Post(uid=0, value=0.0, labels=frozenset("a"))
        second = Post(uid=1, value=5.0, labels=frozenset("a"))
        assert first.covers("a", second, lam=5.0)
        assert not first.covers("a", second, lam=4.999)

    def test_covers_is_reflexive_with_nonnegative_lambda(self):
        post = Post(uid=0, value=3.0, labels=frozenset("a"))
        assert post.covers("a", post, lam=0.0)

    def test_same_time_different_labels_do_not_cover(self):
        """The paper's key example: an 'Obama' post does not cover an
        'economy' post even at the same timestamp."""
        obama = Post(uid=0, value=100.0, labels=frozenset({"obama"}))
        economy = Post(uid=1, value=100.0, labels=frozenset({"economy"}))
        assert not obama.covers("economy", economy, lam=60.0)

    def test_text_not_part_of_equality(self):
        one = Post(uid=0, value=0.0, labels=frozenset("a"), text="x")
        two = Post(uid=0, value=0.0, labels=frozenset("a"), text="y")
        assert one == two


class TestMakePosts:
    def test_string_labels_split_characterwise(self):
        posts = make_posts([(1.0, "ab")])
        assert posts[0].labels == frozenset({"a", "b"})

    def test_iterable_labels_accepted(self):
        posts = make_posts([(1.0, ["news", "sports"])])
        assert posts[0].labels == frozenset({"news", "sports"})

    def test_sequential_uids_from_start(self):
        posts = make_posts([(1.0, "a"), (2.0, "a")], start_uid=7)
        assert [p.uid for p in posts] == [7, 8]

    def test_optional_text_member(self):
        posts = make_posts([(1.0, "a", "hello world")])
        assert posts[0].text == "hello world"

    def test_values_coerced_to_float(self):
        posts = make_posts([(3, "a")])
        assert isinstance(posts[0].value, float)
