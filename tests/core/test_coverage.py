"""Coverage semantics: the paper's Definitions 1 & 2 plus Examples 1 & 2."""

import pytest
from hypothesis import given

from repro.core.coverage import (
    FixedLambda,
    VariableLambda,
    covered_pairs_by,
    is_cover,
    uncovered_pairs,
    verify_cover,
)
from repro.core.instance import Instance
from repro.core.post import Post
from repro.errors import InvalidCoverError

from ..conftest import small_instances


class TestFigure2Examples:
    """Example 1 and Example 2 from the paper, verbatim."""

    def test_example1_single_label_coverage(self, figure2_instance):
        p1, p2, p3, p4 = figure2_instance.posts
        lam = figure2_instance.lam
        assert p2.covers("a", p1, lam)
        assert p2.covers("a", p3, lam)
        assert p1.covers("a", p2, lam)
        assert p3.covers("a", p2, lam)
        assert p3.covers("c", p4, lam)
        assert p4.covers("c", p3, lam)
        # and the pairs the example implies are NOT covered
        assert not p1.covers("a", p3, lam)  # distance 2 Delta-t
        assert not p2.covers("c", p4, lam)  # P2 has no label c

    def test_example2_p2_p4_is_a_cover(self, figure2_instance):
        p1, p2, p3, p4 = figure2_instance.posts
        assert is_cover(figure2_instance, [p2, p4])

    def test_p2_alone_is_not_a_cover(self, figure2_instance):
        p2 = figure2_instance.posts[1]
        missing = uncovered_pairs(figure2_instance, [p2])
        assert (3, "c") in missing  # P4 (uid 3) left uncovered on c

    def test_full_set_always_covers_itself(self, figure2_instance):
        assert is_cover(figure2_instance, figure2_instance.posts)


class TestUncoveredPairs:
    def test_empty_selection_misses_every_pair(self):
        instance = Instance.from_specs([(1.0, "ab"), (2.0, "a")], lam=1.0)
        missing = set(uncovered_pairs(instance, []))
        assert missing == {(0, "a"), (0, "b"), (1, "a")}

    def test_pairwise_granularity(self):
        """A post can be covered on one label but not another."""
        instance = Instance.from_specs(
            [(0.0, "a"), (0.5, "ab")], lam=1.0
        )
        first = instance.posts[0]
        missing = uncovered_pairs(instance, [first])
        assert missing == [(1, "b")]

    def test_lambda_zero_requires_exact_colocation(self):
        instance = Instance.from_specs(
            [(1.0, "a"), (1.0, "a"), (2.0, "a")], lam=0.0
        )
        chosen = [instance.posts[0]]
        missing = uncovered_pairs(instance, chosen)
        assert missing == [(2, "a")]

    def test_verify_cover_raises_with_details(self, figure2_instance):
        with pytest.raises(InvalidCoverError) as excinfo:
            verify_cover(figure2_instance, [])
        assert "uncovered" in str(excinfo.value)

    def test_verify_cover_passes_silently(self, figure2_instance):
        p2, p4 = figure2_instance.posts[1], figure2_instance.posts[3]
        verify_cover(figure2_instance, [p2, p4])


class TestCoveredPairsBy:
    def test_pairs_within_lambda_both_directions(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "a"), (2.0, "a")], lam=1.0
        )
        middle = instance.posts[1]
        pairs = covered_pairs_by(instance, middle)
        assert pairs == {(0, "a"), (1, "a"), (2, "a")}

    def test_pairs_limited_to_own_labels(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (0.5, "b")], lam=1.0
        )
        first = instance.posts[0]
        assert covered_pairs_by(instance, first) == {
            (0, "a"), (0, "b"), (1, "b")
        }


class TestVariableLambda:
    def test_directional_coverage(self):
        """With per-post radii the relation is asymmetric (Section 6)."""
        wide = Post(uid=0, value=0.0, labels=frozenset("a"))
        narrow = Post(uid=1, value=3.0, labels=frozenset("a"))
        radii = {0: 5.0, 1: 1.0}
        model = VariableLambda(
            radius_fn=lambda post, label: radii[post.uid], upper_bound=5.0
        )
        assert model.covers(wide, "a", narrow)
        assert not model.covers(narrow, "a", wide)

    def test_variable_model_in_uncovered_pairs(self):
        posts = [
            Post(uid=0, value=0.0, labels=frozenset("a")),
            Post(uid=1, value=3.0, labels=frozenset("a")),
        ]
        instance = Instance(posts, lam=1.0)
        radii = {0: 5.0, 1: 1.0}
        model = VariableLambda(
            radius_fn=lambda post, label: radii[post.uid], upper_bound=5.0
        )
        # selecting the wide post covers everything...
        assert is_cover(instance, [posts[0]], model)
        # ...but the narrow post covers only itself
        assert uncovered_pairs(instance, [posts[1]], model) == [(0, "a")]

    def test_fixed_lambda_radius(self):
        model = FixedLambda(2.5)
        post = Post(uid=0, value=0.0, labels=frozenset("a"))
        assert model.radius(post, "a") == 2.5
        assert model.max_radius() == 2.5


class TestCoverageProperties:
    @given(small_instances())
    def test_all_posts_always_a_cover(self, instance):
        assert is_cover(instance, instance.posts)

    @given(small_instances())
    def test_uncovered_pairs_of_empty_selection_is_universe(self, instance):
        missing = set(uncovered_pairs(instance, []))
        universe = {
            (post.uid, label)
            for post in instance.posts
            for label in post.labels
        }
        assert missing == universe

    @given(small_instances())
    def test_monotone_in_selection(self, instance):
        """Adding posts to a selection never uncovers anything."""
        half = list(instance.posts[::2])
        missing_half = set(uncovered_pairs(instance, half))
        missing_all = set(uncovered_pairs(instance, instance.posts))
        assert missing_all <= missing_half
