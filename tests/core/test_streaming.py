"""StreamMQDP algorithms (Section 5)."""

import pytest
from hypothesis import given, settings

from repro.core.brute_force import exact_via_setcover
from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.scan import scan
from repro.core.streaming import (
    InstantCover,
    StreamGreedySC,
    StreamGreedySCPlus,
    StreamScan,
    StreamScanPlus,
    stream_solve,
)
from repro.stream.runner import run_stream

from ..conftest import small_instances, streaming_instances

ALL_STREAMING = (
    "stream_scan",
    "stream_scan+",
    "instant",
    "stream_greedy_sc",
    "stream_greedy_sc+",
)


def _instance(specs, lam):
    return Instance.from_specs(specs, lam=lam)


class TestStreamScanBasics:
    def test_single_post_emitted(self):
        instance = _instance([(0.0, "a")], lam=1.0)
        result = stream_solve("stream_scan", instance, tau=5.0)
        assert result.size == 1
        assert result.posts[0].uid == 0

    def test_covered_posts_not_emitted(self):
        instance = _instance([(0.0, "a"), (0.5, "a")], lam=1.0)
        result = stream_solve("stream_scan", instance, tau=0.2)
        assert result.size == 1

    def test_emits_latest_uncovered_at_deadline(self):
        # with tau >= lambda the pick is the furthest post within lambda
        instance = _instance([(0.0, "a"), (0.9, "a"), (3.0, "a")], lam=1.0)
        result = stream_solve("stream_scan", instance, tau=2.0)
        assert {p.value for p in result.posts} == {0.9, 3.0}

    def test_delay_never_exceeds_tau_when_tau_below_lambda(self):
        instance = _instance(
            [(float(i) * 0.3, "a") for i in range(30)], lam=5.0
        )
        result = stream_solve("stream_scan", instance, tau=1.0)
        assert result.max_delay() <= 1.0 + 1e-9

    def test_delay_never_exceeds_lambda_when_tau_above(self):
        instance = _instance(
            [(float(i) * 0.3, "a") for i in range(30)], lam=2.0
        )
        result = stream_solve("stream_scan", instance, tau=100.0)
        assert result.max_delay() <= 2.0 + 1e-9

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            StreamScan(labels={"a"}, lam=-1.0, tau=0.0)
        with pytest.raises(ValueError):
            StreamScan(labels={"a"}, lam=1.0, tau=-0.5)


class TestStreamScanEquivalence:
    """With tau >= lambda, StreamScan reproduces batch Scan exactly
    (Section 5.1's approximation-bound argument rests on this)."""

    @given(small_instances(max_posts=25))
    @settings(deadline=None)
    def test_matches_batch_scan_when_tau_ge_lambda(self, instance):
        batch = scan(instance)
        result = stream_solve(
            "stream_scan", instance, tau=instance.lam + 1.0
        )
        assert set(result.to_solution().uids) == set(batch.uids)


class TestStreamScanPlus:
    def test_cross_label_propagation_reduces_output(self):
        # (1,'ab') emitted for a at its deadline also serves label b
        specs = [(0.0, "a"), (1.0, "ab"), (1.2, "b")]
        instance = _instance(specs, lam=1.0)
        plain = stream_solve("stream_scan", instance, tau=2.0)
        plus = stream_solve("stream_scan+", instance, tau=2.0)
        assert plus.size <= plain.size

    def test_still_a_cover(self):
        specs = [(0.0, "ab"), (0.7, "a"), (1.4, "b"), (5.0, "ab")]
        instance = _instance(specs, lam=1.0)
        result = stream_solve("stream_scan+", instance, tau=0.5)
        assert is_cover(instance, result.to_solution().posts)


class TestInstantCover:
    def test_first_post_always_emitted(self):
        instance = _instance([(0.0, "a")], lam=1.0)
        result = stream_solve("instant", instance, tau=0.0)
        assert result.size == 1

    def test_zero_delay(self):
        instance = _instance(
            [(float(i), "a") for i in range(10)], lam=2.0
        )
        result = stream_solve("instant", instance, tau=0.0)
        assert result.max_delay() == 0.0

    def test_multilabel_post_needs_all_labels_cached(self):
        specs = [(0.0, "a"), (0.5, "ab")]
        instance = _instance(specs, lam=1.0)
        result = stream_solve("instant", instance, tau=0.0)
        # second post has label b uncovered -> emitted too
        assert result.size == 2

    def test_ratio_approaches_two_on_dense_stream(self):
        """The paper's 2s bound is tight: on a dense single-label stream
        the instant algorithm outputs ~2x the optimum.  Scan is provably
        optimal for a single label, so it serves as the exact reference
        (the branch-and-bound solver chokes on this adversarially uniform
        instance)."""
        specs = [(i * 0.1, "a") for i in range(201)]  # 20 time units
        instance = _instance(specs, lam=1.0)
        result = stream_solve("instant", instance, tau=0.0)
        optimum = scan(instance).size
        assert result.size <= 2 * optimum
        assert result.size >= 1.5 * optimum  # demonstrably worse than opt

    def test_2s_bound_property(self):
        specs = [(0.0, "ab"), (0.5, "a"), (0.9, "b"), (2.0, "ab")]
        instance = _instance(specs, lam=1.0)
        result = stream_solve("instant", instance, tau=0.0)
        s = instance.max_labels_per_post()
        optimum = exact_via_setcover(instance).size
        assert result.size <= 2 * s * optimum


class TestInstantCoverMemoryBound:
    def test_cache_holds_value_uid_pairs_not_posts(self):
        cover = InstantCover(["a"], lam=1.0)
        post = Post(uid=7, value=3.0, labels=frozenset({"a"}),
                    text="x" * 4096)
        cover.on_arrival(post)
        assert cover._cache["a"] == (3.0, 7)

    def test_window_evicts_stale_entries(self):
        cover = InstantCover(["a", "b"], lam=1.0, window=5.0)
        cover.on_arrival(
            Post(uid=1, value=0.0, labels=frozenset({"a"}), text="")
        )
        cover.on_arrival(
            Post(uid=2, value=4.0, labels=frozenset({"b"}), text="")
        )
        assert cover.evicted == 0
        # at t=6 the a-entry (t=0) is older than the window
        cover.on_arrival(
            Post(uid=3, value=6.0, labels=frozenset({"b"}), text="")
        )
        assert cover.evicted == 1
        assert "a" not in cover._cache

    def test_window_below_lambda_rejected(self):
        with pytest.raises(ValueError):
            InstantCover(["a"], lam=2.0, window=1.0)
        InstantCover(["a"], lam=2.0, window=2.0)  # boundary is fine

    @given(streaming_instances())
    @settings(deadline=None, max_examples=60)
    def test_windowed_emissions_identical(self, instance_tau):
        """Any window >= lambda leaves the emission sequence untouched on
        a time-ordered stream: an entry older than the window can never
        cover a future arrival."""
        instance, _ = instance_tau
        plain = InstantCover(instance.labels, instance.lam)
        windowed = InstantCover(
            instance.labels, instance.lam,
            window=instance.lam,
        )
        for post in instance.posts:
            assert [e.post.uid for e in plain.on_arrival(post)] == \
                [e.post.uid for e in windowed.on_arrival(post)]


class TestStreamGreedySC:
    def test_window_respects_tau_delay(self):
        instance = _instance(
            [(float(i) * 0.5, "a") for i in range(40)], lam=3.0
        )
        result = stream_solve("stream_greedy_sc", instance, tau=2.0)
        assert result.max_delay() <= 2.0 + 1e-9

    def test_covers_everything(self):
        specs = [(0.0, "ab"), (1.0, "a"), (2.5, "b"), (4.0, "ab")]
        instance = _instance(specs, lam=1.0)
        result = stream_solve("stream_greedy_sc", instance, tau=1.5)
        assert is_cover(instance, result.to_solution().posts)

    def test_plus_variant_covers_everything(self):
        specs = [(0.0, "ab"), (1.0, "a"), (2.5, "b"), (4.0, "ab")]
        instance = _instance(specs, lam=1.0)
        result = stream_solve("stream_greedy_sc+", instance, tau=1.5)
        assert is_cover(instance, result.to_solution().posts)

    def test_hub_post_selected_within_window(self):
        # three single-label posts + a hub inside one tau window: the
        # greedy should spend one output, not three
        specs = [(0.0, "a"), (0.1, "b"), (0.2, "c"), (0.3, "abc")]
        instance = _instance(specs, lam=1.0)
        result = stream_solve("stream_greedy_sc", instance, tau=1.0)
        assert result.size == 1
        assert result.posts[0].labels == frozenset("abc")

    def test_unknown_algorithm_name(self):
        instance = _instance([(0.0, "a")], lam=1.0)
        with pytest.raises(KeyError):
            stream_solve("nope", instance, tau=1.0)


class TestStreamingProperties:
    @given(streaming_instances())
    @settings(deadline=None, max_examples=60)
    def test_every_algorithm_emits_a_cover(self, instance_tau):
        instance, tau = instance_tau
        for name in ALL_STREAMING:
            result = stream_solve(name, instance, tau=tau)
            assert is_cover(instance, result.to_solution().posts), name

    @given(streaming_instances())
    @settings(deadline=None, max_examples=60)
    def test_delay_bound(self, instance_tau):
        """Every emission happens within max(tau, lambda) of publication —
        tau for the window algorithms, lambda for StreamScan's early
        deadline (min(t_lu + tau, t_ou + lambda))."""
        instance, tau = instance_tau
        bound = max(tau, instance.lam) + 1e-9
        for name in ALL_STREAMING:
            result = stream_solve(name, instance, tau=tau)
            assert result.max_delay() <= bound, name

    @given(small_instances(max_posts=20))
    @settings(deadline=None, max_examples=40)
    def test_stream_scan_2s_bound(self, instance):
        """StreamScan's bound: s when tau >= lambda, 2s when below."""
        s = instance.max_labels_per_post()
        optimum = exact_via_setcover(instance).size
        late = stream_solve("stream_scan", instance,
                            tau=instance.lam + 1.0)
        assert late.size <= s * optimum
        early = stream_solve("stream_scan", instance, tau=0.0)
        assert early.size <= 2 * s * optimum
