"""The vectorised (numpy) set-cover family builder."""

import random

import pytest
from hypothesis import given, settings

from repro.core.fastpath import build_family_encoded, decode_pair
from repro.core.greedy_sc import build_setcover_family, greedy_sc
from repro.core.instance import Instance

from ..conftest import small_instances


class TestEncodedFamily:
    def test_matches_python_builder(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (1.0, "a"), (3.0, "b"), (3.5, "ab")], lam=1.0
        )
        py_family, py_universe = build_setcover_family(instance)
        np_family, np_universe, labels = build_family_encoded(instance)

        def decode_set(encoded_set):
            return {
                decode_pair(code, instance, labels)
                for code in encoded_set
            }

        assert decode_set(np_universe) == py_universe
        for py_set, np_set in zip(py_family, np_family):
            assert decode_set(np_set) == py_set

    def test_empty_label_lists_tolerated(self):
        instance = Instance.from_specs(
            [(0.0, "a")], lam=1.0, labels="ab"
        )
        family, universe, labels = build_family_encoded(instance)
        assert len(universe) == 1
        assert family[0]

    def test_decode_roundtrip(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "b")], lam=1.0
        )
        _, universe, labels = build_family_encoded(instance)
        decoded = {
            decode_pair(code, instance, labels) for code in universe
        }
        assert decoded == {(0, "a"), (1, "b")}

    @given(small_instances())
    @settings(deadline=None, max_examples=60)
    def test_families_equivalent_property(self, instance):
        py_family, py_universe = build_setcover_family(instance)
        np_family, np_universe, labels = build_family_encoded(instance)
        assert len(np_universe) == len(py_universe)
        for py_set, np_set in zip(py_family, np_family):
            assert len(py_set) == len(np_set)
            assert {
                decode_pair(code, instance, labels) for code in np_set
            } == py_set


class TestEngineEquivalence:
    def test_unknown_engine_rejected(self, figure2_instance):
        with pytest.raises(ValueError):
            greedy_sc(figure2_instance, engine="fortran")

    @given(small_instances())
    @settings(deadline=None, max_examples=60)
    def test_engines_pick_identically(self, instance):
        python = greedy_sc(instance, engine="python")
        vectorised = greedy_sc(instance, engine="numpy")
        assert python.uids == vectorised.uids

    @pytest.mark.parametrize("seed", range(5))
    def test_engines_on_float_boundaries(self, seed):
        """The numpy windows must honour the same ulp discipline."""
        rng = random.Random(seed)
        values = [0.0, 0.3, 0.5, 0.8, 0.3 + 0.5, 0.8 - 0.3, 1.1]
        specs = [
            (rng.choice(values), rng.choice(["a", "b", "ab"]))
            for _ in range(10)
        ]
        instance = Instance.from_specs(specs, lam=0.3)
        assert (
            greedy_sc(instance, engine="python").uids
            == greedy_sc(instance, engine="numpy").uids
        )
