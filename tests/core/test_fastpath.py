"""The vectorised (numpy) set-cover family builder."""

import random

import pytest
from hypothesis import given, settings

from repro.core.fastpath import build_family_encoded, decode_pair
from repro.core.greedy_sc import build_setcover_family, greedy_sc
from repro.core.instance import Instance

from ..conftest import small_instances


class TestEncodedFamily:
    def test_matches_python_builder(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (1.0, "a"), (3.0, "b"), (3.5, "ab")], lam=1.0
        )
        py_family, py_universe = build_setcover_family(instance)
        np_family, np_universe, labels = build_family_encoded(instance)

        def decode_set(encoded_set):
            return {
                decode_pair(code, instance, labels)
                for code in encoded_set
            }

        assert decode_set(np_universe) == py_universe
        for py_set, np_set in zip(py_family, np_family):
            assert decode_set(np_set) == py_set

    def test_empty_label_lists_tolerated(self):
        instance = Instance.from_specs(
            [(0.0, "a")], lam=1.0, labels="ab"
        )
        family, universe, labels = build_family_encoded(instance)
        assert len(universe) == 1
        assert family[0]

    def test_decode_roundtrip(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "b")], lam=1.0
        )
        _, universe, labels = build_family_encoded(instance)
        decoded = {
            decode_pair(code, instance, labels) for code in universe
        }
        assert decoded == {(0, "a"), (1, "b")}

    @given(small_instances())
    @settings(deadline=None, max_examples=60)
    def test_families_equivalent_property(self, instance):
        py_family, py_universe = build_setcover_family(instance)
        np_family, np_universe, labels = build_family_encoded(instance)
        assert len(np_universe) == len(py_universe)
        for py_set, np_set in zip(py_family, np_family):
            assert len(py_set) == len(np_set)
            assert {
                decode_pair(code, instance, labels) for code in np_set
            } == py_set


class TestEngineEquivalence:
    def test_unknown_engine_rejected(self, figure2_instance):
        with pytest.raises(ValueError):
            greedy_sc(figure2_instance, engine="fortran")

    @given(small_instances())
    @settings(deadline=None, max_examples=60)
    def test_engines_pick_identically(self, instance):
        python = greedy_sc(instance, engine="python")
        vectorised = greedy_sc(instance, engine="numpy")
        assert python.uids == vectorised.uids

    @pytest.mark.parametrize("seed", range(5))
    def test_engines_on_float_boundaries(self, seed):
        """The numpy windows must honour the same ulp discipline."""
        rng = random.Random(seed)
        values = [0.0, 0.3, 0.5, 0.8, 0.3 + 0.5, 0.8 - 0.3, 1.1]
        specs = [
            (rng.choice(values), rng.choice(["a", "b", "ab"]))
            for _ in range(10)
        ]
        instance = Instance.from_specs(specs, lam=0.3)
        assert (
            greedy_sc(instance, engine="python").uids
            == greedy_sc(instance, engine="numpy").uids
        )


def _decoded_family(instance):
    family, universe, labels = build_family_encoded(instance)
    decode = lambda s: {  # noqa: E731
        decode_pair(code, instance, labels) for code in s
    }
    return [decode(s) for s in family], decode(universe)


def _assert_family_parity(instance):
    py_family, py_universe = build_setcover_family(instance)
    np_family, np_universe = _decoded_family(instance)
    assert np_universe == py_universe
    for idx, (py_set, np_set) in enumerate(zip(py_family, np_family)):
        assert np_set == py_set, (
            f"family[{idx}] diverges: numpy-only "
            f"{sorted(np_set - py_set)}, python-only "
            f"{sorted(py_set - np_set)}"
        )


class TestExactLambdaBoundary:
    """Pairs at distance exactly ``lambda`` — the float-equality edge of
    the ulp-widened ``searchsorted`` windows.

    ``values ± lam`` computed in float can land one ulp off the true
    boundary, which is why both builders widen the bisect window and then
    re-filter with the exact ``abs`` subtraction.  Each case here places
    posts *exactly* lambda apart (including sums that round, like
    ``0.1 + 0.2``) and asserts the two builders produce identical pair
    sets, not merely identical greedy picks.
    """

    def test_exact_distance_is_included_by_both(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.5, "a"), (3.0, "a")], lam=1.5
        )
        py_family, _ = build_setcover_family(instance)
        # the middle post covers all three; the outer two cover two each
        assert len(py_family[1]) == 3
        assert len(py_family[0]) == len(py_family[2]) == 2
        _assert_family_parity(instance)

    def test_rounded_sum_boundary(self):
        # 0.1 + 0.2 = 0.30000000000000004 > 0.3: the pair (0.1+0.2, 0.3+0.3)
        # sits one ulp beyond lam while (0.3, 0.3+0.3) sits exactly on it
        instance = Instance.from_specs(
            [(0.3, "a"), (0.1 + 0.2, "a"), (0.3 + 0.3, "a")], lam=0.3
        )
        _assert_family_parity(instance)

    def test_subtraction_asymmetry(self):
        # 0.8 - 0.5 > 0.3 in floats although 0.5 + 0.3 == 0.8: windows
        # derived from v + lam disagree with the subtraction filter here
        instance = Instance.from_specs(
            [(0.5, "a"), (0.8, "a"), (0.8 - 0.3, "a")], lam=0.3
        )
        py_family, _ = build_setcover_family(instance)
        np_family, _ = _decoded_family(instance)
        # 0.8 - 0.5 > 0.3, so posts 0 and 1 must NOT cover each other
        assert (1, "a") not in py_family[0]
        assert (1, "a") not in np_family[0]
        _assert_family_parity(instance)

    def test_duplicate_values_at_boundary(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (0.0, "ab"), (0.3, "ab"), (0.3, "b"),
             (0.6, "a")],
            lam=0.3,
        )
        _assert_family_parity(instance)

    def test_lambda_zero_only_exact_duplicates_pair(self):
        tiny = 5e-324  # smallest subnormal: adjacent but not equal
        instance = Instance.from_specs(
            [(0.0, "a"), (0.0, "a"), (tiny, "a")], lam=0.0
        )
        py_family, _ = build_setcover_family(instance)
        assert (2, "a") not in py_family[0]
        _assert_family_parity(instance)

    def test_large_magnitude_boundary(self):
        # at 1e15 the spacing between floats exceeds 0.1: v + lam rounds
        base = 1e15
        instance = Instance.from_specs(
            [(base, "a"), (base + 0.1, "a"), (base + 0.25, "a")],
            lam=0.1,
        )
        _assert_family_parity(instance)

    @pytest.mark.parametrize("lam", [0.3, 0.1 + 0.2, 0.5, 1e-9])
    def test_grid_of_exact_multiples(self, lam):
        # every adjacent pair exactly lam apart, accumulated by addition
        # so rounding drifts across the grid
        values, v = [], 0.0
        for _ in range(8):
            values.append(v)
            v += lam
        specs = [
            (value, "ab" if k % 2 else "a")
            for k, value in enumerate(values)
        ]
        instance = Instance.from_specs(specs, lam=lam)
        _assert_family_parity(instance)
        assert (
            greedy_sc(instance, engine="python").uids
            == greedy_sc(instance, engine="numpy").uids
        )
