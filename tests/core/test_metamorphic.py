"""Metamorphic tests: transformations that must not change the answer.

The diversity dimension is only ever consumed through *differences*
against lambda, and labels only through identity — so solutions must be
invariant under value translation, value+lambda scaling, axis mirroring
and label renaming.  Each property is checked for every batch solver and
(where the transformation preserves arrival order) the streaming ones.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute_force import exact_via_setcover
from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.opt import opt_size
from repro.core.post import Post
from repro.core.scan import scan, scan_plus
from repro.core.streaming import stream_solve

BATCH_SIZES = {
    "scan": lambda i: scan(i).size,
    "scan+": lambda i: scan_plus(i).size,
    "greedy_sc": lambda i: greedy_sc(i).size,
    "exact": lambda i: exact_via_setcover(i).size,
    "opt": opt_size,
}


def _random_instance(seed: int) -> Instance:
    rng = random.Random(seed)
    n = rng.randint(1, 12)
    posts = [
        Post(
            uid=i,
            value=rng.uniform(0, 20),
            labels=frozenset(rng.sample("abc", rng.randint(1, 2))),
        )
        for i in range(n)
    ]
    return Instance(posts, rng.choice([0.5, 1.5, 4.0]))


def _translate(instance: Instance, offset: float) -> Instance:
    posts = [
        Post(uid=p.uid, value=p.value + offset, labels=p.labels)
        for p in instance.posts
    ]
    return Instance(posts, instance.lam)


def _scale(instance: Instance, factor: float) -> Instance:
    posts = [
        Post(uid=p.uid, value=p.value * factor, labels=p.labels)
        for p in instance.posts
    ]
    return Instance(posts, instance.lam * factor)


def _mirror(instance: Instance) -> Instance:
    posts = [
        Post(uid=p.uid, value=-p.value, labels=p.labels)
        for p in instance.posts
    ]
    return Instance(posts, instance.lam)


def _rename(instance: Instance) -> Instance:
    mapping = {"a": "xx", "b": "yy", "c": "zz"}
    posts = [
        Post(
            uid=p.uid,
            value=p.value,
            labels=frozenset(mapping[label] for label in p.labels),
        )
        for p in instance.posts
    ]
    return Instance(posts, instance.lam)


class TestTranslationInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_batch_sizes_unchanged(self, seed):
        instance = _random_instance(seed)
        # power-of-two offset: exactly representable, so the float
        # differences the solvers compare are bit-identical
        shifted = _translate(instance, 4096.0)
        for name, size_of in BATCH_SIZES.items():
            assert size_of(instance) == size_of(shifted), name

    @pytest.mark.parametrize("seed", range(6))
    def test_streaming_sizes_unchanged(self, seed):
        instance = _random_instance(seed)
        shifted = _translate(instance, 4096.0)
        for name in ("stream_scan", "instant", "stream_greedy_sc"):
            before = stream_solve(name, instance, tau=1.0).size
            after = stream_solve(name, shifted, tau=1.0).size
            assert before == after, name


class TestScaleInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_batch_sizes_unchanged(self, seed):
        instance = _random_instance(seed)
        scaled = _scale(instance, 4.0)  # power of two: exact
        for name, size_of in BATCH_SIZES.items():
            assert size_of(instance) == size_of(scaled), name


class TestMirrorInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_exact_sizes_unchanged(self, seed):
        """Reversing the axis cannot change the optimum (coverage is
        symmetric); greedy tie-breaks may shift picks but exact solvers
        must agree exactly."""
        instance = _random_instance(seed)
        mirrored = _mirror(instance)
        assert opt_size(instance) == opt_size(mirrored)
        assert (
            exact_via_setcover(instance).size
            == exact_via_setcover(mirrored).size
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_scan_per_label_counts_unchanged(self, seed):
        """Scan's per-label pick *counts* are mirror-proof (per-label
        optimality); the union size is not, because mirroring changes
        which picks happen to coincide across labels."""
        from repro.core.scan import scan_label

        instance = _random_instance(seed)
        mirrored = _mirror(instance)
        for label in instance.labels:
            before = len(
                scan_label(instance.posting(label), instance.lam)
            )
            after = len(
                scan_label(mirrored.posting(label), mirrored.lam)
            )
            assert before == after, label


class TestLabelRenamingInvariance:
    @pytest.mark.parametrize("seed", range(10))
    def test_all_sizes_unchanged(self, seed):
        instance = _random_instance(seed)
        renamed = _rename(instance)
        for name, size_of in BATCH_SIZES.items():
            assert size_of(instance) == size_of(renamed), name


class TestUidRelabelingInvariance:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=25)
    def test_exact_size_ignores_uid_values(self, seed):
        instance = _random_instance(seed)
        remapped = Instance(
            [
                Post(uid=p.uid * 17 + 3, value=p.value, labels=p.labels)
                for p in instance.posts
            ],
            instance.lam,
        )
        assert (
            exact_via_setcover(instance).size
            == exact_via_setcover(remapped).size
        )
