"""Float-boundary regressions.

Coverage is defined by ``abs(t_i - t_j) <= lambda``; any window computed as
``t_i + lambda >= t_j`` (or bisect bounds derived from it) can disagree with
that at boundary floats — ``0.5 + 0.3 == 0.8`` yet ``0.8 - 0.5 > 0.3``, and
``0.8 - 0.3 == 0.5`` yet ``0.8 - 0.5 > 0.3``.  These tests pin concrete
instances where each solver originally produced a non-cover (or the verifier
a false negative) before the arithmetic was unified.
"""

import random

import pytest

from repro.core.brute_force import brute_force, exact_via_setcover
from repro.core.coverage import is_cover, uncovered_pairs
from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.opt import opt
from repro.core.post import Post
from repro.core.scan import scan, scan_plus
from repro.core.streaming import stream_solve

TRICKY_VALUES = [0.0, 0.3, 0.5, 0.8, 1.0, 0.3 + 0.5, 0.1 + 0.2,
                 0.8 - 0.3, 0.8 - 0.5, 1.1]

STREAMING = ("stream_scan", "stream_scan+", "instant",
             "stream_greedy_sc", "stream_greedy_sc+")


def _instance(spec, lam):
    posts = [
        Post(uid=uid, value=value, labels=frozenset(labels))
        for uid, value, labels in spec
    ]
    return Instance(posts, lam)


class TestPinnedRegressions:
    def test_stream_scan_deadline_tie(self):
        """t_ou + lam == arrival in floats although the true gap exceeds
        lambda: the arrival must not join the pending window."""
        instance = _instance(
            [(0, 0.5, "a"), (2, 0.5, "a"), (1, 0.8, "a")], lam=0.3
        )
        result = stream_solve("stream_scan", instance, tau=0.3)
        assert is_cover(instance, result.to_solution().posts)

    def test_verifier_no_false_negative_at_boundary(self):
        """0.8 - 0.3 == 0.5 <= lam, but the bisect prefilter bound
        0.8 - 0.5 rounds above 0.3 — the verifier must still see the
        coverer."""
        instance = _instance([(0, 0.3, "a"), (1, 0.8, "a")], lam=0.5)
        selected = [instance.post(0)]
        assert uncovered_pairs(instance, selected) == []

    def test_scan_plus_boundary_marking(self):
        instance = _instance(
            [(0, 0.3, "a"), (3, 0.3, "ab"), (2, 0.3 + 1e-16, "b"),
             (1, 0.8, "a")],
            lam=0.5,
        )
        assert is_cover(instance, scan_plus(instance).posts)

    def test_instant_cover_boundary(self):
        instance = _instance(
            [(2, 0.3, "ab"), (3, 0.30000000000000004, "ab"),
             (1, 0.5, "ab"), (0, 0.8, "a")],
            lam=0.5,
        )
        result = stream_solve("instant", instance, tau=0.3)
        assert is_cover(instance, result.to_solution().posts)

    def test_opt_frontier_survives_old_new_boundary(self):
        """f(j) computed additively can strand a post between 'old' and
        'introducible'; the DP must not dead-end."""
        instance = _instance(
            [(0, 0.5, "a"), (1, 0.8, "a"), (2, 1.1, "a")], lam=0.3
        )
        solution = opt(instance)
        assert is_cover(instance, solution.posts)
        assert solution.size == exact_via_setcover(instance).size


class TestAdversarialSweep:
    """Randomised sweep over the tricky float values: every solver must
    return a verifier-valid cover and the exact solvers must agree."""

    @pytest.mark.parametrize("seed", range(6))
    def test_all_solvers_consistent(self, seed):
        rng = random.Random(seed)
        for _ in range(250):
            n = rng.randint(1, 4)
            posts = [
                Post(
                    uid=i,
                    value=rng.choice(TRICKY_VALUES),
                    labels=frozenset(rng.sample("ab", rng.randint(1, 2))),
                )
                for i in range(n)
            ]
            lam = rng.choice([0.0, 0.3, 0.5, 0.1 + 0.2])
            tau = rng.choice([0.0, 0.3, 0.5])
            instance = Instance(posts, lam)
            exact_sizes = set()
            for solver in (opt, exact_via_setcover, brute_force):
                solution = solver(instance)
                assert is_cover(instance, solution.posts), solver
                exact_sizes.add(solution.size)
            assert len(exact_sizes) == 1
            for solver in (scan, scan_plus, greedy_sc):
                solution = solver(instance)
                assert is_cover(instance, solution.posts), solver
                assert solution.size >= max(exact_sizes)
            for name in STREAMING:
                result = stream_solve(name, instance, tau=tau)
                assert is_cover(
                    instance, result.to_solution().posts
                ), name
