"""Algorithm OPT — the exact end-pattern dynamic program (Section 4.1)."""

import pytest
from hypothesis import given, settings

from repro.core.brute_force import brute_force, exact_via_setcover
from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.core.opt import opt, opt_size
from repro.errors import AlgorithmBudgetExceeded

from ..conftest import small_instances


class TestOptBasics:
    def test_empty_instance(self):
        assert opt(Instance([], lam=1.0)).size == 0

    def test_single_post(self):
        assert opt_size(Instance.from_specs([(1.0, "a")], lam=1.0)) == 1

    def test_figure2(self, figure2_instance):
        solution = opt(figure2_instance)
        assert is_cover(figure2_instance, solution.posts)
        assert solution.size == 2

    def test_smoke_instance(self):
        instance = Instance.from_specs(
            [(0, "a"), (30, "ab"), (65, "b"), (70, "ab"), (120, "a")],
            lam=40,
        )
        solution = opt(instance)
        assert is_cover(instance, solution.posts)
        assert solution.size == 2
        assert solution.uids == (1, 4)

    def test_identical_timestamps(self):
        """Set-cover-like degenerate case: everything at one time."""
        instance = Instance.from_specs(
            [(0.0, "a"), (0.0, "b"), (0.0, "ab")], lam=1.0
        )
        assert opt_size(instance) == 1

    def test_disjoint_labels_need_one_pick_each(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (0.0, "b"), (0.0, "c")], lam=5.0
        )
        assert opt_size(instance) == 3

    def test_lambda_zero(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "a"), (2.0, "a")], lam=0.0
        )
        assert opt_size(instance) == 3

    def test_future_post_can_cover(self):
        """A selected post may come after the covered one (f(j) > j)."""
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "ab")], lam=1.0
        )
        # picking only the later post covers both
        assert opt_size(instance) == 1

    def test_budget_exceeded_raises(self):
        specs = [(float(i), "abc"[i % 3] + "abc"[(i + 1) % 3])
                 for i in range(40)]
        instance = Instance.from_specs(specs, lam=20.0)
        with pytest.raises(AlgorithmBudgetExceeded):
            opt(instance, budget=100)

    def test_solution_posts_are_instance_posts(self, figure2_instance):
        solution = opt(figure2_instance)
        uids = {p.uid for p in figure2_instance.posts}
        assert all(p.uid in uids for p in solution.posts)


class TestSizeOnlyMode:
    """opt_size runs the two-frontier (lower-space) DP variant."""

    def test_empty(self):
        assert opt_size(Instance([], lam=1.0)) == 0

    def test_matches_reconstructing_mode(self, figure2_instance):
        assert opt_size(figure2_instance) == opt(figure2_instance).size

    @given(small_instances(max_posts=10, max_labels=3))
    @settings(deadline=None, max_examples=40)
    def test_agreement_property(self, instance):
        assert opt_size(instance) == opt(instance).size


class TestOptCrossValidation:
    """The heart of the test pyramid: three independent exact solvers
    must agree on every random instance."""

    @given(small_instances(max_posts=9, max_labels=3))
    @settings(deadline=None, max_examples=60)
    def test_opt_matches_brute_force(self, instance):
        dp = opt(instance)
        assert is_cover(instance, dp.posts)
        assert dp.size == brute_force(instance).size

    @given(small_instances(max_posts=12, max_labels=3))
    @settings(deadline=None, max_examples=60)
    def test_opt_matches_exact_setcover(self, instance):
        assert opt_size(instance) == exact_via_setcover(instance).size

    @given(small_instances(max_posts=12, max_labels=3))
    @settings(deadline=None, max_examples=40)
    def test_opt_lower_bounds_everything(self, instance):
        from repro.core.greedy_sc import greedy_sc
        from repro.core.scan import scan, scan_plus

        optimum = opt_size(instance)
        for solver in (scan, scan_plus, greedy_sc):
            assert solver(instance).size >= optimum
