"""The algorithm registry."""

import pytest

from repro.core.registry import available_algorithms, register, solve
from repro.core.solution import Solution
from repro.errors import UnknownAlgorithmError


class TestRegistry:
    def test_expected_algorithms_present(self):
        names = available_algorithms()
        for expected in ("opt", "scan", "scan+", "greedy_sc",
                         "brute_force", "exact_setcover"):
            assert expected in names

    def test_solve_dispatches(self, figure2_instance):
        solution = solve("scan", figure2_instance)
        assert isinstance(solution, Solution)
        assert solution.algorithm == "scan"

    def test_unknown_name_raises_with_suggestions(self, figure2_instance):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            solve("scanner", figure2_instance)
        assert "scan" in str(excinfo.value)

    def test_kwargs_forwarded(self, figure2_instance):
        solution = solve("greedy_sc", figure2_instance,
                         strategy="lazy_heap")
        assert solution.size == 2

    def test_register_custom_and_reject_duplicates(self, figure2_instance):
        def fake(instance):
            return Solution.from_posts("fake", list(instance.posts))

        name = "all_posts_test_only"
        if name not in available_algorithms():
            register(name, fake)
        assert solve(name, figure2_instance).size == 4
        with pytest.raises(ValueError):
            register(name, fake)

    def test_unregister_custom_solver(self, figure2_instance):
        from repro.core.registry import unregister

        def fake(instance):
            return Solution.from_posts("fake", list(instance.posts))

        register("ephemeral_test_only", fake)
        assert "ephemeral_test_only" in available_algorithms()
        unregister("ephemeral_test_only")
        assert "ephemeral_test_only" not in available_algorithms()
        # and the name is reusable afterwards
        register("ephemeral_test_only", fake)
        unregister("ephemeral_test_only")

    def test_unregister_unknown_raises(self):
        from repro.core.registry import unregister

        with pytest.raises(UnknownAlgorithmError):
            unregister("never_registered")

    def test_unregister_builtin_refused(self):
        from repro.core.registry import unregister

        with pytest.raises(ValueError):
            unregister("scan")
        assert "scan" in available_algorithms()
