"""Pathological inputs: every solver must behave at the edges.

Degenerate shapes a production system will eventually receive: single
posts, everything at one timestamp (the set-cover degeneration of
Section 3), enormous and zero lambdas, one post per label, thousand-post
single-label lines, adversarial duplicate values.
"""

import pytest

from repro.core.brute_force import exact_via_setcover
from repro.core.coverage import is_cover
from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.opt import opt, opt_size
from repro.core.post import Post
from repro.core.scan import scan, scan_plus
from repro.core.streaming import stream_solve

BATCH = (scan, scan_plus, greedy_sc, exact_via_setcover, opt)
STREAMING = ("stream_scan", "stream_scan+", "instant",
             "stream_greedy_sc", "stream_greedy_sc+")


def _check_all(instance, expected_exact=None):
    exact = exact_via_setcover(instance).size
    if expected_exact is not None:
        assert exact == expected_exact
    for solver in BATCH:
        solution = solver(instance)
        assert is_cover(instance, solution.posts), solver
        assert solution.size >= exact
    for name in STREAMING:
        result = stream_solve(name, instance, tau=1.0)
        assert is_cover(instance, result.to_solution().posts), name
    return exact


class TestDegenerateShapes:
    def test_single_post(self):
        instance = Instance.from_specs([(0.0, "a")], lam=1.0)
        assert _check_all(instance, expected_exact=1) == 1

    def test_all_posts_identical(self):
        instance = Instance.from_specs([(5.0, "a")] * 7, lam=1.0)
        _check_all(instance, expected_exact=1)

    def test_single_timestamp_is_set_cover(self):
        """Section 3's observation: all posts at one time = set cover."""
        instance = Instance.from_specs(
            [(0.0, "ab"), (0.0, "bc"), (0.0, "ac"), (0.0, "a")], lam=1.0
        )
        # {ab, ac} or {ab, bc} etc: two sets cover {a, b, c}
        _check_all(instance, expected_exact=2)

    def test_one_post_per_label(self):
        instance = Instance.from_specs(
            [(float(i), letter) for i, letter in enumerate("abcd")],
            lam=100.0,
        )
        _check_all(instance, expected_exact=4)

    def test_huge_lambda_collapses_to_set_cover(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1e9, "ab"), (2e9, "b")], lam=1e18
        )
        _check_all(instance, expected_exact=1)

    def test_zero_lambda_requires_colocation(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "a"), (1.0, "a"), (2.0, "a")], lam=0.0
        )
        _check_all(instance, expected_exact=3)

    def test_negative_values_fine(self):
        instance = Instance.from_specs(
            [(-10.0, "a"), (-9.5, "a"), (3.0, "a")], lam=1.0
        )
        _check_all(instance, expected_exact=2)

    def test_long_single_label_line(self):
        """A thousand evenly spaced posts: scan must be optimal and every
        solver must stay linear-ish (this also smoke-tests memory)."""
        instance = Instance.from_specs(
            [(float(i), "a") for i in range(1000)], lam=3.5
        )
        expected = scan(instance).size
        assert is_cover(instance, scan(instance).posts)
        assert greedy_sc(instance).size >= expected
        # streaming with tau >= lambda equals batch scan
        streamed = stream_solve("stream_scan", instance, tau=4.0)
        assert streamed.size == expected

    def test_interleaved_duplicate_values_two_labels(self):
        specs = []
        for i in range(20):
            specs.append((float(i // 2), "a" if i % 2 else "b"))
        instance = Instance.from_specs(specs, lam=2.0)
        _check_all(instance)

    def test_extreme_overlap_every_post_all_labels(self):
        instance = Instance.from_specs(
            [(float(i), "abc") for i in range(12)], lam=2.0
        )
        exact = _check_all(instance)
        # with total overlap, greedy matches the single-label optimum
        assert greedy_sc(instance).size == exact


class TestNumericalExtremes:
    def test_tiny_value_gaps(self):
        base = 1e15  # float spacing here is 0.125
        instance = Instance.from_specs(
            [(base, "a"), (base + 1.0, "a"), (base + 2.0, "a")], lam=1.0
        )
        for solver in BATCH:
            assert is_cover(instance, solver(instance).posts)

    def test_mixed_magnitudes(self):
        instance = Instance.from_specs(
            [(1e-9, "a"), (1.0, "a"), (1e9, "a")], lam=0.5
        )
        _check_all(instance, expected_exact=3)

    def test_opt_size_only_on_pathologies(self):
        for specs, lam in (
            ([(5.0, "a")] * 5, 1.0),
            ([(float(i), "ab") for i in range(8)], 0.0),
            ([(0.0, "a"), (0.0, "b")], 10.0),
        ):
            instance = Instance.from_specs(specs, lam)
            assert opt_size(instance) == exact_via_setcover(
                instance
            ).size
