"""Proportional diversity via variable lambda (Section 6)."""

import math
import random

import pytest
from hypothesis import given, settings

from repro.core.coverage import VariableLambda, is_cover
from repro.core.instance import Instance
from repro.core.proportional import (
    ProportionalLambda,
    exact_variable,
    greedy_sc_variable,
    scan_variable,
)
from repro.core.scan import scan

from ..conftest import small_instances


def _dense_sparse_instance(lam0=2.0):
    """30 posts bunched in [0, 3], then 4 posts spread over [50, 80]."""
    specs = [(i * 0.1, "a") for i in range(30)]
    specs += [(50.0 + 10.0 * i, "a") for i in range(4)]
    return Instance.from_specs(specs, lam=lam0)


class TestProportionalLambda:
    def test_radius_formula_matches_equation2(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "a"), (2.0, "a")], lam=1.0
        )
        lam0 = 1.0
        model = ProportionalLambda(instance, lam0=lam0, density0=1.0)
        middle = instance.posts[1]
        # density_a around the middle post: 3 posts in [0, 2] / (2*lam0)
        local = 3 / 2.0
        expected = lam0 * math.exp(1.0 - local / 1.0)
        assert model.radius(middle, "a") == pytest.approx(expected)

    def test_dense_regions_get_smaller_radii(self):
        instance = _dense_sparse_instance()
        model = ProportionalLambda(instance, lam0=2.0)
        dense_post = instance.posts[15]   # inside the bunch
        sparse_post = instance.posts[-1]  # in the tail
        assert model.radius(dense_post, "a") < model.radius(
            sparse_post, "a"
        )

    def test_radius_upper_bound_is_e_lam0(self):
        instance = _dense_sparse_instance()
        lam0 = 2.0
        model = ProportionalLambda(instance, lam0=lam0)
        assert model.max_radius() == pytest.approx(lam0 * math.e)
        for post in instance.posts:
            assert model.radius(post, "a") <= lam0 * math.e + 1e-12

    def test_invalid_parameters(self):
        instance = _dense_sparse_instance()
        with pytest.raises(ValueError):
            ProportionalLambda(instance, lam0=0.0)
        with pytest.raises(ValueError):
            ProportionalLambda(instance, lam0=1.0, density0=-1.0)

    def test_radius_of_by_uid(self):
        instance = _dense_sparse_instance()
        model = ProportionalLambda(instance, lam0=2.0)
        post = instance.posts[0]
        assert model.radius_of(post.uid, "a") == model.radius(post, "a")


class TestVariableSolvers:
    def test_scan_variable_valid_cover(self):
        instance = _dense_sparse_instance()
        model = ProportionalLambda(instance, lam0=2.0)
        solution = scan_variable(instance, model)
        assert is_cover(instance, solution.posts, model)

    def test_greedy_variable_valid_cover(self):
        instance = _dense_sparse_instance()
        model = ProportionalLambda(instance, lam0=2.0)
        solution = greedy_sc_variable(instance, model)
        assert is_cover(instance, solution.posts, model)

    def test_exact_variable_valid_and_minimal(self):
        instance = _dense_sparse_instance()
        model = ProportionalLambda(instance, lam0=2.0)
        exact = exact_variable(instance, model)
        assert is_cover(instance, exact.posts, model)
        assert exact.size <= scan_variable(instance, model).size
        assert exact.size <= greedy_sc_variable(instance, model).size

    def test_proportionality_shifts_output_to_dense_region(self):
        """More representatives in dense regions than fixed lambda gives."""
        instance = _dense_sparse_instance(lam0=2.0)
        model = ProportionalLambda(instance, lam0=2.0)
        fixed = scan(instance)
        variable = scan_variable(instance, model)

        def dense_count(solution):
            return sum(1 for p in solution.posts if p.value <= 3.0)

        # fixed lambda=2 covers the whole dense bunch with one post;
        # the variable radius there is much smaller, forcing several.
        assert dense_count(variable) > dense_count(fixed)

    def test_directional_asymmetry_respected(self):
        posts = Instance.from_specs(
            [(0.0, "a"), (3.0, "a")], lam=1.0
        )
        radii = {0: 5.0, 1: 0.5}
        model = VariableLambda(
            radius_fn=lambda post, label: radii[post.uid],
            upper_bound=5.0,
        )
        solution = scan_variable(posts, model)
        assert is_cover(posts, solution.posts, model)
        # the wide-radius post alone is the optimal directional cover
        assert exact_variable(posts, model).size == 1


class TestVariableProperties:
    @given(small_instances(max_posts=10))
    @settings(deadline=None, max_examples=40)
    def test_variable_solvers_cover_under_equation2(self, instance):
        lam0 = max(instance.lam, 0.5)
        model = ProportionalLambda(instance, lam0=lam0)
        for solver in (scan_variable, greedy_sc_variable):
            solution = solver(instance, model)
            assert is_cover(instance, solution.posts, model)

    @given(small_instances(max_posts=10))
    @settings(deadline=None, max_examples=40)
    def test_exact_variable_lower_bounds_approximations(self, instance):
        lam0 = max(instance.lam, 0.5)
        model = ProportionalLambda(instance, lam0=lam0)
        exact = exact_variable(instance, model).size
        assert scan_variable(instance, model).size >= exact
        assert greedy_sc_variable(instance, model).size >= exact

    @given(small_instances(max_posts=10, max_labels=2))
    @settings(deadline=None, max_examples=30)
    def test_scan_variable_s_bound(self, instance):
        lam0 = max(instance.lam, 0.5)
        model = ProportionalLambda(instance, lam0=lam0)
        s = instance.max_labels_per_post()
        exact = exact_variable(instance, model).size
        assert scan_variable(instance, model).size <= s * exact
