"""Algorithm GreedySC (Section 4.2)."""

import math

import pytest
from hypothesis import given

from repro.core.brute_force import exact_via_setcover
from repro.core.coverage import is_cover
from repro.core.greedy_sc import build_setcover_family, greedy_sc
from repro.core.instance import Instance

from ..conftest import small_instances


class TestSetCoverFamily:
    def test_universe_is_all_pairs(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (5.0, "a")], lam=1.0
        )
        _, universe = build_setcover_family(instance)
        assert universe == {(0, "a"), (0, "b"), (1, "a")}

    def test_sets_symmetric_within_lambda(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (1.0, "a")], lam=1.0
        )
        family, _ = build_setcover_family(instance)
        assert family[0] == {(0, "a"), (1, "a")}
        assert family[1] == {(0, "a"), (1, "a")}

    def test_no_coverage_across_labels(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (0.0, "b")], lam=1.0
        )
        family, _ = build_setcover_family(instance)
        assert family[0] == {(0, "a")}
        assert family[1] == {(1, "b")}

    def test_window_respects_lambda(self):
        instance = Instance.from_specs(
            [(0.0, "a"), (2.0, "a"), (4.0, "a")], lam=2.0
        )
        family, _ = build_setcover_family(instance)
        # the middle post reaches both neighbours; the ends reach only it
        assert family[1] == {(0, "a"), (1, "a"), (2, "a")}
        assert family[0] == {(0, "a"), (1, "a")}

    def test_multilabel_post_set(self):
        instance = Instance.from_specs(
            [(0.0, "ab"), (0.5, "a"), (0.5, "b")], lam=1.0
        )
        family, _ = build_setcover_family(instance)
        assert family[0] == {
            (0, "a"), (0, "b"), (1, "a"), (2, "b")
        }


class TestGreedySC:
    def test_figure2(self, figure2_instance):
        solution = greedy_sc(figure2_instance)
        assert is_cover(figure2_instance, solution.posts)
        assert solution.size == 2

    def test_prefers_multilabel_hub(self):
        """GreedySC's whole advantage: one hub post covers pairs of many
        labels at once."""
        specs = [(0.0, "a"), (0.1, "b"), (0.2, "c"), (0.3, "abc")]
        instance = Instance.from_specs(specs, lam=1.0)
        solution = greedy_sc(instance)
        assert solution.size == 1
        assert solution.posts[0].labels == frozenset("abc")

    def test_strategies_agree_on_result(self):
        instance = Instance.from_specs(
            [(0, "a"), (30, "ab"), (65, "b"), (70, "ab"), (120, "a")],
            lam=40,
        )
        rescan = greedy_sc(instance, strategy="rescan")
        heap = greedy_sc(instance, strategy="lazy_heap")
        assert rescan.uids == heap.uids

    def test_unknown_strategy_rejected(self, figure2_instance):
        with pytest.raises(ValueError):
            greedy_sc(figure2_instance, strategy="magic")


class TestGreedySCProperties:
    @given(small_instances())
    def test_valid_cover(self, instance):
        assert is_cover(instance, greedy_sc(instance).posts)

    @given(small_instances())
    def test_logarithmic_bound(self, instance):
        """|GreedySC| <= H(k) * |OPT| with k the largest set size
        (Feige's bound for greedy set cover)."""
        family, _ = build_setcover_family(instance)
        k = max((len(s) for s in family), default=1)
        harmonic = sum(1.0 / i for i in range(1, k + 1))
        optimum = exact_via_setcover(instance).size
        assert greedy_sc(instance).size <= math.ceil(harmonic * optimum)

    @given(small_instances())
    def test_strategies_agree(self, instance):
        rescan = greedy_sc(instance, strategy="rescan")
        heap = greedy_sc(instance, strategy="lazy_heap")
        assert rescan.uids == heap.uids
