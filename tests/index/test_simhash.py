"""SimHash near-duplicate detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.simhash import SimHashIndex, hamming_distance, simhash


class TestSimhash:
    def test_deterministic(self):
        assert simhash("obama wins the vote") == simhash(
            "obama wins the vote"
        )

    def test_word_order_invariant(self):
        """Bag-of-features hashing ignores order (as in [17])."""
        assert simhash("a b c") == simhash("c b a")

    def test_fits_in_64_bits(self):
        assert 0 <= simhash("any text at all") < (1 << 64)

    def test_similar_texts_close(self):
        base = "breaking storm warning for the entire gulf coast tonight"
        tweaked = "breaking storm warning for the entire gulf coast today"
        different = "nba finals heat lebron spurs game seven tonight"
        near = hamming_distance(simhash(base), simhash(tweaked))
        far = hamming_distance(simhash(base), simhash(different))
        assert near < far

    def test_weights_change_fingerprint(self):
        text = "storm heat"
        unweighted = simhash(text)
        weighted = simhash(text, weights={"storm": 10.0})
        # not necessarily different for every pair, but for this one it is
        assert unweighted != weighted

    def test_empty_text_is_zero(self):
        assert simhash("") == 0


class TestHamming:
    def test_identical(self):
        assert hamming_distance(0xDEAD, 0xDEAD) == 0

    def test_single_bit(self):
        assert hamming_distance(0b1000, 0b0000) == 1

    def test_symmetry(self):
        assert hamming_distance(5, 9) == hamming_distance(9, 5)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )


class TestSimHashIndex:
    def test_exact_duplicate_found(self):
        index = SimHashIndex(max_distance=3)
        fp = simhash("obama speech tonight")
        index.add(1, fp)
        assert index.query(fp) == [1]

    def test_distant_fingerprint_not_matched(self):
        index = SimHashIndex(max_distance=1)
        index.add(1, 0)
        assert index.query((1 << 40) - 1) == []

    def test_banding_recall_guarantee(self):
        """With bands = max_distance + 1, every pair within the distance
        budget shares a band (pigeonhole) and must be found."""
        index = SimHashIndex(max_distance=3)
        base = simhash("storm warning issued for the coast")
        index.add(1, base)
        for bit in (0, 17, 63):
            assert index.query(base ^ (1 << bit)) == [1]

    def test_duplicate_item_id_rejected(self):
        index = SimHashIndex()
        index.add(1, 42)
        with pytest.raises(ValueError):
            index.add(1, 43)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimHashIndex(max_distance=64)
        with pytest.raises(ValueError):
            SimHashIndex(max_distance=3, bands=0)

    def test_deduplicate_stream(self):
        texts = [
            (1, "breaking storm warning for the gulf coast tonight"),
            (2, "breaking storm warning for the gulf coast tonight"),
            (3, "nba finals game seven heat against the spurs"),
        ]
        index = SimHashIndex(max_distance=3)
        kept, dropped = index.deduplicate(texts)
        assert kept == [1, 3]
        assert dropped == [(2, 1)]

    def test_first_occurrence_survives(self):
        index = SimHashIndex(max_distance=3)
        kept, dropped = index.deduplicate(
            [(10, "same text here"), (20, "same text here"),
             (30, "same text here")]
        )
        assert kept == [10]
        assert {d for d, _ in dropped} == {20, 30}

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=40)
    def test_query_matches_within_budget_property(self, fingerprint, flips):
        index = SimHashIndex(max_distance=3)
        index.add(7, fingerprint)
        corrupted = fingerprint
        for bit in range(flips):
            corrupted ^= 1 << (bit * 11)
        assert index.query(corrupted) == [7]
