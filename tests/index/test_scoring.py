"""BM25 ranked retrieval."""

import pytest

from repro.index.inverted_index import InvertedIndex
from repro.index.scoring import BM25Scorer


def _index(texts):
    index = InvertedIndex()
    for doc_id, text in enumerate(texts):
        index.add(doc_id, float(doc_id), text)
    return index


class TestIdf:
    def test_rare_terms_score_higher(self):
        index = _index([
            "obama speech", "obama rally", "obama press", "hurricane watch",
        ])
        scorer = BM25Scorer(index)
        assert scorer.idf("hurricane") > scorer.idf("obama")

    def test_unknown_term_gets_max_idf(self):
        index = _index(["obama speech"])
        scorer = BM25Scorer(index)
        assert scorer.idf("zebra") >= scorer.idf("obama")

    def test_idf_nonnegative(self):
        index = _index(["common word"] * 1)
        scorer = BM25Scorer(index)
        assert scorer.idf("common") >= 0.0


class TestScore:
    def test_matching_doc_beats_nonmatching(self):
        index = _index(["hurricane warning coast", "nba finals game"])
        scorer = BM25Scorer(index)
        assert scorer.score(["hurricane"], 0) > scorer.score(
            ["hurricane"], 1
        )
        assert scorer.score(["hurricane"], 1) == 0.0

    def test_term_frequency_saturates(self):
        index = _index([
            "storm",
            "storm storm",
            "storm storm storm storm storm storm storm storm",
        ])
        scorer = BM25Scorer(index, b=0.0)  # isolate tf saturation
        single = scorer.score(["storm"], 0)
        double = scorer.score(["storm"], 1)
        many = scorer.score(["storm"], 2)
        assert single < double < many
        # diminishing returns: the jump 1->2 beats the average jump 2->8
        assert (double - single) > (many - double) / 6

    def test_length_normalisation_penalises_long_docs(self):
        index = _index([
            "storm",
            "storm plus lots of extra unrelated words here today",
        ])
        scorer = BM25Scorer(index, b=0.75)
        assert scorer.score(["storm"], 0) > scorer.score(["storm"], 1)

    def test_unknown_doc_raises(self):
        scorer = BM25Scorer(_index(["x y"]))
        with pytest.raises(KeyError):
            scorer.score(["x"], 99)

    def test_case_insensitive_query(self):
        index = _index(["Hurricane warning"])
        scorer = BM25Scorer(index)
        assert scorer.score(["HURRICANE"], 0) > 0

    def test_parameter_validation(self):
        index = _index(["x"])
        with pytest.raises(ValueError):
            BM25Scorer(index, k1=-1.0)
        with pytest.raises(ValueError):
            BM25Scorer(index, b=1.5)


class TestSearch:
    TEXTS = [
        "hurricane warning for the gulf coast",      # t=0
        "hurricane heading inland storm surge",      # t=1
        "nba finals tonight",                        # t=2
        "coast guard rescue after the hurricane",    # t=3
    ]

    def test_topk_ranked(self):
        scorer = BM25Scorer(_index(self.TEXTS))
        results = scorer.search(["hurricane", "surge"], k=2)
        assert len(results) == 2
        assert results[0][0].doc_id == 1  # matches both terms
        assert results[0][1] >= results[1][1]

    def test_time_range_respected(self):
        scorer = BM25Scorer(_index(self.TEXTS))
        results = scorer.search(["hurricane"], k=10, start=2.0, end=4.0)
        assert [doc.doc_id for doc, _ in results] == [3]

    def test_no_matches_empty(self):
        scorer = BM25Scorer(_index(self.TEXTS))
        assert scorer.search(["zebra"], k=5) == []

    def test_incremental_documents_picked_up(self):
        index = _index(self.TEXTS)
        scorer = BM25Scorer(index)
        scorer.search(["hurricane"], k=1)  # builds statistics
        index.add(99, 9.0, "another hurricane report")
        results = scorer.search(["hurricane"], k=10)
        assert 99 in {doc.doc_id for doc, _ in results}
