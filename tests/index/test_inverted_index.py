"""The in-memory inverted index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted_index import InvertedIndex
from repro.index.tokenizer import tokenize


def _build(docs):
    index = InvertedIndex()
    for doc_id, (timestamp, text) in enumerate(docs):
        index.add(doc_id, timestamp, text)
    return index


class TestAdd:
    def test_documents_stored(self):
        index = _build([(1.0, "obama wins")])
        assert len(index) == 1
        assert index.document(0).text == "obama wins"
        assert 0 in index

    def test_duplicate_id_rejected(self):
        index = _build([(1.0, "x")])
        with pytest.raises(ValueError):
            index.add(0, 2.0, "y")

    def test_out_of_order_timestamps_accepted(self):
        index = _build([(5.0, "late obama"), (1.0, "early obama")])
        results = index.search(["obama"])
        assert [d.timestamp for d in results] == [1.0, 5.0]

    def test_vocabulary_and_document_frequency(self):
        index = _build([(1.0, "obama wins"), (2.0, "obama loses")])
        assert index.document_frequency("obama") == 2
        assert index.document_frequency("wins") == 1
        assert index.document_frequency("absent") == 0
        assert index.vocabulary_size() == 3


class TestSearch:
    DOCS = [
        (1.0, "obama speech tonight"),
        (2.0, "nba finals heat"),
        (3.0, "obama nba courtside"),
        (4.0, "weather storm warning"),
    ]

    def test_or_semantics(self):
        index = _build(self.DOCS)
        hits = index.search(["obama", "nba"])
        assert [d.doc_id for d in hits] == [0, 1, 2]

    def test_and_semantics(self):
        index = _build(self.DOCS)
        hits = index.search(["obama", "nba"], mode="and")
        assert [d.doc_id for d in hits] == [2]

    def test_time_range_restriction(self):
        index = _build(self.DOCS)
        hits = index.search(["obama", "nba"], start=2.0, end=3.0)
        assert [d.doc_id for d in hits] == [1, 2]

    def test_case_insensitive_keywords(self):
        index = _build(self.DOCS)
        assert index.search(["OBAMA"])

    def test_no_keywords_no_hits(self):
        index = _build(self.DOCS)
        assert index.search([]) == []

    def test_unknown_mode_rejected(self):
        index = _build(self.DOCS)
        with pytest.raises(ValueError):
            index.search(["x"], mode="xor")

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=30)
    def test_range_search_equals_naive_filter(self, seed):
        """Property: index range search == brute-force text filtering."""
        rng = random.Random(seed)
        words = ["alpha", "beta", "gamma", "delta"]
        docs = [
            (rng.uniform(0, 100),
             " ".join(rng.choices(words, k=rng.randint(1, 4))))
            for _ in range(30)
        ]
        index = _build(docs)
        keyword = rng.choice(words)
        start, end = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        expected = sorted(
            doc_id
            for doc_id, (ts, text) in enumerate(docs)
            if keyword in tokenize(text) and start <= ts <= end
        )
        hits = [d.doc_id for d in index.search([keyword], start, end)]
        assert sorted(hits) == expected
