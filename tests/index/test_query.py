"""Topic queries and the label matcher."""

import pytest

from repro.index.inverted_index import Document, InvertedIndex
from repro.index.query import LabelMatcher, TopicQuery


def _topic(label, keywords):
    return TopicQuery(label=label, keywords=frozenset(keywords))


class TestTopicQuery:
    def test_matching_is_any_keyword(self):
        topic = _topic("golf", ["tiger", "masters"])
        assert topic.matches("tiger wins again")
        assert topic.matches("the masters this weekend")
        assert not topic.matches("nba finals tonight")

    def test_keywords_lowercased(self):
        topic = _topic("golf", ["TIGER"])
        assert topic.matches("tiger roars")

    def test_empty_keywords_rejected(self):
        with pytest.raises(ValueError):
            _topic("empty", [])

    def test_top_keywords_by_weight(self):
        topic = TopicQuery(
            label="t",
            keywords=frozenset({"low", "high"}),
            weights=(("low", 0.1), ("high", 0.9)),
        )
        assert topic.top_keywords(1) == ["high"]

    def test_top_keywords_without_weights_sorted(self):
        topic = _topic("t", ["zeta", "alpha"])
        assert topic.top_keywords(2) == ["alpha", "zeta"]


class TestLabelMatcher:
    TOPICS = [
        _topic("golf", ["tiger", "masters"]),
        _topic("nba", ["lebron", "finals"]),
        _topic("potus", ["obama", "tiger"]),  # shares 'tiger' with golf
    ]

    def test_match_returns_all_matching_labels(self):
        matcher = LabelMatcher(self.TOPICS)
        assert matcher.match("tiger watch") == {"golf", "potus"}

    def test_match_empty_for_unrelated_text(self):
        matcher = LabelMatcher(self.TOPICS)
        assert matcher.match("weather is nice") == frozenset()

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            LabelMatcher([_topic("x", ["a"]), _topic("x", ["b"])])

    def test_labels_property(self):
        matcher = LabelMatcher(self.TOPICS)
        assert matcher.labels == {"golf", "nba", "potus"}

    def test_to_posts_drops_unmatched(self):
        matcher = LabelMatcher(self.TOPICS)
        documents = [
            Document(0, 1.0, "tiger at the masters"),
            Document(1, 2.0, "nothing relevant"),
        ]
        posts = matcher.to_posts(documents)
        assert len(posts) == 1
        assert posts[0].uid == 0
        assert posts[0].labels == {"golf", "potus"}
        assert posts[0].value == 1.0

    def test_to_posts_with_custom_value(self):
        matcher = LabelMatcher(self.TOPICS)
        documents = [Document(0, 1.0, "lebron dunks")]
        posts = matcher.to_posts_with_value(
            documents, value_of=lambda d: 0.75
        )
        assert posts[0].value == 0.75

    def test_search_posts_via_index(self):
        index = InvertedIndex()
        index.add(0, 1.0, "tiger at the masters")
        index.add(1, 2.0, "lebron in the finals")
        index.add(2, 30.0, "obama press conference")
        matcher = LabelMatcher(self.TOPICS)
        posts = matcher.search_posts(index, start=0.0, end=10.0)
        assert sorted(p.uid for p in posts) == [0, 1]
