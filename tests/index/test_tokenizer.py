"""The tokenizer substrate."""

from repro.index.tokenizer import STOPWORDS, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Obama WINS") == ["obama", "wins"]

    def test_hashtag_stripped_to_word(self):
        assert tokenize("#nba finals") == ["nba", "finals"]

    def test_mention_preserved_distinct(self):
        assert tokenize("@nasa launch") == ["@nasa", "launch"]

    def test_urls_removed(self):
        assert tokenize("read https://t.co/xyz now") == ["read", "now"]
        assert tokenize("see www.example.com page") == ["see", "page"]

    def test_stopwords_dropped_by_default(self):
        assert tokenize("the game was great") == ["game", "great"]

    def test_stopwords_kept_on_request(self):
        tokens = tokenize("the game", keep_stopwords=True)
        assert tokens == ["the", "game"]

    def test_punctuation_split(self):
        assert tokenize("win,lose;draw!") == ["win", "lose", "draw"]

    def test_apostrophes_kept_within_words(self):
        assert "don't" in tokenize("don't stop", keep_stopwords=True)

    def test_numbers_kept(self):
        assert tokenize("super bowl 48") == ["super", "bowl", "48"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_rt_marker_is_stopword(self):
        assert "rt" in STOPWORDS
        assert tokenize("rt great game") == ["great", "game"]
