"""Streaming spatiotemporal diversification."""

import random

import pytest

from repro.core.streaming import stream_solve
from repro.core.instance import Instance
from repro.core.post import Post
from repro.multidim import (
    InstantBoxCover,
    MultiInstance,
    MultiPost,
    StreamGreedyBox,
)


def _mp(uid, values, labels):
    return MultiPost(uid=uid, values=tuple(values),
                     labels=frozenset(labels))


def _storm(seed=0, n=60):
    rng = random.Random(seed)
    posts = []
    for i in range(n):
        t = i * 30.0 + rng.uniform(0, 10)
        geo = -90.0 + t / 3600.0 + rng.gauss(0, 0.3)
        posts.append(_mp(i, (t, geo), {"storm"}))
    posts.sort(key=lambda p: p.primary())
    return posts


def _run(algorithm, posts):
    """A minimal event loop over primary-dimension order (the generic
    run_stream assumes 1-D posts; multi-posts drive the same protocol)."""
    emissions = []
    last = float("-inf")
    for post in posts:
        assert post.primary() >= last
        last = post.primary()
        while True:
            deadline = algorithm.next_deadline()
            if deadline is None or deadline >= post.primary():
                break
            emissions.extend(algorithm.on_deadline(deadline))
        emissions.extend(algorithm.on_arrival(post))
    emissions.extend(algorithm.flush())
    return emissions


class TestInstantBoxCover:
    def test_emits_first_and_geographic_outliers(self):
        posts = [
            _mp(0, (0.0, -90.0), "a"),
            _mp(1, (10.0, -90.1), "a"),   # near in both dims: covered
            _mp(2, (20.0, -40.0), "a"),   # same time, far away: emitted
        ]
        algorithm = InstantBoxCover({"a"}, radii=(60.0, 1.0))
        emissions = _run(algorithm, posts)
        assert [e.post.uid for e in emissions] == [0, 2]

    def test_output_is_box_cover(self):
        posts = _storm()
        algorithm = InstantBoxCover({"storm"}, radii=(300.0, 0.5))
        emissions = _run(algorithm, posts)
        instance = MultiInstance(posts, radii=(300.0, 0.5))
        assert instance.is_cover([e.post for e in emissions])

    def test_one_dimensional_reduction_matches_instant(self):
        rng = random.Random(1)
        values = sorted(rng.uniform(0, 100) for _ in range(40))
        flat = [_mp(i, (v,), "a") for i, v in enumerate(values)]
        algorithm = InstantBoxCover({"a"}, radii=(5.0,))
        emissions = _run(algorithm, flat)
        core_posts = [Post(uid=i, value=v, labels=frozenset("a"))
                      for i, v in enumerate(values)]
        instance = Instance(core_posts, lam=5.0)
        core = stream_solve("instant", instance, tau=0.0)
        assert [e.post.uid for e in emissions] == [
            p.uid for p in core.posts
        ]


class TestStreamGreedyBox:
    def test_delay_bound(self):
        posts = _storm()
        algorithm = StreamGreedyBox({"storm"}, radii=(300.0, 0.5),
                                    tau=120.0)
        emissions = _run(algorithm, posts)
        for emission in emissions:
            assert emission.emitted_at - emission.post.primary() \
                <= 120.0 + 1e-9

    def test_output_is_box_cover(self):
        posts = _storm(seed=3)
        algorithm = StreamGreedyBox({"storm"}, radii=(300.0, 0.5),
                                    tau=120.0)
        emissions = _run(algorithm, posts)
        instance = MultiInstance(posts, radii=(300.0, 0.5))
        assert instance.is_cover([e.post for e in emissions])

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            StreamGreedyBox({"a"}, radii=(1.0,), tau=-1.0)

    def test_multilabel_hub_selected(self):
        posts = [
            _mp(0, (0.0, 0.0), "a"),
            _mp(1, (1.0, 0.1), "b"),
            _mp(2, (2.0, 0.05), "ab"),
        ]
        algorithm = StreamGreedyBox({"a", "b"}, radii=(10.0, 1.0),
                                    tau=5.0)
        emissions = _run(algorithm, posts)
        assert len(emissions) == 1
        assert emissions[0].post.uid == 2

    def test_one_dimensional_reduction_matches_stream_greedy(self):
        rng = random.Random(2)
        values = sorted(rng.uniform(0, 200) for _ in range(50))
        flat = [_mp(i, (v,), "a") for i, v in enumerate(values)]
        algorithm = StreamGreedyBox({"a"}, radii=(8.0,), tau=10.0)
        emissions = _run(algorithm, flat)
        core_posts = [Post(uid=i, value=v, labels=frozenset("a"))
                      for i, v in enumerate(values)]
        instance = Instance(core_posts, lam=8.0)
        core = stream_solve("stream_greedy_sc", instance, tau=10.0)
        assert len(emissions) == core.size
