"""Multi-dimensional (spatiotemporal) MQDP — the future-work extension."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute_force import exact_via_setcover
from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.scan import scan
from repro.errors import InvalidInstanceError
from repro.multidim import (
    BoxCoverage,
    MultiInstance,
    MultiPost,
    exact_box,
    greedy_box,
    sweep_box,
)


def _mp(uid, values, labels):
    return MultiPost(uid=uid, values=tuple(values),
                     labels=frozenset(labels))


def _grid_instance(radii=(1.0, 1.0)):
    """A 3x3 grid of single-label posts plus a centre hub."""
    posts = []
    uid = 0
    for x in (0.0, 2.0, 4.0):
        for y in (0.0, 2.0, 4.0):
            posts.append(_mp(uid, (x, y), "a"))
            uid += 1
    return MultiInstance(posts, radii)


class TestModel:
    def test_box_coverage_requires_all_dimensions(self):
        box = BoxCoverage((1.0, 1.0))
        near_time_far_space = _mp(0, (0.0, 0.0), "a"), _mp(
            1, (0.5, 5.0), "a"
        )
        assert not box.within(*near_time_far_space)
        near_both = _mp(0, (0.0, 0.0), "a"), _mp(1, (0.5, 0.5), "a")
        assert box.within(*near_both)

    def test_covers_requires_shared_label(self):
        box = BoxCoverage((1.0, 1.0))
        one = _mp(0, (0.0, 0.0), "a")
        other = _mp(1, (0.0, 0.0), "b")
        assert not box.covers(one, "a", other)
        assert not box.covers(one, "b", other)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiInstance([_mp(0, (0.0,), "a")], radii=(1.0, 1.0))

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BoxCoverage((-0.5,))

    def test_covered_pairs_by_box(self):
        instance = _grid_instance(radii=(2.0, 2.0))
        centre = instance.post(4)  # the (2, 2) post
        pairs = instance.covered_pairs_by(centre)
        # the 2-radius box around the centre reaches the whole 3x3 grid
        assert pairs == {(uid, "a") for uid in range(9)}

    def test_is_cover(self):
        instance = _grid_instance(radii=(2.0, 2.0))
        assert instance.is_cover([instance.post(4)])
        assert not instance.is_cover([instance.post(0)])


class TestSolvers:
    def test_exact_finds_the_hub(self):
        instance = _grid_instance(radii=(2.0, 2.0))
        assert exact_box(instance).size == 1

    def test_corner_radius_needs_more(self):
        instance = _grid_instance(radii=(1.0, 1.0))
        # unit boxes on a 2-spaced grid cover only themselves
        assert exact_box(instance).size == 9

    def test_greedy_box_valid_and_bounded(self):
        instance = _grid_instance(radii=(2.0, 2.0))
        solution = greedy_box(instance)
        assert instance.is_cover(solution.posts)
        assert solution.size >= exact_box(instance).size

    def test_sweep_box_valid(self):
        instance = _grid_instance(radii=(2.0, 2.0))
        solution = sweep_box(instance)
        assert instance.is_cover(solution.posts)

    def test_spatial_dimension_changes_the_answer(self):
        """The motivating case: two posts at the same time but opposite
        coasts must both be selected once geography counts."""
        posts = [
            _mp(0, (100.0, -118.0), {"storm"}),   # Los Angeles
            _mp(1, (100.0, -74.0), {"storm"}),    # New York
        ]
        time_only = MultiInstance(posts, radii=(60.0, 360.0))
        assert exact_box(time_only).size == 1
        spatiotemporal = MultiInstance(posts, radii=(60.0, 5.0))
        assert exact_box(spatiotemporal).size == 2


class TestOneDimensionalReduction:
    """With one dimension the extension must agree with the paper's MQDP
    implementation post for post."""

    def _paired(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 12)
        specs = [
            (rng.uniform(0, 20), rng.sample("ab", rng.randint(1, 2)))
            for _ in range(n)
        ]
        lam = rng.choice([0.5, 1.0, 3.0])
        core = Instance(
            [Post(uid=i, value=v, labels=frozenset(ls))
             for i, (v, ls) in enumerate(specs)],
            lam,
        )
        multi = MultiInstance(
            [_mp(i, (v,), ls) for i, (v, ls) in enumerate(specs)],
            radii=(lam,),
        )
        return core, multi

    @pytest.mark.parametrize("seed", range(15))
    def test_exact_sizes_agree(self, seed):
        core, multi = self._paired(seed)
        assert exact_box(multi).size == exact_via_setcover(core).size

    @pytest.mark.parametrize("seed", range(15))
    def test_greedy_box_matches_greedy_sc(self, seed):
        core, multi = self._paired(seed)
        assert greedy_box(multi).uids == greedy_sc(core).uids

    @pytest.mark.parametrize("seed", range(15))
    def test_sweep_box_matches_scan_size(self, seed):
        core, multi = self._paired(seed)
        assert sweep_box(multi).size == scan(core).size


class TestProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=40)
    def test_all_solvers_produce_covers(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 10)
        posts = [
            _mp(
                i,
                (rng.uniform(0, 10), rng.uniform(0, 10)),
                rng.sample("ab", rng.randint(1, 2)),
            )
            for i in range(n)
        ]
        radii = (rng.choice([0.5, 2.0, 10.0]),
                 rng.choice([0.5, 2.0, 10.0]))
        instance = MultiInstance(posts, radii)
        exact = exact_box(instance)
        assert instance.is_cover(exact.posts)
        for solver in (greedy_box, sweep_box):
            solution = solver(instance)
            assert instance.is_cover(solution.posts), solver
            assert solution.size >= exact.size


class _ScriptedClock:
    """Deterministic clock: returns the scripted instants in order."""

    def __init__(self, *instants):
        self.instants = list(instants)

    def __call__(self):
        return self.instants.pop(0)


class TestClockInjection:
    """``clock=`` routes every timestamp through the injected callable —
    the supervisor's pattern, so timing is testable without wall time."""

    @pytest.mark.parametrize(
        "solver", [greedy_box, exact_box, sweep_box]
    )
    def test_elapsed_from_injected_clock(self, solver):
        instance = _grid_instance()
        solution = solver(instance, clock=_ScriptedClock(10.0, 12.5))
        assert solution.elapsed == 2.5

    def test_observability_clock_is_the_default(self):
        from repro.observability import facade

        instance = _grid_instance()
        with facade.session(clock=_ScriptedClock(0.0, 0.75)):
            solution = greedy_box(instance)
        facade.disable()
        assert solution.elapsed == 0.75

    def test_explicit_clock_wins_over_session(self):
        from repro.observability import facade

        instance = _grid_instance()
        with facade.session(clock=_ScriptedClock(0.0, 100.0)):
            solution = sweep_box(
                instance, clock=_ScriptedClock(1.0, 1.5)
            )
        facade.disable()
        assert solution.elapsed == 0.5
