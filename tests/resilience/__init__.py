"""Resilience subsystem tests."""
