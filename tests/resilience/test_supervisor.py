"""StreamSupervisor sanitization, quarantine, and health accounting."""

import math

import pytest

from repro.core.post import Post, make_posts
from repro.errors import (
    EmissionInvariantError,
    ReproError,
    SanitizationError,
    StreamOrderError,
)
from repro.resilience import (
    SanitizationPolicy,
    StreamSupervisor,
    run_supervised,
)


def _post(uid, value, labels="a"):
    return Post(uid=uid, value=value, labels=frozenset(labels))


def _supervisor(policy=None, **kwargs):
    kwargs.setdefault("ladder", "stream_scan+")
    return StreamSupervisor("ab", lam=1.0, tau=0.5, policy=policy,
                            **kwargs)


class TestPolicyValidation:
    def test_bad_action_rejected(self):
        with pytest.raises(ReproError):
            SanitizationPolicy(on_malformed_value="ignore")

    def test_clamp_invalid_for_labels(self):
        with pytest.raises(ReproError):
            SanitizationPolicy(on_empty_labels="clamp")

    def test_negative_buffer_rejected(self):
        with pytest.raises(ReproError):
            SanitizationPolicy(reorder_buffer=-1)

    def test_unknown_ladder_rung_rejected(self):
        with pytest.raises(ReproError):
            StreamSupervisor("ab", lam=1.0, ladder=("no_such_algo",))

    def test_empty_ladder_rejected(self):
        with pytest.raises(ReproError):
            StreamSupervisor("ab", lam=1.0, ladder=())


class TestMalformedValues:
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_raise_policy(self, bad):
        supervisor = _supervisor(SanitizationPolicy.strict())
        with pytest.raises(SanitizationError):
            supervisor.ingest(_post(0, bad))

    def test_drop_policy_quarantines(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_malformed_value="drop")
        )
        assert supervisor.ingest(_post(0, math.nan)) == []
        assert supervisor.journal == ()
        record, = supervisor.quarantine
        assert record.action == "drop"
        assert "non-finite" in record.reason
        assert supervisor.health.quarantined == 1

    def test_clamp_policy_repairs_to_frontier(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_malformed_value="clamp")
        )
        supervisor.ingest(_post(0, 5.0))
        supervisor.ingest(_post(1, math.nan))
        assert [p.value for p in supervisor.journal] == [5.0, 5.0]
        record, = supervisor.quarantine
        assert record.action == "clamp"
        assert record.repaired.value == 5.0
        assert supervisor.health.repaired == 1
        assert supervisor.health.quarantined == 0

    def test_clamp_on_empty_stream_uses_zero(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_malformed_value="clamp")
        )
        supervisor.ingest(_post(0, math.inf))
        assert supervisor.journal[0].value == 0.0


class TestLabels:
    def test_empty_labels_raise(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_empty_labels="raise")
        )
        with pytest.raises(SanitizationError):
            supervisor.ingest(_post(0, 1.0, labels=""))

    def test_empty_labels_drop(self):
        supervisor = _supervisor(SanitizationPolicy())
        assert supervisor.ingest(_post(0, 1.0, labels="")) == []
        assert supervisor.health.quarantined == 1

    def test_unknown_labels_projected_out(self):
        supervisor = _supervisor(SanitizationPolicy())
        supervisor.ingest(_post(0, 1.0, labels="az"))
        assert supervisor.journal[0].labels == frozenset("a")
        record, = supervisor.quarantine
        assert record.action == "clamp"
        assert record.repaired.labels == frozenset("a")

    def test_all_unknown_labels_counts_as_empty(self):
        supervisor = _supervisor(SanitizationPolicy())
        assert supervisor.ingest(_post(0, 1.0, labels="xyz")) == []
        assert supervisor.health.quarantined == 1


class TestDuplicates:
    def test_duplicate_raise(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_duplicate="raise")
        )
        supervisor.ingest(_post(0, 1.0))
        with pytest.raises(SanitizationError):
            supervisor.ingest(_post(0, 2.0))

    def test_duplicate_drop(self):
        supervisor = _supervisor(SanitizationPolicy())
        supervisor.ingest(_post(0, 1.0))
        assert supervisor.ingest(_post(0, 2.0)) == []
        assert supervisor.health.duplicates == 1
        assert len(supervisor.journal) == 1


class TestOrdering:
    def test_out_of_order_raise(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_out_of_order="raise")
        )
        supervisor.ingest(_post(0, 10.0))
        with pytest.raises(StreamOrderError):
            supervisor.ingest(_post(1, 5.0))

    def test_out_of_order_drop(self):
        supervisor = _supervisor(SanitizationPolicy())
        supervisor.ingest(_post(0, 10.0))
        assert supervisor.ingest(_post(1, 5.0)) == []
        assert supervisor.health.quarantined == 1
        assert [p.uid for p in supervisor.journal] == [0]

    def test_out_of_order_clamp_lifts_to_frontier(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_out_of_order="clamp")
        )
        supervisor.ingest(_post(0, 10.0))
        supervisor.ingest(_post(1, 5.0))
        assert [p.value for p in supervisor.journal] == [10.0, 10.0]

    def test_reorder_buffer_restores_order(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_out_of_order="raise", reorder_buffer=2)
        )
        # shuffled within the buffer bound: 2, 1, 3, 4
        for uid, value in [(2, 2.0), (1, 1.0), (3, 3.0), (4, 4.0)]:
            supervisor.ingest(_post(uid, value))
        supervisor.flush()
        assert [p.uid for p in supervisor.journal] == [1, 2, 3, 4]
        assert supervisor.health.reordered >= 1
        assert supervisor.quarantine == []

    def test_displacement_beyond_buffer_hits_policy(self):
        supervisor = _supervisor(
            SanitizationPolicy(on_out_of_order="drop", reorder_buffer=1)
        )
        # post 1 is displaced three positions; buffer of one can't fix it
        for uid, value in [(2, 2.0), (3, 3.0), (4, 4.0), (1, 1.0)]:
            supervisor.ingest(_post(uid, value))
        supervisor.flush()
        assert 1 not in {p.uid for p in supervisor.journal}
        assert supervisor.health.quarantined == 1


class TestEmissionInvariants:
    def test_supervised_run_covers_clean_stream(self):
        posts = make_posts(
            [(0.0, "a"), (0.5, "ab"), (3.0, "b"), (7.0, "a")]
        )
        supervisor = _supervisor()
        result = run_supervised(supervisor, posts)
        assert result.algorithm == "supervised:stream_scan+"
        assert supervisor.health.admitted == 4
        assert supervisor.health.emissions == result.size
        from repro.core.coverage import is_cover
        assert is_cover(
            supervisor.admitted_instance(), result.to_solution().posts
        )

    def test_record_rejects_double_emission(self):
        from repro.stream.events import Emission

        supervisor = _supervisor()
        supervisor.ingest(_post(0, 1.0))
        post = supervisor.journal[0]
        if post.uid not in supervisor._emitted:
            supervisor._record([Emission(post=post, emitted_at=2.0)])
        with pytest.raises(EmissionInvariantError):
            supervisor._record([Emission(post=post, emitted_at=3.0)])

    def test_record_rejects_unadmitted_post(self):
        from repro.stream.events import Emission

        supervisor = _supervisor()
        ghost = _post(99, 1.0)
        with pytest.raises(EmissionInvariantError):
            supervisor._record([Emission(post=ghost, emitted_at=2.0)])

    def test_record_rejects_time_travel(self):
        from repro.stream.events import Emission

        supervisor = _supervisor()
        supervisor.ingest(_post(0, 5.0))
        post = supervisor.journal[0]
        if post.uid in supervisor._emitted:
            pytest.skip("algorithm already emitted the post")
        with pytest.raises(EmissionInvariantError):
            supervisor._record([Emission(post=post, emitted_at=1.0)])
