"""Degradation ladders: batch solve_with_ladder and the streaming watchdog."""

import random

import pytest

from repro.core.coverage import is_cover
from repro.core.instance import Instance
from repro.core.post import Post, make_posts
from repro.core.streaming import _STREAM_FACTORIES, StreamScan
from repro.errors import ReproError
from repro.resilience import (
    StreamSupervisor,
    run_supervised,
    solve_with_ladder,
)


def _ticking_clock(step=1.0):
    """A deterministic clock advancing `step` per reading."""
    state = {"now": 0.0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


def _instance(n=30, lam=2.0, seed=0):
    rng = random.Random(seed)
    posts = [
        Post(uid=uid, value=float(uid) + rng.random(),
             labels=frozenset(rng.sample("abc", rng.randint(1, 2))))
        for uid in range(n)
    ]
    return Instance(posts, lam)


class TestBatchLadder:
    def test_no_budget_stays_on_top_rung(self):
        solution, rung, downgrades = solve_with_ladder(
            _instance(n=8), ("greedy_sc", "scan+"),
        )
        assert rung == 0
        assert downgrades == ()
        assert solution.algorithm == "greedy_sc"

    def test_budget_overrun_steps_down(self):
        # every solver call appears to take 1s against a 0.5s budget,
        # so the ladder falls straight to the bottom rung
        solution, rung, downgrades = solve_with_ladder(
            _instance(),
            ("greedy_sc", "scan+", "scan"),
            budget=0.5,
            clock=_ticking_clock(),
        )
        assert rung == 2
        assert [d.trigger for d in downgrades] == ["budget", "budget"]
        assert [d.from_algorithm for d in downgrades] == \
            ["greedy_sc", "scan+"]
        assert solution.algorithm == "scan"

    def test_bottom_rung_always_accepted(self):
        solution, rung, downgrades = solve_with_ladder(
            _instance(n=6), ("scan",), budget=0.0,
            clock=_ticking_clock(),
        )
        assert rung == 0
        assert downgrades == ()
        assert solution.algorithm == "scan"

    def test_error_triggers_downgrade(self):
        # brute_force refuses instances beyond its 18-post budget with
        # AlgorithmBudgetExceeded; the ladder must absorb that and fall
        solution, rung, downgrades = solve_with_ladder(
            _instance(n=25), ("brute_force", "greedy_sc"),
        )
        assert rung == 1
        assert [d.trigger for d in downgrades] == ["error"]
        assert solution.algorithm == "greedy_sc"

    def test_error_on_bottom_rung_propagates(self):
        with pytest.raises(ReproError):
            solve_with_ladder(_instance(n=25), ("brute_force",))

    def test_start_rung_is_sticky_entry_point(self):
        solution, rung, downgrades = solve_with_ladder(
            _instance(n=8), ("opt", "greedy_sc", "scan+"), start_rung=2,
        )
        assert rung == 2
        assert solution.algorithm == "scan+"

    def test_validation(self):
        with pytest.raises(ReproError):
            solve_with_ladder(_instance(n=4), ())
        with pytest.raises(ReproError):
            solve_with_ladder(_instance(n=4), ("scan",), start_rung=5)


class TestStreamingLadder:
    LADDER = ("stream_greedy_sc+", "stream_scan+", "stream_scan")

    def test_tight_budget_walks_down_the_ladder(self):
        posts = make_posts(
            [(float(i), "ab"[i % 2]) for i in range(20)]
        )
        supervisor = StreamSupervisor(
            "ab", lam=2.0, tau=1.0,
            ladder=self.LADDER,
            arrival_budget=0.5,
            clock=_ticking_clock(),  # every call measures 1s > 0.5s
        )
        result = run_supervised(supervisor, posts)
        assert supervisor.health.downgrades == 2
        assert supervisor.algorithm_name == "stream_scan"
        assert result.algorithm == "supervised:stream_scan"
        steps = [
            (d.from_algorithm, d.to_algorithm) for d in supervisor.downgrades
        ]
        assert steps == [
            ("stream_greedy_sc+", "stream_scan+"),
            ("stream_scan+", "stream_scan"),
        ]
        assert all(d.trigger == "budget" for d in supervisor.downgrades)
        # degradation never loses coverage of admitted posts
        assert is_cover(
            supervisor.admitted_instance(), result.to_solution().posts
        )

    def test_no_budget_never_downgrades(self):
        posts = make_posts([(float(i), "a") for i in range(10)])
        supervisor = StreamSupervisor(
            "ab", lam=2.0, tau=1.0, ladder=self.LADDER,
        )
        run_supervised(supervisor, posts)
        assert supervisor.health.downgrades == 0
        assert supervisor.algorithm_name == "stream_greedy_sc+"

    def test_crashing_rung_degrades_instead_of_dying(self, monkeypatch):
        class ExplodingScan(StreamScan):
            name = "exploding"

            def on_arrival(self, post):
                if post.uid >= 5:
                    raise RuntimeError("solver bug")
                return super().on_arrival(post)

        monkeypatch.setitem(
            _STREAM_FACTORIES, "exploding",
            lambda labels, lam, tau: ExplodingScan(labels, lam, tau),
        )
        posts = make_posts([(float(i), "a") for i in range(10)])
        supervisor = StreamSupervisor(
            "ab", lam=2.0, tau=1.0, ladder=("exploding", "stream_scan"),
        )
        result = run_supervised(supervisor, posts)
        assert supervisor.health.downgrades == 1
        downgrade, = supervisor.downgrades
        assert downgrade.trigger == "error"
        assert downgrade.from_algorithm == "exploding"
        assert is_cover(
            supervisor.admitted_instance(), result.to_solution().posts
        )

    def test_crash_on_bottom_rung_propagates(self, monkeypatch):
        class AlwaysBroken(StreamScan):
            def on_arrival(self, post):
                raise RuntimeError("no rung left")

        monkeypatch.setitem(
            _STREAM_FACTORIES, "broken",
            lambda labels, lam, tau: AlwaysBroken(labels, lam, tau),
        )
        supervisor = StreamSupervisor(
            "ab", lam=2.0, tau=1.0, ladder=("broken",),
        )
        with pytest.raises(RuntimeError):
            supervisor.ingest(Post(uid=0, value=1.0,
                                   labels=frozenset("a")))
