"""The fault-injection harness, and the headline resilience property:
under drops, duplicates, bounded reorders and corruption, every supervised
streaming algorithm finishes cleanly and still lambda-covers everything it
admitted.
"""

import math
import random

import pytest

from repro.core.coverage import is_cover
from repro.core.post import Post
from repro.core.streaming import _STREAM_FACTORIES
from repro.resilience import (
    FaultInjector,
    SanitizationPolicy,
    StreamSupervisor,
    run_supervised,
)

LABELS = "abcd"


def _clean_stream(seed, n=50):
    rng = random.Random(seed)
    return [
        Post(
            uid=uid,
            value=uid + rng.random(),
            labels=frozenset(rng.sample(LABELS, rng.randint(1, 3))),
        )
        for uid in range(n)
    ]


class TestFaultInjector:
    def test_identity_when_all_probabilities_zero(self):
        posts = _clean_stream(1)
        injector = FaultInjector(seed=0)
        assert injector.apply(posts) == posts
        assert injector.report.events == []

    def test_deterministic_for_equal_seeds(self):
        posts = _clean_stream(2)
        knobs = dict(drop=0.2, duplicate=0.2, delay=0.2, reorder=0.2,
                     corrupt=0.2)
        first = FaultInjector(seed=42, **knobs)
        second = FaultInjector(seed=42, **knobs)
        assert first.apply(posts) == second.apply(posts)
        assert first.report.events == second.report.events

    def test_reapply_resets_report(self):
        posts = _clean_stream(3)
        injector = FaultInjector(seed=7, drop=0.3)
        one = injector.apply(posts)
        events = list(injector.report.events)
        two = injector.apply(posts)
        assert one == two
        assert injector.report.events == events

    def test_different_seeds_differ(self):
        posts = _clean_stream(4)
        knobs = dict(drop=0.3, delay=0.3)
        assert FaultInjector(seed=1, **knobs).apply(posts) != \
            FaultInjector(seed=2, **knobs).apply(posts)

    def test_drop_removes_posts(self):
        posts = _clean_stream(5)
        injector = FaultInjector(seed=0, drop=0.5)
        stream = injector.apply(posts)
        assert len(stream) < len(posts)
        surviving = {p.uid for p in stream}
        assert surviving.isdisjoint(injector.report.dropped)
        assert surviving | injector.report.dropped == \
            {p.uid for p in posts}

    def test_duplicate_repeats_uids(self):
        posts = _clean_stream(6)
        injector = FaultInjector(seed=0, duplicate=0.5)
        stream = injector.apply(posts)
        assert len(stream) > len(posts)
        seen = [p.uid for p in stream]
        for uid in injector.report.duplicated:
            assert seen.count(uid) == 2

    def test_corrupt_damages_payload(self):
        posts = _clean_stream(7)
        injector = FaultInjector(seed=0, corrupt=0.5)
        stream = injector.apply(posts)
        damaged = [
            p for p in stream
            if not math.isfinite(p.value) or not p.labels
        ]
        assert damaged
        assert {p.uid for p in damaged} <= injector.report.corrupted

    def test_delay_and_reorder_displace_but_preserve_payload(self):
        posts = _clean_stream(8)
        injector = FaultInjector(seed=0, delay=0.4, reorder=0.4,
                                 displacement=3)
        stream = injector.apply(posts)
        assert sorted(stream, key=lambda p: p.uid) == posts
        assert stream != posts
        assert injector.report.displaced

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(drop=1.5)
        with pytest.raises(ValueError):
            FaultInjector(displacement=0)

    def test_clean_uids_excludes_dropped_and_corrupted(self):
        posts = _clean_stream(9)
        injector = FaultInjector(seed=0, drop=0.3, corrupt=0.3)
        injector.apply(posts)
        clean = injector.clean_uids(posts)
        assert clean.isdisjoint(injector.report.dropped)
        assert clean.isdisjoint(injector.report.corrupted)


class TestSupervisedUnderFaults:
    """Acceptance: no uncaught exceptions, admitted posts stay covered."""

    @pytest.mark.parametrize("algorithm", sorted(_STREAM_FACTORIES))
    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_survives_and_covers(self, algorithm, seed):
        posts = _clean_stream(seed)
        injector = FaultInjector(
            seed=seed, drop=0.1, duplicate=0.15, delay=0.15,
            reorder=0.15, corrupt=0.1, displacement=3,
        )
        faulty = injector.apply(posts)
        supervisor = StreamSupervisor(
            LABELS, lam=2.5, tau=1.5, ladder=algorithm,
            policy=SanitizationPolicy.lenient(reorder_buffer=4),
        )
        result = run_supervised(supervisor, faulty)
        # the emission set lambda-covers every clean, admitted post
        instance = supervisor.admitted_instance()
        assert is_cover(instance, result.to_solution().posts), algorithm
        # reorders stayed within the buffer bound, so every clean post
        # was admitted (possibly value-clamped, never lost)
        admitted = {p.uid for p in supervisor.journal}
        assert injector.clean_uids(posts) <= admitted
        # health counters reconcile with what the injector did
        health = supervisor.health
        assert health.arrivals == len(faulty)
        assert health.admitted == len(supervisor.journal)
        assert health.emissions == result.size

    def test_drop_policy_quarantines_corrupted(self):
        posts = _clean_stream(99)
        injector = FaultInjector(seed=5, corrupt=0.4)
        faulty = injector.apply(posts)
        supervisor = StreamSupervisor(
            LABELS, lam=2.0, tau=1.0, ladder="stream_scan+",
            policy=SanitizationPolicy(),  # drop-and-quarantine defaults
        )
        run_supervised(supervisor, faulty)
        quarantined_uids = {
            record.post.uid for record in supervisor.quarantine
        }
        assert quarantined_uids == injector.report.corrupted
        assert supervisor.health.quarantined == len(quarantined_uids)


class TestRedelivery:
    def test_redeliver_appends_to_stream_tail(self):
        posts = _clean_stream(4, n=20)
        injector = FaultInjector(seed=3, redeliver=1.0)
        faulty = injector.apply(posts)
        # every post redelivered once, at the end, in original order
        assert faulty == posts + posts
        assert injector.report.redelivered == {p.uid for p in posts}
        kinds = {e.kind for e in injector.report.events}
        assert kinds == {"redeliver"}

    def test_zero_redeliver_keeps_existing_streams_identical(self):
        """Adding the redeliver knob must not perturb the stream an
        existing (seed, knobs) pair produced — the draws come last."""
        posts = _clean_stream(5)
        knobs = dict(drop=0.2, duplicate=0.2, delay=0.2, reorder=0.2,
                     corrupt=0.2)
        legacy = FaultInjector(seed=42, **knobs)
        extended = FaultInjector(seed=42, redeliver=0.0, **knobs)
        assert legacy.apply(posts) == extended.apply(posts)

    def test_redeliver_probability_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(redeliver=1.5)

    def test_deterministic_for_equal_seeds(self):
        posts = _clean_stream(6)
        one = FaultInjector(seed=9, redeliver=0.3)
        two = FaultInjector(seed=9, redeliver=0.3)
        assert one.apply(posts) == two.apply(posts)


class TestCrashSchedule:
    def test_fires_on_scheduled_visit_only(self):
        from repro.resilience.faults import CrashSchedule, KillPoint

        schedule = CrashSchedule("apply.before", hit=3)
        schedule("apply.before")
        schedule("wal.append")  # other sites never trigger
        schedule("apply.before")
        with pytest.raises(KillPoint):
            schedule("apply.before")
        assert schedule.fired
        # a fired schedule is inert (the process is already "dead")
        schedule("apply.before")

    def test_torn_bytes_written_before_death(self, tmp_path):
        from repro.resilience.faults import CrashSchedule, KillPoint

        schedule = CrashSchedule("wal.append", hit=1, torn_bytes=4)
        path = tmp_path / "segment.log"
        frame = b"WR" + bytes(range(20))
        with open(path, "wb") as handle:
            with pytest.raises(KillPoint):
                schedule("wal.append", handle=handle, frame=frame)
        assert path.read_bytes() == frame[:4]

    def test_torn_bytes_clamped_below_frame_length(self, tmp_path):
        from repro.resilience.faults import CrashSchedule, KillPoint

        schedule = CrashSchedule("wal.append", hit=1, torn_bytes=999)
        path = tmp_path / "segment.log"
        frame = b"WR123456"
        with open(path, "wb") as handle:
            with pytest.raises(KillPoint):
                schedule("wal.append", handle=handle, frame=frame)
        # always a strict prefix: the frame must stay incomplete
        assert path.read_bytes() == frame[:-1]

    def test_random_is_deterministic_per_seed(self):
        from repro.resilience.faults import CrashSchedule

        one = CrashSchedule.random(17)
        two = CrashSchedule.random(17)
        assert (one.site, one.hit, one.torn_bytes) == \
            (two.site, two.hit, two.torn_bytes)
        assert one.site in CrashSchedule.SITES

    def test_random_torn_only_at_append(self):
        from repro.resilience.faults import CrashSchedule

        for seed in range(60):
            schedule = CrashSchedule.random(seed)
            if schedule.torn_bytes is not None:
                assert schedule.site == "wal.append"

    def test_kill_point_is_not_a_repro_error(self):
        from repro.errors import ReproError
        from repro.resilience.faults import KillPoint

        # library except-ReproError blocks must never swallow a death
        assert not issubclass(KillPoint, ReproError)

    def test_validation(self):
        from repro.resilience.faults import CrashSchedule

        with pytest.raises(ValueError):
            CrashSchedule("wal.append", hit=0)
        with pytest.raises(ValueError):
            CrashSchedule("wal.append", torn_bytes=0)
