"""Checkpoint/restore: crash anywhere, recover to the exact same run.

The headline property: for random streams and random crash points,
checkpoint + replay emits exactly the same emission sequence — uids *and*
decision timestamps, bit-for-bit — as the uninterrupted run, for every
registered streaming algorithm.
"""

import random

import pytest

from repro.core.post import Post
from repro.core.streaming import _STREAM_FACTORIES
from repro.errors import CheckpointError
from repro.resilience import (
    Checkpoint,
    SanitizationPolicy,
    StreamSupervisor,
    run_supervised,
)

LABELS = "abc"


def _stream(seed, n=40):
    rng = random.Random(seed)
    value = 0.0
    posts = []
    for uid in range(n):
        value += rng.random() * 2.0
        posts.append(Post(
            uid=uid,
            value=value,
            labels=frozenset(rng.sample(LABELS, rng.randint(1, 2))),
        ))
    return posts


def _emission_trace(emissions):
    return [(e.post.uid, e.emitted_at) for e in emissions]


def _fresh(algorithm, policy=None):
    return StreamSupervisor(
        LABELS, lam=1.5, tau=1.0, ladder=algorithm, policy=policy,
    )


class TestCrashRecoveryProperty:
    @pytest.mark.parametrize("algorithm", sorted(_STREAM_FACTORIES))
    def test_checkpoint_replay_matches_uninterrupted(self, algorithm):
        rng = random.Random(hash(algorithm) & 0xFFFF)
        for trial in range(5):
            posts = _stream(seed=trial * 131 + 7)
            reference = _fresh(algorithm)
            run_supervised(reference, posts)
            expected = _emission_trace(reference.emissions)

            crash_at = rng.randint(0, len(posts))
            crashed = _fresh(algorithm)
            for post in posts[:crash_at]:
                crashed.ingest(post)
            # serialize through JSON: what a real recovery would load
            snapshot = Checkpoint.from_json(crashed.checkpoint().to_json())
            # the crashed process is gone; a new one restores and resumes
            revived = StreamSupervisor.restore(snapshot)
            for post in posts[crash_at:]:
                revived.ingest(post)
            revived.flush()
            assert _emission_trace(revived.emissions) == expected, (
                f"{algorithm}, trial {trial}, crash at {crash_at}"
            )

    @pytest.mark.parametrize(
        "algorithm", ["stream_scan+", "stream_greedy_sc+", "instant"]
    )
    def test_checkpoint_with_reorder_buffer_in_flight(self, algorithm):
        # a crash with posts still sitting in the reorder buffer must not
        # lose them: they are serialized and re-buffered on restore
        policy = SanitizationPolicy.lenient(reorder_buffer=3)
        posts = _stream(seed=99, n=25)
        reference = _fresh(algorithm, policy=policy)
        run_supervised(reference, posts)
        expected = _emission_trace(reference.emissions)

        crashed = _fresh(algorithm, policy=policy)
        for post in posts[:10]:
            crashed.ingest(post)
        snapshot = crashed.checkpoint()
        assert snapshot.buffered  # the buffer really was non-empty
        revived = StreamSupervisor.restore(snapshot, policy=policy)
        for post in posts[10:]:
            revived.ingest(post)
        revived.flush()
        assert _emission_trace(revived.emissions) == expected


class TestCheckpointFormat:
    def test_json_round_trip_preserves_everything(self):
        supervisor = _fresh("stream_scan+")
        for post in _stream(seed=3, n=15):
            supervisor.ingest(post)
        checkpoint = supervisor.checkpoint()
        clone = Checkpoint.from_json(checkpoint.to_json())
        assert clone == checkpoint
        assert clone.algorithm == "stream_scan+"

    def test_counters_survive_restore(self):
        supervisor = _fresh("stream_scan+")
        for post in _stream(seed=4, n=10):
            supervisor.ingest(post)
        checkpoint = supervisor.checkpoint()
        revived = StreamSupervisor.restore(checkpoint)
        assert revived.health.admitted == supervisor.health.admitted
        assert revived.health.arrivals == supervisor.health.arrivals
        assert revived.health.restores == 1
        assert revived.health.checkpoints == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_json("not json at all {")

    def test_non_object_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_json("[1, 2, 3]")

    def test_missing_fields_rejected(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_dict({"version": 1, "ladder": ["stream_scan"]})

    def test_unknown_version_rejected(self):
        supervisor = _fresh("stream_scan")
        payload = supervisor.checkpoint().to_dict()
        payload["version"] = 999
        with pytest.raises(CheckpointError):
            Checkpoint.from_dict(payload)

    def test_tampered_emission_record_fails_equivalence(self):
        supervisor = _fresh("stream_scan+")
        posts = _stream(seed=5, n=20)
        for post in posts:
            supervisor.ingest(post)
        assert supervisor.emissions  # the check below must have teeth
        payload = supervisor.checkpoint().to_dict()
        uid, at = payload["emissions"][0]
        payload["emissions"][0] = [uid, at + 0.25]
        with pytest.raises(CheckpointError):
            StreamSupervisor.restore(Checkpoint.from_dict(payload))

    def test_emission_absent_from_journal_rejected(self):
        supervisor = _fresh("instant")
        for post in _stream(seed=6, n=5):
            supervisor.ingest(post)
        payload = supervisor.checkpoint().to_dict()
        payload["emissions"].append([12345, 1.0])
        with pytest.raises(CheckpointError):
            StreamSupervisor.restore(Checkpoint.from_dict(payload))
