"""Durable checkpoint files: atomic save/load and torn-write regression."""

import json
import os

import pytest

from repro.core.post import Post
from repro.errors import CheckpointError
from repro.ioutil import atomic_write_bytes, atomic_write_text
from repro.resilience.checkpoint import Checkpoint


def _checkpoint(n=3):
    posts = tuple(
        Post(uid=i, value=float(i), labels=frozenset("ab"), text=f"t{i}")
        for i in range(n)
    )
    return Checkpoint(
        ladder=("stream_scan+", "stream_scan"),
        rung=0,
        labels=("a", "b"),
        lam=60.0,
        tau=0.0,
        journal=posts,
        buffered=(),
        seen_uids=tuple(range(n)),
        last_value=float(n - 1),
        emissions=((0, 0.0),),
        counters={"admitted": n},
    )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        original = _checkpoint()
        original.save(path)
        assert Checkpoint.load(path) == original

    def test_save_replaces_previous(self, tmp_path):
        path = tmp_path / "ckpt.json"
        _checkpoint(2).save(path)
        _checkpoint(5).save(path)
        assert len(Checkpoint.load(path).journal) == 5

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpoint.load(tmp_path / "nope.json")

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{torn mid-wri")
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)

    def test_truncated_payload_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        _checkpoint().save(path)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        with pytest.raises(CheckpointError):
            Checkpoint.load(path)


class TestTornWriteRegression:
    def test_crash_mid_save_leaves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A save that dies before the atomic rename must leave the
        previous checkpoint byte-intact and no half-written target —
        the regression a plain ``open(path, 'w')`` save would fail."""
        import repro.ioutil as ioutil

        path = tmp_path / "ckpt.json"
        old = _checkpoint(2)
        old.save(path)
        before = path.read_bytes()

        def doomed_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(ioutil.os, "replace", doomed_replace)
        with pytest.raises(OSError):
            _checkpoint(7).save(path)
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert Checkpoint.load(path) == old
        # the aborted temp file was cleaned up, not left as litter
        assert os.listdir(tmp_path) == ["ckpt.json"]


class TestAtomicWriteHelpers:
    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_text_roundtrip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, json.dumps({"k": 1}))
        assert json.loads(path.read_text()) == {"k": 1}

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "x")
        atomic_write_text(tmp_path / "a.json", "y")
        assert os.listdir(tmp_path) == ["a.json"]
        assert (tmp_path / "a.json").read_text() == "y"
