"""Worker node tests: the frame server wrapping one ordinary service."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.frames import encode_frame
from repro.cluster.protocol import (
    ClusterError,
    NodeUnavailableError,
    OP_HEALTH,
    OP_HEARTBEAT,
    WorkerFaultError,
    canonical_fingerprint,
    document_to_dict,
)
from repro.cluster.router import NodeClient
from repro.cluster.worker import WorkerNode, default_worker_config
from repro.service import DigestRequest, DiversificationService, \
    ServiceConfig

from .conftest import make_docs, make_queries, run


async def started_worker(**kwargs):
    worker = WorkerNode("w0", make_queries(), **kwargs)
    host, port = await worker.start()
    assert port != 0  # requested 0, got a real ephemeral port back
    client = NodeClient("w0", (host, port))
    return worker, client


def test_dedup_config_is_rejected():
    with pytest.raises(ClusterError):
        WorkerNode(
            "w0", make_queries(), ServiceConfig(dedup_distance=3)
        )


def test_start_binds_ephemeral_port_and_stop_frees_it():
    async def go():
        worker = WorkerNode("w0", make_queries())
        host, port = await worker.start()
        assert worker.address == (host, port)
        assert worker.running
        with pytest.raises(ClusterError):
            await worker.start()  # double start refused
        await worker.stop()
        assert not worker.running

    run(go())


def test_ingest_then_digest_matches_local_service():
    async def go():
        worker, client = await started_worker()
        docs = make_docs(24)
        response = await client.call(
            "ingest",
            {"documents": [document_to_dict(d) for d in docs]},
        )
        payload = response["payload"]
        assert payload["accepted"] == 24
        assert payload["corpus"] == 24

        reference = DiversificationService(
            make_queries(), default_worker_config()
        )
        reference.ingest(docs)
        request = DigestRequest(lam=30.0, labels=("golf", "nba"))
        remote = await client.call(
            "digest", {"request": request.to_dict()}
        )
        local = await reference.digest(request)
        from repro.service import ServiceResponse

        remote_response = ServiceResponse.from_dict(
            remote["payload"]["response"]
        )
        assert canonical_fingerprint(remote_response.result) == \
            canonical_fingerprint(local.result)
        await client.close()
        await worker.stop()
        reference.close()

    run(go())


def test_ingest_is_idempotent_by_doc_id():
    async def go():
        worker, client = await started_worker()
        docs = [document_to_dict(d) for d in make_docs(6)]
        first = await client.call("ingest", {"documents": docs})
        again = await client.call("ingest", {"documents": docs})
        assert first["payload"]["accepted"] == 6
        assert again["payload"]["accepted"] == 0
        assert again["payload"]["skipped"] == 6
        assert again["payload"]["corpus"] == 6
        assert worker.ingest_skipped == 6
        await client.close()
        await worker.stop()

    run(go())


def test_export_filters_by_label():
    async def go():
        worker, client = await started_worker()
        docs = make_docs(9)  # cycles golf, nba, tech
        await client.call(
            "ingest",
            {"documents": [document_to_dict(d) for d in docs]},
        )
        response = await client.call("export", {"labels": ["golf"]})
        exported = response["payload"]["documents"]
        assert [d["doc_id"] for d in exported] == [0, 3, 6]
        both = await client.call(
            "export", {"labels": ["golf", "tech"]}
        )
        assert len(both["payload"]["documents"]) == 6
        await client.close()
        await worker.stop()

    run(go())


def test_heartbeat_piggybacks_cluster_picture_into_health():
    async def go():
        worker, client = await started_worker()
        membership = {"nodes": {"w0": {"status": "up"}}}
        ring = {"w0": ["golf", "nba"], "w1": ["tech"]}
        response = await client.call(
            OP_HEARTBEAT, {"membership": membership, "ring": ring}
        )
        assert response["payload"]["status"] == "alive"
        health = await client.call(OP_HEALTH, {})
        cluster = health["payload"]["cluster"]
        assert cluster["role"] == "worker"
        assert cluster["node"] == "w0"
        assert cluster["owned_labels"] == ["golf", "nba"]
        assert cluster["peers"] == membership
        assert worker.heartbeats_seen == 1
        await client.close()
        await worker.stop()

    run(go())


def test_set_window_op_reaches_the_service():
    async def go():
        worker, client = await started_worker()
        response = await client.call(
            "set_window", {"labels": ["golf"], "window": 50.0}
        )
        assert response["payload"]["labels"] == ["golf"]
        assert worker.service._views.window_for(("golf",)) == 50.0
        cleared = await client.call(
            "set_window", {"labels": ["golf"], "window": None}
        )
        assert cleared["payload"]["window"] is None
        assert worker.service._views.window_for(("golf",)) is None
        await client.close()
        await worker.stop()

    run(go())


def test_unknown_op_comes_back_as_a_worker_fault():
    async def go():
        worker, client = await started_worker()
        with pytest.raises(WorkerFaultError):
            await client.call("explode", {})
        # the connection survives remote faults: next call works
        health = await client.call(OP_HEALTH, {})
        assert health["payload"]["cluster"]["node"] == "w0"
        await client.close()
        await worker.stop()

    run(go())


def test_oversized_frame_drops_the_connection():
    async def go():
        worker, client = await started_worker(max_frame=512)
        client.max_frame = 512
        reader, writer = await asyncio.open_connection(
            *worker.address
        )
        writer.write((1 << 20).to_bytes(4, "big"))  # hostile header
        await writer.drain()
        # the worker rejects and hangs up instead of waiting forever
        assert await asyncio.wait_for(reader.read(), timeout=2.0) == b""
        assert worker.frames_rejected == 1
        writer.close()
        await worker.stop()
        await client.close()

    run(go())


def test_garbage_bytes_drop_the_connection_without_hanging():
    async def go():
        worker, _ = await started_worker()
        reader, writer = await asyncio.open_connection(*worker.address)
        # valid length prefix, body is not JSON
        writer.write(encode_frame({"rid": 1})[:4] + b"{" * 11)
        writer.write_eof()
        assert await asyncio.wait_for(reader.read(), timeout=2.0) == b""
        writer.close()
        await worker.stop()

    run(go())


def test_durable_worker_recovers_corpus_from_wal(tmp_path):
    async def go():
        wal = str(tmp_path / "w0")
        worker, client = await started_worker(wal_dir=wal)
        assert worker.durable
        docs = [document_to_dict(d) for d in make_docs(12)]
        response = await client.call("ingest", {"documents": docs})
        assert response["payload"]["durable"] is True
        assert response["payload"]["corpus"] == 12
        await client.close()
        await worker.stop()

        # a fresh worker over the same WAL directory replays the log:
        # corpus and idempotency gate are both rebuilt locally
        revived, client2 = await started_worker(wal_dir=wal)
        assert revived.service.corpus_size() == 12
        again = await client2.call("ingest", {"documents": docs[:3]})
        assert again["payload"]["accepted"] == 0
        assert again["payload"]["skipped"] == 3
        await client2.close()
        await revived.stop()

    run(go())


def test_reconnect_to_a_dead_server_fails_fast():
    async def go():
        worker, client = await started_worker()
        await client.call(OP_HEALTH, {})
        await worker.stop()
        await client.close()  # drop the live connection too
        with pytest.raises((NodeUnavailableError, ClusterError)):
            await client.call(OP_HEALTH, {})

    run(go())
