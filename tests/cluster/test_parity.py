"""The acceptance parity suite: a 3-node cluster is byte-identical to
one process on the fig13 day workload.

The day slice (see :mod:`tests.cluster.conftest`) has multi-label
posts, so label partitions genuinely produce seam posts — the exact
merge path (seam re-solve) is exercised for real, not vacuously.
Fingerprints are :func:`canonical_fingerprint`: the full digest wire
dict minus timing and trace provenance.

Views are off on both sides (view-maintained covers are verifier-equal
but not byte-identical to fresh batch solves); a separate test pins the
views-on single-owner path.
"""

from __future__ import annotations

import pytest

from repro.cluster.harness import LocalCluster
from repro.cluster.protocol import canonical_fingerprint
from repro.cluster.router import ClusterConfig
from repro.cluster.worker import default_worker_config
from repro.core.coverage import verify_cover
from repro.service import DigestRequest, DiversificationService

from .conftest import LAM_S, day_documents, day_queries, run

REQUESTS = (
    # single-label: forwarded whole to one owner
    DigestRequest(lam=LAM_S, labels=("q0",)),
    DigestRequest(lam=LAM_S, labels=("q3",)),
    # label pairs: scatter-gather, seams likely
    DigestRequest(lam=LAM_S, labels=("q0", "q1")),
    DigestRequest(lam=LAM_S, labels=("q2", "q4")),
    # the whole universe: every shard serves
    DigestRequest(lam=LAM_S),
    # a different lambda over a subset
    DigestRequest(lam=LAM_S / 2, labels=("q0", "q2", "q3")),
)


def batch_config():
    return default_worker_config(views=False)


def reference_fingerprints(requests):
    async def go():
        service = DiversificationService(day_queries(), batch_config())
        service.ingest(day_documents())
        try:
            out = []
            for request in requests:
                response = await service.digest(request)
                assert response.status == "ok"
                out.append(canonical_fingerprint(response.result))
            return out
        finally:
            service.close()

    return run(go())


def cluster_responses(requests, **cluster_kwargs):
    async def go():
        cluster_kwargs.setdefault(
            "worker_config", batch_config()
        )
        async with LocalCluster(
            day_queries(), **cluster_kwargs
        ) as cluster:
            await cluster.router.ingest(day_documents())
            return [
                await cluster.router.digest(request)
                for request in requests
            ]

    return run(go())


def test_three_nodes_match_one_process_exactly():
    expected = reference_fingerprints(REQUESTS)
    responses = cluster_responses(REQUESTS, nodes=3)
    seam_requests = 0
    for response, fingerprint in zip(responses, expected):
        assert response.status == "ok"
        assert canonical_fingerprint(response.result) == fingerprint
        seam_requests += bool(response.seam_posts)
    # the day workload's multi-label posts must actually straddle the
    # partition: otherwise the seam re-solve path went untested
    assert seam_requests > 0


def test_replicated_cluster_is_still_exact():
    expected = reference_fingerprints(REQUESTS)
    responses = cluster_responses(
        REQUESTS, nodes=3,
        config=ClusterConfig(replication=2),
    )
    for response, fingerprint in zip(responses, expected):
        assert response.status == "ok"
        assert canonical_fingerprint(response.result) == fingerprint


def test_parity_survives_a_rebalance():
    expected = reference_fingerprints(REQUESTS)

    async def go():
        async with LocalCluster(
            day_queries(), nodes=2, worker_config=batch_config(),
        ) as cluster:
            await cluster.router.ingest(day_documents())
            await cluster.add_node("node2")  # join + handoff + warm
            joined = [
                await cluster.router.digest(request)
                for request in REQUESTS
            ]
            await cluster.remove_node("node1")  # graceful leave
            left = [
                await cluster.router.digest(request)
                for request in REQUESTS
            ]
            return joined, left

    joined, left = run(go())
    for responses in (joined, left):
        for response, fingerprint in zip(responses, expected):
            assert response.status == "ok"
            assert canonical_fingerprint(response.result) == \
                fingerprint


def test_stitch_mode_covers_are_verifier_valid():
    responses = cluster_responses(
        REQUESTS, nodes=3,
        config=ClusterConfig(stitch_mode="stitch"),
    )
    stitched = 0
    for response in responses:
        assert response.status == "ok"
        result = response.result
        # the stitched cover may differ from the global greedy pick
        # set, but it must BE a lambda-cover — the verifier guarantee
        verify_cover(result.instance, result.solution.posts)
        stitched += response.stitched
    assert stitched > 0


def test_views_on_single_owner_parity():
    # with one node there is no partition: the worker IS a single
    # process, so views-on digests must match a views-on reference
    request = DigestRequest(lam=LAM_S, labels=("q1",))

    async def go():
        reference = DiversificationService(
            day_queries(), default_worker_config()
        )
        reference.ingest(day_documents())
        local = await reference.digest(request)
        reference.close()
        async with LocalCluster(day_queries(), nodes=1) as cluster:
            await cluster.router.ingest(day_documents())
            routed = await cluster.router.digest(request)
        return local, routed

    local, routed = run(go())
    assert routed.status == "ok"
    assert canonical_fingerprint(routed.result) == \
        canonical_fingerprint(local.result)
