"""Shared fixtures for the cluster tests.

Every cluster test binds ephemeral ports (``port=0``) and reads the
bound address back from the worker — no fixed ports, no collisions
under parallel CI.  There is no pytest-asyncio in this repo: drive
coroutines through :func:`run`.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

import pytest

from repro.experiments.common import make_day_instance
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery

TOPIC_TEXTS = ("golf putt", "nba dunk", "cpu kernel")


def make_queries() -> List[TopicQuery]:
    return [
        TopicQuery("golf", ["golf", "putt"]),
        TopicQuery("nba", ["nba", "dunk"]),
        TopicQuery("tech", ["cpu", "kernel"]),
    ]


def make_docs(
    n: int = 24, step: float = 10.0, offset: int = 0
) -> List[Document]:
    """``n`` documents cycling through the three topics, ``step`` apart."""
    docs = []
    for i in range(n):
        uid = offset + i
        text = (
            f"{TOPIC_TEXTS[i % 3]} update number{uid} "
            f"token{uid * 7} extra{uid * 13}"
        )
        docs.append(Document(uid, uid * step, text))
    return docs


# -- the fig13 day workload, rendered into matchable documents -------------

SEED = 20140328
LAM_S = 300.0
NUM_LABELS = 5

_DAY_DOCS: Optional[List[Document]] = None


def day_queries() -> List[TopicQuery]:
    return [TopicQuery(f"q{i}", [f"kwq{i}"]) for i in range(NUM_LABELS)]


def day_documents() -> List[Document]:
    """A small slice of the fig13 day: multi-label posts occur
    naturally, so label partitions genuinely produce seam posts."""
    global _DAY_DOCS
    if _DAY_DOCS is None:
        instance = make_day_instance(
            seed=SEED, num_labels=NUM_LABELS, lam=LAM_S,
            scale=0.002, duration=21_600.0,
        )
        _DAY_DOCS = [
            Document(
                post.uid,
                post.value,
                " ".join(sorted(f"kw{label}" for label in post.labels))
                + f" body{post.uid}",
            )
            for post in instance.posts
        ]
    return _DAY_DOCS


def run(coro):
    """The suite has no pytest-asyncio; drive coroutines explicitly."""
    return asyncio.run(coro)


@pytest.fixture
def queries() -> List[TopicQuery]:
    return make_queries()


@pytest.fixture
def docs() -> List[Document]:
    return make_docs()
