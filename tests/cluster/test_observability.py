"""Cluster observability: federation, trace pipeline, alerts, profiling.

The acceptance criteria from the issue live here:

* a 3-node cluster persists at least one cross-node span tree to the
  TraceSink whose root is the router's request span and whose leaves
  (following ``link_trace_id``) include the workers' ``service.solve``
  spans;
* killing the only owner of a label raises a ``dark_shard`` alert
  within two collector cycles;
* ``health()`` / ``introspect()`` keep their earlier cluster blocks and
  gain ``fleet`` / ``alerts`` / ``traces`` blocks under kill, revive
  and rebalance.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.harness import LocalCluster
from repro.cluster.protocol import (
    NodeUnavailableError,
    OP_DIGEST,
    OP_SCRAPE,
    WorkerFaultError,
)
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.cluster.worker import default_worker_config
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.observability import facade, structlog
from repro.observability.anomaly import AnomalyEngine
from repro.observability.exporters import parse_prometheus
from repro.observability.traces import (
    SamplingPolicy,
    TracePipeline,
    TraceSink,
)
from repro.observability.tracing import TraceContext
from repro.service import DigestRequest

from .conftest import make_docs, make_queries, run

LAM = 30.0


def batch_config():
    return default_worker_config(views=False)


def fast_cluster(**overrides) -> ClusterConfig:
    overrides.setdefault("hedge_delay", 0.05)
    overrides.setdefault("request_timeout", 5.0)
    return ClusterConfig(**overrides)


def wide_universe():
    """8 labels over 3 nodes: every node owns a strict non-empty
    subset, so digests genuinely scatter and a single kill leaves
    dark labels under replication=1."""
    queries = [TopicQuery(f"t{i}", [f"kw{i}"]) for i in range(8)]
    docs = [
        Document(i, i * 10.0, f"kw{i % 8} body{i}") for i in range(32)
    ]
    return queries, docs


# -- the scrape op and metrics federation ----------------------------------


def test_scrape_op_returns_versioned_deltas():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=2, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(make_docs())
            await router.digest(DigestRequest(lam=LAM))
            name = cluster.names[0]
            first = (await router._client(name).call(
                OP_SCRAPE, {"cursor": None}
            ))["payload"]
            assert first["reset"] is True
            assert first["node"] == name
            # scrape refreshes the point-in-time gauges before shipping
            assert first["metrics"]["service.corpus"]["type"] == "gauge"
            assert "slo" in first
            assert first["service"]["inflight"] == 0
            assert "epoch" in first["service"]
            assert "pending" in first["service"]
            second = (await router._client(name).call(
                OP_SCRAPE, {"cursor": first["version"]}
            ))["payload"]
            assert second["reset"] is False
            assert second["version"] == first["version"] + 1
            # nothing happened between the scrapes: no counter deltas
            assert not any(
                entry["type"] == "counter"
                for entry in second["metrics"].values()
            )

    run(go())


def test_collector_federates_counters_and_latency():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=3, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            collector = cluster.enable_collector(
                interval=1.0, engine=AnomalyEngine()
            )
            await router.ingest(make_docs())
            for label in ("golf", "nba", "tech"):
                await router.digest(
                    DigestRequest(lam=LAM, labels=(label,))
                )
            summary = await router.collect_once()
            assert sorted(summary["scraped"]) == cluster.names
            assert summary["failed"] == []
            # every worker digest lands in the fleet-summed counters
            counters = collector.store.fleet_counters()
            assert counters["service.requests"] >= 3
            quantiles = collector.store.fleet_quantiles(
                "service.latency_s"
            )
            assert quantiles["count"] >= 3
            assert quantiles["p99"] is not None
            # the federated page parses; per-node series carry the
            # node label and the fleet aggregates ride along
            samples = parse_prometheus(collector.to_prometheus())
            nodes_seen = {
                s["labels"]["node"] for s in samples
                if "node" in s["labels"]
            }
            assert nodes_seen == set(cluster.names)
            families = {s["name"] for s in samples}
            assert "fleet_service_requests_total" in families
            assert "fleet_slo_latency_seconds" in families
            assert "repro_alerts_active" in families

    run(go())


# -- health / introspect shapes under churn --------------------------------


def test_health_and_introspect_shapes_under_kill_revive_rebalance():
    async def go():
        config = fast_cluster(replication=2, max_missed=1)
        async with LocalCluster(
            make_queries(), nodes=3, config=config,
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            router.enable_collector(engine=AnomalyEngine())
            await router.ingest(make_docs(24))
            await router.digest(DigestRequest(lam=LAM))
            await router.collect_once()

            def check_shapes():
                health = router.health()
                # the pre-existing cluster block, unchanged
                block = health["cluster"]
                for key in ("role", "nodes", "alive", "replication",
                            "ring", "inflight_scatters",
                            "node_epochs"):
                    assert key in block
                assert block["role"] == "router"
                # the new fleet block
                fleet = health["fleet"]
                assert fleet is not None
                for key in ("cycles", "interval_s", "scrape_failures",
                            "nodes", "counters", "latency", "slo",
                            "alerts_active"):
                    assert key in fleet
                intro = router.introspect()
                for key in ("role", "labels", "ring", "membership",
                            "queues", "counters", "clients",
                            "fleet", "alerts", "traces"):
                    assert key in intro
                assert set(intro["alerts"]) == {
                    "active", "raised_total", "cleared_total",
                    "evaluations", "rules",
                }

            check_shapes()
            victim = router.ring.owner("golf")
            await cluster.kill(victim)
            # the failed scrape feeds the failure detector directly
            await router.collect_once()
            await router.heartbeat_once()
            check_shapes()
            health = router.health()
            assert victim not in health["cluster"]["alive"]
            assert health["fleet"]["nodes"][victim][
                "consecutive_failures"] >= 1

            await cluster.revive(victim)
            await router.heartbeat_once()
            await router.collect_once()
            check_shapes()
            health = router.health()
            assert victim in health["cluster"]["alive"]
            assert health["fleet"]["nodes"][victim][
                "consecutive_failures"] == 0

            await cluster.add_node("node3")
            await router.collect_once()
            check_shapes()
            health = router.health()
            assert "node3" in health["cluster"]["nodes"]
            assert "node3" in health["fleet"]["nodes"]

    run(go())


# -- the durable cross-node trace (acceptance criterion) -------------------


def test_cross_node_span_tree_persists_to_the_sink(tmp_path):
    queries, docs = wide_universe()

    async def go():
        pipeline = TracePipeline(
            policy=SamplingPolicy(rate=1.0),
            sink=TraceSink(str(tmp_path / "traces.jsonl")),
        )
        async with LocalCluster(
            queries, nodes=3, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            router.attach_trace_pipeline(pipeline)
            await router.ingest(docs)
            with facade.session():
                response = await router.digest(DigestRequest(lam=LAM))
            assert response.status == "ok"
            assert len(response.shards) >= 2  # genuinely cross-node
            records = pipeline.sink.read_records()
            assert records, "expected a persisted trace record"
            record = records[-1]
            assert record["trace_id"] == response.trace_id
            assert record["reason"] == "sampled"
            tree = record["tree"]
            assert tree is not None
            roots = tree["roots"]
            assert [r["name"] for r in roots] == ["cluster.request"]

            def collect(nodes, names, linked_names):
                for node in nodes:
                    names.add(node["name"])
                    linked = node.get("linked")
                    if linked:
                        collect(linked["roots"], linked_names,
                                linked_names)
                    collect(node["children"], names, linked_names)

            names: set = set()
            linked_names: set = set()
            collect(roots, names, linked_names)
            # the router's trace reaches the adopted worker spans...
            assert "cluster.worker.digest" in names
            # ...and following link_trace_id reaches each worker's
            # service-side spans: the cross-node leaves
            assert "service.request" in linked_names
            assert "service.solve" in linked_names

    run(go())


def test_unsampled_requests_skip_spans_but_errors_leave_skeletons():
    async def go():
        pipeline = TracePipeline(policy=SamplingPolicy(rate=0.0))
        async with LocalCluster(
            make_queries(), nodes=2, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            router.attach_trace_pipeline(pipeline)
            await router.ingest(make_docs())
            with facade.session() as bundle:
                response = await router.digest(DigestRequest(lam=LAM))
                assert response.status == "ok"
                # rate=0: the router recorded no spans for this trace
                assert all(
                    span.trace_id != response.trace_id
                    for span in bundle.tracer.finished
                )
                counters = bundle.registry.counters()
                assert counters[
                    "cluster.router.trace_unsampled"] == 1
                # an error response still leaves a skeleton record
                bad = await router.digest(
                    DigestRequest(lam=LAM, labels=("nope",))
                )
                assert bad.status == "error"
            assert pipeline.skipped == 1
            assert pipeline.skeletons == 1
            records = pipeline.buffer.records()
            assert len(records) == 1
            assert records[0]["status"] == "error"
            assert records[0]["reason"] == "status"
            assert records[0]["tree"] is None
            snapshot = router.introspect()["traces"]
            assert snapshot["offered"] == 2
            assert snapshot["rate"] == 0.0

    run(go())


# -- the dark-shard alert (acceptance criterion) ---------------------------


def test_dark_shard_alert_within_two_collector_cycles():
    queries, docs = wide_universe()

    async def go():
        config = fast_cluster(replication=1, max_missed=1)
        async with LocalCluster(
            queries, nodes=3, config=config,
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            router.enable_collector(engine=AnomalyEngine())
            await router.ingest(docs)
            summary = await router.collect_once()
            assert summary["alerts"] == []
            labels = tuple(q.label for q in queries)
            ownership = router.ring.ownership(labels)
            victim = next(
                node for node, owned in sorted(ownership.items())
                if owned
            )
            await cluster.kill(victim)
            rules: set = set()
            for _ in range(2):
                summary = await router.collect_once()
                rules = {a["rule"] for a in summary["alerts"]}
                if "dark_shard" in rules:
                    break
            assert "dark_shard" in rules
            active = router.introspect()["alerts"]["active"]
            dark = [a for a in active if a["rule"] == "dark_shard"]
            assert dark and dark[0]["severity"] == "critical"
            # the alert names the dead node's labels
            assert dark[0]["subject"] == ",".join(
                sorted(ownership[victim])
            )
            # and the federated page carries the alert series
            page = router.federated_prometheus()
            assert 'repro_alerts{rule="dark_shard"' in page

    run(go())


# -- structured events on the failure paths --------------------------------


class _StubClient:
    """A scripted NodeClient stand-in for deterministic failover tests."""

    def __init__(self, behavior):
        self.behavior = behavior
        self.calls = 0
        self.failures = 0

    async def call(self, op, payload, *, trace=None,
                   want_spans=False, timeout=None):
        self.calls += 1
        return await self.behavior(op, payload)


def _stub_router(behaviors, **config_overrides):
    config_overrides.setdefault("hedge_delay", 0.01)
    router = ClusterRouter(
        make_queries(), ClusterConfig(**config_overrides)
    )
    for name, behavior in behaviors.items():
        router.membership.add(name, ("127.0.0.1", 0))
        router._clients[name] = _StubClient(behavior)
    return router


def test_hedged_retry_emits_a_structured_event():
    async def slow(op, payload):
        await asyncio.sleep(0.3)
        return {"payload": {"from": "slow"}}

    async def fast(op, payload):
        return {"payload": {"from": "fast"}}

    async def go():
        router = _stub_router({"slow": slow, "fast": fast})
        ctx = TraceContext.mint(tenant="t")
        with structlog.capture() as events:
            node, _, hedges = await router._call_with_failover(
                ("slow", "fast"), OP_DIGEST, {}, ctx,
            )
        assert node == "fast"
        assert hedges == 1
        hedged = [e for e in events
                  if e["event"] == "cluster.hedged_retry"]
        assert len(hedged) == 1
        assert hedged[0]["node"] == "fast"
        assert hedged[0]["trace_id"] == ctx.trace_id
        assert hedged[0]["op"] == OP_DIGEST
        assert hedged[0]["hedge_delay_s"] == pytest.approx(0.01)

    run(go())


def test_inline_failover_emits_a_structured_event():
    async def dead(op, payload):
        raise NodeUnavailableError("connection refused")

    async def alive(op, payload):
        return {"payload": {"from": "alive"}}

    async def go():
        router = _stub_router({"dead": dead, "alive": alive})
        ctx = TraceContext.mint(tenant="t")
        with structlog.capture() as events:
            node, _, _ = await router._call_with_failover(
                ("dead", "alive"), OP_DIGEST, {}, ctx,
            )
        assert node == "alive"
        failovers = [e for e in events
                     if e["event"] == "cluster.inline_failover"]
        assert len(failovers) == 1
        assert failovers[0]["node"] == "dead"
        assert failovers[0]["trace_id"] == ctx.trace_id
        assert "NodeUnavailableError" in failovers[0]["reason"]

    run(go())


def test_degraded_response_event_carries_the_dark_labels():
    queries, docs = wide_universe()

    async def go():
        config = fast_cluster(replication=1, max_missed=1)
        async with LocalCluster(
            queries, nodes=3, config=config,
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            labels = tuple(q.label for q in queries)
            ownership = router.ring.ownership(labels)
            victim = next(
                node for node, owned in sorted(ownership.items())
                if owned and len(owned) < len(labels)
            )
            dark = sorted(ownership[victim])
            await cluster.kill(victim)
            await router.heartbeat_once()
            with structlog.capture() as events:
                response = await router.digest(DigestRequest(lam=LAM))
            assert response.status == "degraded"
            degraded = [e for e in events
                        if e["event"] == "cluster.degraded_response"]
            assert len(degraded) == 1
            assert degraded[0]["trace_id"] == response.trace_id
            assert sorted(degraded[0]["missing_labels"]) == dark
            assert sorted(degraded[0]["dark_labels"]) == dark

    run(go())


# -- remote profiling ------------------------------------------------------


def test_profile_op_captures_a_live_node():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=2, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            name = cluster.names[0]
            payload = await router.profile_node(
                name, seconds=0.25, hz=100
            )
            assert payload["node"] == name
            assert payload["seconds"] == pytest.approx(0.25)
            assert payload["hz"] == 100
            assert payload["samples"] > 0
            doc = payload["speedscope"]
            assert doc["profiles"][0]["type"] == "sampled"
            assert isinstance(payload["collapsed"], str)

    run(go())


def test_profile_op_rejects_bad_requests():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=1, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            with pytest.raises(WorkerFaultError):
                await cluster.router.profile_node(
                    cluster.names[0], seconds=0.0
                )

    run(go())
