"""Router tests: routing, scatter-gather, failover, rebalance.

All parity assertions compare :func:`canonical_fingerprint` of the
routed digest against a single-process reference service over the same
documents.  Views are off on both sides here — view-maintained covers
are verifier-equal but not byte-identical to fresh batch solves, and
these tests pin the *batch* parity guarantee.
"""

from __future__ import annotations

import pytest

from repro.cluster.harness import LocalCluster
from repro.cluster.protocol import ClusterError, canonical_fingerprint
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.cluster.worker import default_worker_config
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DigestRequest, DiversificationService

from .conftest import make_docs, make_queries, run

LAM = 30.0


def batch_config():
    return default_worker_config(views=False)


def fast_cluster(**overrides) -> ClusterConfig:
    overrides.setdefault("hedge_delay", 0.05)
    overrides.setdefault("request_timeout", 5.0)
    return ClusterConfig(**overrides)


def reference_service(docs) -> DiversificationService:
    service = DiversificationService(make_queries(), batch_config())
    service.ingest(docs)
    return service


async def reference_fingerprint(docs, request: DigestRequest) -> str:
    service = reference_service(docs)
    try:
        response = await service.digest(request)
        assert response.result is not None
        return canonical_fingerprint(response.result)
    finally:
        service.close()


# -- configuration ---------------------------------------------------------


def test_config_validation():
    with pytest.raises(ClusterError):
        ClusterConfig(replication=0)
    with pytest.raises(ClusterError):
        ClusterConfig(stitch_mode="sideways")
    with pytest.raises(ClusterError):
        ClusterConfig(request_timeout=0.0)
    with pytest.raises(ClusterError):
        ClusterConfig(hedge_delay=-1.0)


def test_router_without_nodes_serves_an_error():
    async def go():
        router = ClusterRouter(make_queries())
        response = await router.digest(DigestRequest(lam=LAM))
        assert response.status == "error"
        assert "no nodes" in response.reason
        await router.close()

    run(go())


# -- routing and merging ---------------------------------------------------


def test_single_label_routes_to_the_owner():
    async def go():
        docs = make_docs(24)
        async with LocalCluster(
            make_queries(), nodes=3, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            await cluster.router.ingest(docs)
            request = DigestRequest(lam=LAM, labels=("golf",))
            response = await cluster.router.digest(request)
            assert response.status == "ok"
            assert response.shards == (
                cluster.router.ring.owner("golf"),
            )
            assert response.seam_posts == 0
            assert response.result is not None
            assert canonical_fingerprint(response.result) == \
                await reference_fingerprint(docs, request)

    run(go())


def test_multi_label_scatter_gather_is_byte_identical():
    async def go():
        docs = make_docs(24)
        async with LocalCluster(
            make_queries(), nodes=3, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            await cluster.router.ingest(docs)
            # labels=None means the whole universe: every shard serves
            request = DigestRequest(lam=LAM)
            response = await cluster.router.digest(request)
            assert response.status == "ok"
            assert response.result is not None
            # make_docs posts carry one label each: no seams, so the
            # union of the shard picks is the global solution outright
            assert response.seam_posts == 0
            assert response.resolves == 0
            assert canonical_fingerprint(response.result) == \
                await reference_fingerprint(docs, request)
            owners = {
                cluster.router.ring.owner(label)
                for label in ("golf", "nba", "tech")
            }
            assert set(response.shards) == owners

    run(go())


def test_stitch_mode_also_matches_when_seam_free():
    async def go():
        docs = make_docs(24)
        async with LocalCluster(
            make_queries(), nodes=3,
            config=fast_cluster(stitch_mode="stitch"),
            worker_config=batch_config(),
        ) as cluster:
            await cluster.router.ingest(docs)
            request = DigestRequest(lam=LAM)
            response = await cluster.router.digest(request)
            assert response.status == "ok"
            assert response.stitch_repairs == 0
            assert canonical_fingerprint(response.result) == \
                await reference_fingerprint(docs, request)

    run(go())


def test_unknown_label_is_an_error_response():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=2, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            response = await cluster.router.digest(
                DigestRequest(lam=LAM, labels=("curling",))
            )
            assert response.status == "error"
            assert "unknown labels" in response.reason
            assert cluster.router.errors == 1

    run(go())


# -- ingest routing --------------------------------------------------------


def test_ingest_fans_out_to_every_replica():
    async def go():
        docs = make_docs(24)
        async with LocalCluster(
            make_queries(), nodes=3,
            config=fast_cluster(replication=2),
            worker_config=batch_config(),
        ) as cluster:
            report = await cluster.router.ingest(docs)
            assert report["documents"] == 24
            assert report["unrouted"] == 0
            assert report["failed"] == []
            # every doc matches exactly one label -> lands on exactly
            # its two replicas
            total = sum(
                len(cluster.worker(name)._documents)
                for name in cluster.names
            )
            assert total == 2 * 24

    run(go())


def test_unmatched_documents_are_counted_not_shipped():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=2, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            stray = Document(99, 990.0, "nothing relevant here")
            report = await cluster.router.ingest(
                make_docs(6) + [stray]
            )
            assert report["documents"] == 7
            assert report["unrouted"] == 1
            held = sum(
                len(cluster.worker(name)._documents)
                for name in cluster.names
            )
            assert held == 6  # the stray went nowhere
            # ...but it still counts toward the cluster-wide
            # unmatched_dropped, matching a single process that saw it
            response = await cluster.router.digest(
                DigestRequest(lam=LAM)
            )
            assert response.result.unmatched_dropped == 1

    run(go())


# -- failover --------------------------------------------------------------


def test_replica_serves_when_the_primary_dies():
    async def go():
        docs = make_docs(24)
        config = fast_cluster(replication=2, max_missed=1)
        async with LocalCluster(
            make_queries(), nodes=3, config=config,
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            primary, replica = router.ring.owners("golf", 2)
            await cluster.kill(primary)
            request = DigestRequest(lam=LAM, labels=("golf",))
            response = await router.digest(request)
            # first request discovers the crash and fails over inline
            assert response.status == "ok"
            assert response.shards == (replica,)
            assert canonical_fingerprint(response.result) == \
                await reference_fingerprint(docs, request)
            # the request-path failure fed the detector
            assert not router.membership.is_alive(primary)
            # subsequent requests skip the dead primary outright
            again = await router.digest(request)
            assert again.status == "ok"
            assert again.shards == (replica,)
            assert router.failovers > 0

    run(go())


def test_unreplicated_label_down_degrades_honestly():
    # a wider universe than the shared fixtures: with 8 labels over 3
    # nodes, every node owns a strict, non-empty label subset
    queries = [
        TopicQuery(f"t{i}", [f"kw{i}"]) for i in range(8)
    ]
    docs = [
        Document(i, i * 10.0, f"kw{i % 8} body{i}") for i in range(32)
    ]
    labels = tuple(q.label for q in queries)

    async def go():
        config = fast_cluster(replication=1, max_missed=1)
        async with LocalCluster(
            queries, nodes=3, config=config,
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            ownership = router.ring.ownership(labels)
            victim, dark = next(
                (node, sorted(owned))
                for node, owned in sorted(ownership.items())
                if owned and len(owned) < len(labels)
            )
            survivors = tuple(
                label for label in labels if label not in dark
            )
            await cluster.kill(victim)
            await router.heartbeat_once()  # max_missed=1: flips down
            assert not router.membership.is_alive(victim)
            response = await router.digest(DigestRequest(lam=LAM))
            assert response.status == "degraded"
            assert response.missing_labels == tuple(dark)
            assert "no live shard" in response.reason
            # the served remainder matches a reference over the same
            # label subset
            reference = DiversificationService(
                queries, batch_config()
            )
            reference.ingest(docs)
            local = await reference.digest(
                DigestRequest(lam=LAM, labels=survivors)
            )
            reference.close()
            assert canonical_fingerprint(response.result) == \
                canonical_fingerprint(local.result)
            assert router.degraded_responses == 1

    run(go())


def test_recovered_node_is_resynced_from_replicas():
    async def go():
        docs = make_docs(24)
        config = fast_cluster(replication=2, max_missed=1)
        async with LocalCluster(
            make_queries(), nodes=3, config=config,
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            victim = router.ring.owner("golf")
            before = len(cluster.worker(victim)._documents)
            assert before > 0
            await cluster.kill(victim)
            await router.heartbeat_once()
            assert not router.membership.is_alive(victim)
            # the revived node starts empty (no WAL): the heartbeat
            # recovery path must re-copy its labels from live replicas
            await cluster.revive(victim)
            await router.heartbeat_once()
            assert router.membership.is_alive(victim)
            assert len(cluster.worker(victim)._documents) == before
            request = DigestRequest(lam=LAM, labels=("golf",))
            response = await router.digest(request)
            assert response.status == "ok"
            assert canonical_fingerprint(response.result) == \
                await reference_fingerprint(docs, request)

    run(go())


# -- rebalance -------------------------------------------------------------


def test_join_rebalances_and_reads_stay_correct():
    async def go():
        docs = make_docs(24)
        async with LocalCluster(
            make_queries(), nodes=2, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            await cluster.add_node("node2")
            assert "node2" in router.ring
            assert router.rebalances >= 1
            assert router.introspect()["joining"] == {}
            for label in ("golf", "nba", "tech"):
                request = DigestRequest(lam=LAM, labels=(label,))
                response = await router.digest(request)
                assert response.status == "ok"
                assert canonical_fingerprint(response.result) == \
                    await reference_fingerprint(docs, request)

    run(go())


def test_graceful_leave_hands_labels_over():
    async def go():
        docs = make_docs(24)
        async with LocalCluster(
            make_queries(), nodes=3, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            leaver = router.ring.owner("golf")
            await cluster.remove_node(leaver)
            assert leaver not in router.ring
            assert router.membership.get(leaver) is None
            request = DigestRequest(lam=LAM)
            response = await router.digest(request)
            assert response.status == "ok"
            assert leaver not in response.shards
            assert canonical_fingerprint(response.result) == \
                await reference_fingerprint(docs, request)

    run(go())


def test_cannot_remove_the_last_node():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=1, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            with pytest.raises(ClusterError):
                await cluster.remove_node("node0")

    run(go())


# -- per-view windows across the cluster -----------------------------------


def test_set_view_window_reaches_every_owner():
    async def go():
        async with LocalCluster(
            make_queries(), nodes=3,
            config=fast_cluster(replication=2),
        ) as cluster:  # default worker config: views on
            router = cluster.router
            ack = await router.set_view_window(["golf"], 500.0)
            assert ack["window"] == 500.0
            owners = set(router.ring.owners("golf", 2))
            assert set(ack["nodes"]) == owners
            for name in owners:
                views = cluster.worker(name).service._views
                assert views.window_for(("golf",)) == 500.0
            cleared = await router.set_view_window(["golf"], None)
            assert cleared["window"] is None
            for name in owners:
                views = cluster.worker(name).service._views
                assert views.window_for(("golf",)) is None
            with pytest.raises(ClusterError):
                await router.set_view_window(["curling"], 10.0)

    run(go())


# -- health / introspection ------------------------------------------------


def test_router_health_and_introspect_describe_the_cluster():
    async def go():
        docs = make_docs(12)
        async with LocalCluster(
            make_queries(), nodes=3, config=fast_cluster(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            await router.heartbeat_once()
            await router.digest(DigestRequest(lam=LAM))
            health = router.health()
            assert health["cluster"]["role"] == "router"
            assert sorted(health["cluster"]["nodes"]) == cluster.names
            assert health["cluster"]["alive"] == cluster.names
            assert health["cluster"]["inflight_scatters"] == 0
            assert sum(health["cluster"]["ring"].values()) == 3
            assert health["requests"] == 1
            assert health["documents"] == 12

            info = router.introspect()
            assert info["role"] == "router"
            assert info["stitch_mode"] == "exact"
            assert info["counters"]["requests"] == 1
            assert info["counters"]["scatter_legs"] >= 1
            assert set(info["clients"]) == set(cluster.names)
            assert all(
                entry["calls"] > 0
                for entry in info["clients"].values()
            )
            assert set(info["node_epochs"]) == set(cluster.names)

            # workers answer for the cluster through the same surface
            name = cluster.names[0]
            node_health = await router.node_health(name)
            assert node_health["cluster"]["role"] == "worker"
            assert node_health["cluster"]["node"] == name
            node_info = await router.node_introspect(name)
            assert node_info["cluster"]["heartbeats_seen"] == 1

    run(go())
