"""Wire-format tests: framing, truncation, oversize, and round-trips
of every ``to_dict``/``from_dict`` domain object through the codec."""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.frames import (
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    TruncatedFrameError,
    encode_frame,
    read_frame,
)
from repro.cluster.protocol import (
    document_from_dict,
    document_to_dict,
    error_frame,
    ok_frame,
    request_frame,
)
from repro.cluster.router import ClusterResponse
from repro.core.instance import Instance
from repro.core.post import Post
from repro.core.registry import solve
from repro.core.solution import Solution
from repro.index.inverted_index import Document
from repro.observability.tracing import Span, TraceContext
from repro.pipeline import DigestResult, DiversificationPipeline
from repro.service import DigestRequest, ServiceResponse

from .conftest import make_docs, make_queries, run


def codec_round_trip(payload: dict) -> dict:
    """Encode one payload, decode it back through the incremental
    decoder — the exact path every cluster message takes."""
    decoder = FrameDecoder()
    frames = decoder.feed(encode_frame(payload))
    decoder.close()
    assert len(frames) == 1
    return frames[0]


# -- plain framing ---------------------------------------------------------


def test_round_trip_single_frame():
    payload = {"op": "digest", "rid": 7, "payload": {"lam": 1.5}}
    assert codec_round_trip(payload) == payload


def test_multiple_frames_in_one_feed():
    decoder = FrameDecoder()
    blob = b"".join(encode_frame({"rid": i}) for i in range(5))
    frames = decoder.feed(blob)
    assert [frame["rid"] for frame in frames] == [0, 1, 2, 3, 4]
    decoder.close()


def test_byte_at_a_time_decoding():
    payload = {"rid": 1, "payload": {"text": "x" * 300}}
    blob = encode_frame(payload)
    decoder = FrameDecoder()
    collected = []
    for i in range(len(blob)):
        collected.extend(decoder.feed(blob[i:i + 1]))
    assert collected == [payload]
    decoder.close()


def test_non_dict_payload_rejected_on_encode():
    with pytest.raises(FrameError):
        encode_frame(["not", "an", "object"])  # type: ignore[arg-type]


def test_non_object_json_body_rejected_on_decode():
    body = json.dumps([1, 2, 3]).encode()
    blob = len(body).to_bytes(4, "big") + body
    with pytest.raises(FrameError):
        FrameDecoder().feed(blob)


def test_oversized_frame_rejected_on_encode():
    with pytest.raises(FrameTooLargeError):
        encode_frame({"blob": "x" * 64}, max_frame=32)


def test_oversized_header_rejected_before_body():
    # a header announcing 2x the limit must raise the instant the
    # header completes, without waiting for any body bytes
    decoder = FrameDecoder(max_frame=1024)
    with pytest.raises(FrameTooLargeError):
        decoder.feed((2048).to_bytes(4, "big"))


def test_truncated_stream_detected_on_close():
    blob = encode_frame({"rid": 9})
    decoder = FrameDecoder()
    decoder.feed(blob[:-3])
    with pytest.raises(TruncatedFrameError):
        decoder.close()


def test_clean_close_after_whole_frames():
    decoder = FrameDecoder()
    decoder.feed(encode_frame({"rid": 1}))
    decoder.close()  # no partial bytes -> no error


# -- the async reader ------------------------------------------------------


def _reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_read_frame_round_trip():
    async def go():
        payload = {"rid": 3, "payload": {"labels": ["golf"]}}
        reader = _reader_with(encode_frame(payload))
        assert await read_frame(reader) == payload
        assert await read_frame(reader) is None  # clean EOF

    run(go())


def test_read_frame_truncated_header_raises_not_hangs():
    async def go():
        reader = _reader_with(b"\x00\x00")
        with pytest.raises(TruncatedFrameError):
            await read_frame(reader)

    run(go())


def test_read_frame_truncated_body_raises_not_hangs():
    async def go():
        blob = encode_frame({"rid": 1, "pad": "y" * 100})
        reader = _reader_with(blob[:-10])
        with pytest.raises(TruncatedFrameError):
            await read_frame(reader)

    run(go())


def test_read_frame_oversized_rejected_before_body_read():
    async def go():
        # only the hostile header arrives, never a body; the reader
        # must reject immediately instead of awaiting 2 GiB
        reader = _reader_with(
            (2 ** 31).to_bytes(4, "big"), eof=False
        )
        with pytest.raises(FrameTooLargeError):
            await asyncio.wait_for(read_frame(reader), timeout=1.0)

    run(go())


# -- every domain object through the codec ---------------------------------


def _sample_digest() -> DigestResult:
    pipeline = DiversificationPipeline(
        make_queries(), lam=30.0, dedup_distance=None
    )
    return pipeline.digest(make_docs(18))


def test_document_round_trip():
    document = Document(5, 123.5, "golf putt body5")
    payload = codec_round_trip(document_to_dict(document))
    assert document_from_dict(payload) == document


def test_post_round_trip():
    post = Post(uid=4, value=77.25, labels=frozenset({"a", "b"}),
                text="hello")
    payload = codec_round_trip(post.to_dict())
    assert Post.from_dict(payload) == post


def test_instance_and_solution_round_trip():
    result = _sample_digest()
    instance = result.instance
    back = Instance.from_dict(codec_round_trip(instance.to_dict()))
    assert back.posts == instance.posts
    assert back.lam == instance.lam
    assert back.labels == instance.labels
    solution = result.solution
    sol_back = Solution.from_dict(codec_round_trip(solution.to_dict()))
    assert sol_back.posts == solution.posts
    assert sol_back.algorithm == solution.algorithm


def test_digest_result_round_trip():
    result = _sample_digest()
    back = DigestResult.from_dict(codec_round_trip(result.to_dict()))
    assert back.to_dict() == result.to_dict()


def test_digest_request_round_trip():
    request = DigestRequest(
        lam=25.0, labels=("nba", "golf"), algorithm="scan",
        session="tenant-a",
    )
    back = DigestRequest.from_dict(codec_round_trip(request.to_dict()))
    assert back == request
    # labels=None (whole universe) survives too
    wide = DigestRequest(lam=1.0)
    assert DigestRequest.from_dict(
        codec_round_trip(wide.to_dict())
    ) == wide


def test_service_response_round_trip():
    response = ServiceResponse(
        status="ok", result=_sample_digest(), algorithm="greedy_sc",
        cached=True, latency_s=0.01, epoch=3, trace_id="abc",
    )
    back = ServiceResponse.from_dict(
        codec_round_trip(response.to_dict())
    )
    assert back.to_dict() == response.to_dict()


def test_cluster_response_round_trip():
    response = ClusterResponse(
        status="degraded", result=_sample_digest(),
        algorithm="greedy_sc", latency_s=0.5, trace_id="t1",
        shards=("node0", "node2"), missing_labels=("tech",),
        seam_posts=2, stitched=True, stitch_repairs=1, hedges=1,
        reason="partial",
    )
    back = ClusterResponse.from_dict(
        codec_round_trip(response.to_dict())
    )
    assert back.to_dict() == response.to_dict()


def test_trace_context_and_span_round_trip():
    ctx = TraceContext.mint(tenant="t").at(17)
    assert TraceContext.from_dict(
        codec_round_trip(ctx.to_dict())
    ) == ctx
    span = Span(name="cluster.worker.digest", trace_id="abc",
                span_id=2, parent_id=1, started=0.5)
    back = Span.from_dict(codec_round_trip(span.as_dict()))
    assert back.as_dict() == span.as_dict()


def test_protocol_envelopes_round_trip():
    req = request_frame(
        "digest", 12, {"request": {"lam": 5.0}},
        trace=TraceContext.mint().to_dict(), want_spans=True,
    )
    assert codec_round_trip(req) == req
    ok = ok_frame(12, {"response": {"status": "ok"}},
                  spans=[{"name": "s"}])
    assert codec_round_trip(ok) == ok
    err = error_frame(12, "ReproError('boom')")
    assert codec_round_trip(err) == err


# -- property fuzz ---------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)
json_objects = st.dictionaries(
    st.text(max_size=10), json_values, max_size=6
)


@settings(max_examples=60, deadline=None)
@given(json_objects)
def test_fuzz_any_json_object_round_trips(payload):
    assert codec_round_trip(payload) == payload


@settings(max_examples=60, deadline=None)
@given(
    st.lists(json_objects, min_size=1, max_size=4),
    st.random_module(),
)
def test_fuzz_chunked_stream_never_splits_or_merges(payloads, rnd):
    import random

    blob = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    out = []
    i = 0
    while i < len(blob):
        step = random.randint(1, 7)
        out.extend(decoder.feed(blob[i:i + step]))
        i += step
    decoder.close()
    assert out == payloads


@settings(max_examples=60, deadline=None)
@given(
    json_objects,
    st.integers(min_value=1, max_value=2 ** 20),
)
def test_fuzz_truncation_never_yields_a_frame(payload, cut):
    blob = encode_frame(payload)
    cut = min(cut, len(blob) - 1)
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(blob[:cut])
    except FrameError:
        return  # rejected outright is fine too
    assert frames == []  # a partial frame never decodes
    with pytest.raises(TruncatedFrameError):
        decoder.close()


@settings(max_examples=40, deadline=None)
@given(
    st.builds(
        Post,
        uid=st.integers(min_value=0, max_value=10 ** 9),
        value=st.floats(
            allow_nan=False, allow_infinity=False, width=64
        ),
        labels=st.frozensets(
            st.sampled_from(["q0", "q1", "q2", "q3"]),
            min_size=1, max_size=3,
        ),
        text=st.text(max_size=30),
    )
)
def test_fuzz_posts_survive_the_codec_exactly(post):
    assert Post.from_dict(codec_round_trip(post.to_dict())) == post
