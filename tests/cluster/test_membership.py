"""Failure detection: miss counting, threshold flips, recovery."""

from __future__ import annotations

import pytest

from repro.cluster.membership import DOWN, Membership, UP
from repro.errors import ReproError


def make_membership(max_missed: int = 3) -> Membership:
    clock = [0.0]
    membership = Membership(
        max_missed=max_missed, clock=lambda: clock[0]
    )
    membership._test_clock = clock  # type: ignore[attr-defined]
    return membership


def test_nodes_start_up():
    m = make_membership()
    m.add("a", ("127.0.0.1", 1))
    assert m.is_alive("a")
    assert m.alive() == ["a"]


def test_flip_down_after_max_missed():
    m = make_membership(max_missed=3)
    m.add("a", ("127.0.0.1", 1))
    assert m.record_failure("a") is False
    assert m.record_failure("a") is False
    assert m.is_alive("a")
    assert m.record_failure("a") is True  # third miss crosses
    assert not m.is_alive("a")
    assert m.get("a").status == DOWN
    # further misses don't re-announce
    assert m.record_failure("a") is False
    assert m.failures_detected == 1


def test_success_resets_the_miss_counter():
    m = make_membership(max_missed=2)
    m.add("a", ("127.0.0.1", 1))
    m.record_failure("a")
    assert m.record_success("a") is False  # was never down
    m.record_failure("a")
    assert m.is_alive("a")  # counter was reset; one more miss needed


def test_recovery_is_announced_exactly_once():
    m = make_membership(max_missed=1)
    m.add("a", ("127.0.0.1", 1))
    m.record_failure("a")
    assert not m.is_alive("a")
    assert m.record_success("a") is True  # the resync trigger
    assert m.record_success("a") is False
    assert m.get("a").status == UP
    assert m.recoveries == 1
    assert m.get("a").transitions == 2


def test_unknown_nodes_are_ignored():
    m = make_membership()
    assert m.record_success("ghost") is False
    assert m.record_failure("ghost") is False


def test_add_remove_and_duplicates():
    m = make_membership()
    m.add("a", ("127.0.0.1", 1))
    with pytest.raises(ReproError):
        m.add("a", ("127.0.0.1", 2))
    m.remove("a")
    with pytest.raises(ReproError):
        m.remove("a")
    assert len(m) == 0


def test_snapshot_is_json_safe_and_complete():
    import json

    m = make_membership(max_missed=2)
    m.add("a", ("127.0.0.1", 10))
    m.add("b", ("127.0.0.1", 11))
    m.record_failure("b")
    m.record_failure("b")
    snap = m.snapshot()
    json.dumps(snap)  # piggybacked on heartbeats: must serialize
    assert snap["nodes"]["a"]["status"] == UP
    assert snap["nodes"]["b"]["status"] == DOWN
    assert snap["failures_detected"] == 1
    assert snap["max_missed"] == 2
