"""Deterministic placement, replication, and rebalance work lists."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashring import HashRing
from repro.errors import ReproError

LABELS = [f"q{i}" for i in range(40)]
NODES = ["node0", "node1", "node2", "node3", "node4"]


def test_placement_is_deterministic_across_instances():
    a = HashRing(NODES)
    b = HashRing(list(reversed(NODES)))  # insertion order is irrelevant
    for label in LABELS:
        assert a.owner(label) == b.owner(label)
        assert a.owners(label, 3) == b.owners(label, 3)


def test_owners_are_distinct_and_primary_first():
    ring = HashRing(NODES)
    for label in LABELS:
        owners = ring.owners(label, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert owners[0] == ring.owner(label)


def test_replication_degrades_on_small_rings():
    ring = HashRing(["only"])
    assert ring.owners("q0", 3) == ["only"]  # fewer, never padded


def test_every_node_gets_some_share():
    ring = HashRing(NODES)
    owned = ring.ownership(LABELS)
    assert set(owned) == set(NODES)
    # virtual nodes smooth the split: nobody is starved outright
    assert all(len(labels) > 0 for labels in owned.values())
    assert sum(len(labels) for labels in owned.values()) == len(LABELS)


def test_ownership_with_replication_counts_each_label_n_times():
    ring = HashRing(NODES)
    owned = ring.ownership(LABELS, 2)
    assert sum(len(labels) for labels in owned.values()) == 2 * len(LABELS)


def test_join_moves_only_labels_the_new_node_gains():
    before = HashRing(NODES[:3])
    after = HashRing(NODES[:4])
    gained = before.moved_keys(LABELS, after)
    # with n=1, only the joining node can gain labels: the mapping
    # from surviving nodes is unchanged (consistency property)
    assert set(gained) <= {"node3"}
    for label in LABELS:
        if label not in gained.get("node3", []):
            assert before.owner(label) == after.owner(label)


def test_leave_redistributes_only_the_leavers_labels():
    before = HashRing(NODES[:4])
    after = HashRing(NODES[:3])
    gained = before.moved_keys(LABELS, after)
    moved = [l for ls in gained.values() for l in ls]
    lost = [l for l in LABELS if before.owner(l) == "node3"]
    assert sorted(moved) == sorted(lost)


def test_membership_api():
    ring = HashRing(["a"])
    ring.add("b")
    assert len(ring) == 2 and "b" in ring
    with pytest.raises(ReproError):
        ring.add("b")
    ring.remove("a")
    assert ring.nodes == ("b",)
    with pytest.raises(ReproError):
        ring.remove("a")


def test_empty_ring_refuses_placement():
    with pytest.raises(ReproError):
        HashRing().owner("q0")


@settings(max_examples=50, deadline=None)
@given(
    st.sets(st.sampled_from(NODES), min_size=1, max_size=5),
    st.sampled_from(LABELS),
    st.integers(min_value=1, max_value=3),
)
def test_fuzz_owners_always_distinct_and_bounded(nodes, label, n):
    ring = HashRing(sorted(nodes))
    owners = ring.owners(label, n)
    assert len(owners) == min(n, len(nodes))
    assert len(set(owners)) == len(owners)
    assert set(owners) <= nodes
