"""The lexicon sentiment scorer."""

import pytest

from repro.text.sentiment import (
    NEGATIVE_WORDS,
    POSITIVE_WORDS,
    SentimentAnalyzer,
    sentiment_score,
)


class TestDefaultLexicons:
    def test_lexicons_disjoint(self):
        assert not POSITIVE_WORDS & NEGATIVE_WORDS

    def test_positive_text_positive_score(self):
        assert sentiment_score("great amazing win") > 0

    def test_negative_text_negative_score(self):
        assert sentiment_score("terrible awful crash") < 0

    def test_neutral_text_zero(self):
        assert sentiment_score("the meeting is on tuesday") == 0.0

    def test_empty_text_zero(self):
        assert sentiment_score("") == 0.0

    def test_range_bounded(self):
        assert -1.0 <= sentiment_score("love " * 50) <= 1.0
        assert -1.0 <= sentiment_score("hate " * 50) <= 1.0


class TestNegation:
    def test_negation_flips_polarity(self):
        assert sentiment_score("not good") < 0
        assert sentiment_score("not bad") > 0

    def test_negation_window_limited(self):
        # negation three tokens back is out of the default window of 2
        far = sentiment_score("not the big exciting win")
        assert far > 0

    def test_double_negation(self):
        # "never not good": both negations flip -> positive
        assert sentiment_score("never not good") > 0


class TestIntensifiers:
    def test_intensifier_amplifies(self):
        plain = sentiment_score("a good game")
        intense = sentiment_score("an extremely good game")
        assert intense > plain

    def test_intensified_negative(self):
        plain = sentiment_score("a bad game")
        intense = sentiment_score("an extremely bad game")
        assert intense < plain


class TestCustomAnalyzer:
    def test_custom_lexicons(self):
        analyzer = SentimentAnalyzer(
            positive={"bullish"}, negative={"bearish"}
        )
        assert analyzer.score("feeling bullish") > 0
        assert analyzer.score("feeling bearish") < 0
        # default lexicon words mean nothing to it
        assert analyzer.score("great") == 0.0

    def test_overlapping_lexicons_rejected(self):
        with pytest.raises(ValueError):
            SentimentAnalyzer(positive={"odd"}, negative={"odd"})

    def test_single_polar_word_scores_half(self):
        analyzer = SentimentAnalyzer(
            positive={"up"}, negative={"down"}
        )
        assert analyzer.score("up") == pytest.approx(0.5)
        assert analyzer.score("down") == pytest.approx(-0.5)

    def test_mixed_text_balances(self):
        score = sentiment_score("great game but terrible refs")
        assert abs(score) < 0.5


class TestAsDiversityDimension:
    def test_scores_usable_as_post_values(self):
        """Sentiment scores feed straight into the MQDP value slot."""
        from repro.core.instance import Instance
        from repro.core.post import Post
        from repro.core.scan import scan

        texts = [
            "amazing win tonight",
            "good game",
            "terrible loss",
            "awful crash disaster",
        ]
        posts = [
            Post(uid=i, value=sentiment_score(t),
                 labels=frozenset({"game"}), text=t)
            for i, t in enumerate(texts)
        ]
        instance = Instance(posts, lam=0.3)
        solution = scan(instance)
        assert 1 <= solution.size <= 4
