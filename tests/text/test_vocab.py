"""The structured vocabulary."""

from repro.index.tokenizer import STOPWORDS
from repro.text.vocab import BROAD_TOPICS, FILLER_WORDS, broad_topic_names


class TestBroadTopics:
    def test_ten_broad_topics(self):
        assert len(BROAD_TOPICS) == 10

    def test_names_sorted_and_stable(self):
        names = broad_topic_names()
        assert names == sorted(names)
        assert "politics" in names and "sports" in names

    def test_pools_large_enough_for_topics(self):
        # the topic model samples keywords per topic; pools must be solid
        for name, pool in BROAD_TOPICS.items():
            assert len(pool) >= 55, name

    def test_no_duplicates_within_pool(self):
        for name, pool in BROAD_TOPICS.items():
            assert len(set(pool)) == len(pool), name

    def test_words_are_tokenizer_stable(self):
        """Every vocab word must survive tokenisation unchanged, or the
        matcher could never hit it."""
        from repro.index.tokenizer import tokenize

        for pool in BROAD_TOPICS.values():
            for word in pool:
                assert tokenize(word) == [word], word

    def test_pool_words_not_stopwords(self):
        for pool in BROAD_TOPICS.values():
            assert not set(pool) & STOPWORDS


class TestFiller:
    def test_filler_nonempty(self):
        assert len(FILLER_WORDS) >= 40

    def test_filler_disjoint_from_topic_pools(self):
        """Filler must not accidentally make every tweet topical."""
        topical = set()
        for pool in BROAD_TOPICS.values():
            topical |= set(pool)
        assert not set(FILLER_WORDS) & topical
