"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.post import Post


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def figure2_instance() -> Instance:
    """The paper's Figure 2 example: four posts at Delta-t spacing.

    P1{a}, P2{a}, P3{a,c}, P4{c} with lambda = Delta-t = 1.  Example 2
    shows {P2, P4} is a lambda-cover.
    """
    return Instance.from_specs(
        [(0.0, "a"), (1.0, "a"), (2.0, "ac"), (3.0, "c")], lam=1.0
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

LABELS = "abcd"


@st.composite
def small_instances(
    draw,
    max_posts: int = 12,
    max_labels: int = 3,
    max_value: float = 30.0,
):
    """Random small MQDP instances for property-based tests.

    Sizes are kept small enough that the exact solvers stay fast, while
    values/lambdas vary enough to hit boundary cases (ties, lambda = 0,
    posts beyond every window).
    """
    n_labels = draw(st.integers(min_value=1, max_value=max_labels))
    labels = LABELS[:n_labels]
    n_posts = draw(st.integers(min_value=1, max_value=max_posts))
    posts = []
    for uid in range(n_posts):
        value = draw(
            st.floats(
                min_value=0.0,
                max_value=max_value,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        k = draw(st.integers(min_value=1, max_value=n_labels))
        chosen = draw(
            st.permutations(list(labels)).map(lambda p, k=k: p[:k])
        )
        posts.append(
            Post(uid=uid, value=value, labels=frozenset(chosen))
        )
    lam = draw(
        st.sampled_from([0.0, 0.5, 1.0, 2.0, 5.0, 10.0, max_value])
    )
    return Instance(posts, lam)


@st.composite
def streaming_instances(draw, max_posts: int = 40):
    """Larger single-to-three-label instances for streaming properties."""
    instance = draw(small_instances(max_posts=max_posts, max_labels=3,
                                    max_value=100.0))
    tau = draw(st.sampled_from([0.0, 0.5, 1.0, 2.0, 5.0, 20.0, 200.0]))
    return instance, tau
