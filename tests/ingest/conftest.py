"""Shared factories for the durable-ingest tests.

Documents carry per-uid unique tokens so SimHash cannot merge two
fixtures, and streaming pipelines default to ``dedup_distance=None`` so
corpus counts stay exact.  Every pipeline is supervised — the supervisor
journal is the checkpointable applied state durable ingest commits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.ingest import IngestConfig, IngestPipeline, IngestTarget
from repro.pipeline import DiversificationPipeline
from repro.resilience.policies import SanitizationPolicy
from repro.resilience.supervisor import ResilienceConfig

TOPIC_TEXTS = ("golf putt", "nba dunk", "cpu kernel")


def make_queries() -> List[TopicQuery]:
    return [
        TopicQuery("golf", ["golf", "putt"]),
        TopicQuery("nba", ["nba", "dunk"]),
        TopicQuery("tech", ["cpu", "kernel"]),
    ]


def make_docs(
    n: int = 24, step: float = 1.0, offset: int = 0
) -> List[Document]:
    """``n`` documents cycling through the topics, ``step`` apart."""
    docs = []
    for i in range(n):
        uid = offset + i
        text = (
            f"{TOPIC_TEXTS[i % 3]} update number{uid} "
            f"token{uid * 7} extra{uid * 13}"
        )
        docs.append(Document(uid, uid * step, text))
    return docs


def make_stream_pipeline(**overrides) -> DiversificationPipeline:
    overrides.setdefault("lam", 60.0)
    overrides.setdefault("stream_algorithm", "stream_scan+")
    overrides.setdefault("dedup_distance", None)
    overrides.setdefault(
        "resilience", ResilienceConfig(policy=SanitizationPolicy())
    )
    return DiversificationPipeline(make_queries(), **overrides)


def make_ingest(
    directory,
    config: Optional[IngestConfig] = None,
    *,
    fault_hook=None,
) -> IngestPipeline:
    """A durable ingest pipeline over a fresh supervised target."""
    return IngestPipeline(
        IngestTarget.for_pipeline(make_stream_pipeline()),
        directory,
        config,
        fault_hook=fault_hook,
    )
