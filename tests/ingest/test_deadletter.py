"""The dead-letter channel: admission, dedup, eviction, quarantine."""

from repro.ingest import DeadLetter, DeadLetterChannel
from repro.ingest.deadletter import DEAD_LETTER_ACTION
from repro.observability.facade import session


class _FakeSupervisor:
    """Only the surface the channel touches: a quarantine list."""

    def __init__(self):
        self.quarantine = []


class TestAdmission:
    def test_offer_records_letter(self):
        channel = DeadLetterChannel()
        letter = channel.offer(
            "doc:7", "late arrival", seq=7,
            data={"doc_id": 7, "timestamp": 1.0},
        )
        assert isinstance(letter, DeadLetter)
        assert channel.total == 1
        assert channel.seen("doc:7")
        assert channel.snapshot()[0]["reason"] == "late arrival"

    def test_duplicate_key_is_not_a_new_refusal(self):
        channel = DeadLetterChannel()
        assert channel.offer("k", "first") is not None
        assert channel.offer("k", "replayed refusal") is None
        assert channel.total == 1
        assert len(channel) == 1

    def test_counter_fires_per_admission(self):
        with session() as obs:
            channel = DeadLetterChannel()
            channel.offer("k1", "x")
            channel.offer("k1", "x")  # dedup: no second count
            channel.offer("k2", "y")
            counter = obs.registry.counter("ingest.dead_letters")
            assert counter.value == 2


class TestEviction:
    def test_capacity_evicts_oldest_but_keeps_totals(self):
        channel = DeadLetterChannel(capacity=2)
        for i in range(5):
            channel.offer(f"k{i}", "r")
        assert len(channel) == 2
        assert [letter.key for letter in channel.letters] == ["k3", "k4"]
        assert channel.total == 5
        assert channel.evicted == 3


class TestSnapshotRestore:
    def test_roundtrip(self):
        channel = DeadLetterChannel(capacity=4)
        channel.offer("a", "one", seq=1, data={"doc_id": 1})
        channel.offer("b", "two", seq=2)
        fresh = DeadLetterChannel(capacity=4)
        fresh.restore(
            channel.snapshot(),
            total=channel.total,
            evicted=channel.evicted,
        )
        assert fresh.total == 2
        assert fresh.seen("a") and fresh.seen("b")
        assert fresh.snapshot() == channel.snapshot()


class TestQuarantineForwarding:
    def test_parseable_payload_reaches_quarantine(self):
        channel = DeadLetterChannel()
        supervisor = _FakeSupervisor()
        channel.attach_supervisor(supervisor)
        channel.offer(
            "doc:3", "late arrival", seq=3,
            data={"doc_id": 3, "timestamp": 4.5, "text": "hello"},
        )
        (record,) = supervisor.quarantine
        assert record.action == DEAD_LETTER_ACTION
        assert record.post.uid == 3
        assert record.post.value == 4.5
        assert "late arrival" in record.reason

    def test_unparseable_payload_stays_channel_only(self):
        channel = DeadLetterChannel()
        supervisor = _FakeSupervisor()
        channel.attach_supervisor(supervisor)
        channel.offer("corrupt:x@0", "crc mismatch", data=None)
        channel.offer("bad", "malformed", data={"nonsense": True})
        assert supervisor.quarantine == []
        assert channel.total == 2
