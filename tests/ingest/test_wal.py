"""The write-ahead log: framing, torn-tail repair, rotation, corruption."""

import os
import struct
import zlib

import pytest

from repro.errors import IngestError, WalCorruptionError
from repro.ingest import CorruptRecord, WalRecord, WriteAheadLog
from repro.ingest.wal import _HEADER, _MAGIC, _encode


def _records(log, from_seq=0):
    return list(log.replay(from_seq))


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            assert log.append("k0", {"a": 1}) == 0
            assert log.append("k1", {"b": 2.5}) == 1
            records = _records(log)
        assert [r.seq for r in records] == [0, 1]
        assert [r.key for r in records] == ["k0", "k1"]
        assert records[1].data == {"b": 2.5}
        assert all(isinstance(r, WalRecord) for r in records)

    def test_replay_from_offset(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            for i in range(6):
                log.append(f"k{i}", {"i": i})
            assert [r.seq for r in log.replay(4)] == [4, 5]

    def test_reopen_resumes_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("k0", {})
            log.append("k1", {})
        with WriteAheadLog(tmp_path) as log:
            assert log.next_seq == 2
            assert log.append("k2", {}) == 2
            assert [r.seq for r in _records(log)] == [0, 1, 2]

    def test_records_carry_position(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("k0", {})
            (record,) = _records(log)
        assert record.segment == log.segments[0]
        assert record.offset == 0


class TestTornTail:
    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("k0", {"x": 1})
            segment = os.path.join(log.directory, log.segments[-1])
        frame = _encode(1, "k1", {"x": 2})
        with open(segment, "ab") as handle:
            handle.write(frame[: len(frame) - 5])  # power cut mid-write
        with WriteAheadLog(tmp_path) as log:
            # the torn frame was never acknowledged: truncated, reused
            assert log.next_seq == 1
            assert [r.seq for r in _records(log)] == [0]
        assert os.path.getsize(segment) == len(_encode(0, "k0", {"x": 1}))

    def test_torn_header_alone_truncated(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("k0", {})
            segment = os.path.join(log.directory, log.segments[-1])
        with open(segment, "ab") as handle:
            handle.write(b"WR\x00")  # 3 bytes of a 10-byte header
        with WriteAheadLog(tmp_path) as log:
            assert log.next_seq == 1

    def test_replay_ignores_live_torn_tail(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append("k0", {})
        # simulate a concurrent writer dying mid-frame
        log._handle.write(b"WR\x00\x00")
        log._handle.flush()
        assert [r.seq for r in _records(log)] == [0]
        log.close()


class TestCorruption:
    def test_crc_mismatch_yields_corrupt_record(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("k0", {"x": 1})
            log.append("k1", {"x": 2})
            log.append("k2", {"x": 3})
            segment = os.path.join(log.directory, log.segments[-1])
        # flip one payload byte of the middle frame
        frame_len = len(_encode(0, "k0", {"x": 1}))
        with open(segment, "r+b") as handle:
            handle.seek(frame_len + _HEADER.size + 2)
            byte = handle.read(1)
            handle.seek(frame_len + _HEADER.size + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with WriteAheadLog(tmp_path) as log:
            records = _records(log)
        kinds = [type(r).__name__ for r in records]
        assert kinds == ["WalRecord", "CorruptRecord", "WalRecord"]
        corrupt = records[1]
        assert corrupt.reason == "crc mismatch"
        # position-keyed: stable across replays for dead-letter dedup
        assert corrupt.key == f"corrupt:{corrupt.segment}@{frame_len}"
        assert records[2].seq == 2  # scan continued past the damage

    def test_bad_magic_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            log.append("k0", {})
            segment = os.path.join(log.directory, log.segments[-1])
        with open(segment, "r+b") as handle:
            handle.write(b"XX")
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path)

    def test_valid_crc_wrong_shape_is_corrupt(self, tmp_path):
        with WriteAheadLog(tmp_path) as log:
            segment = os.path.join(log.directory, log.segments[-1])
            payload = b'{"not": "ours"}'
            frame = _HEADER.pack(
                _MAGIC, len(payload), zlib.crc32(payload)
            ) + payload
            log._handle.write(frame)
            log._handle.flush()
            (record,) = _records(log)
        assert isinstance(record, CorruptRecord)
        assert record.reason == "undecodable payload"
        assert segment.endswith(record.segment)


class TestRotation:
    def test_rotates_and_replays_across_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=128) as log:
            for i in range(20):
                log.append(f"key{i}", {"i": i})
            assert len(log.segments) > 1
            assert log.rotations == len(log.segments) - 1
            assert [r.seq for r in _records(log)] == list(range(20))
        # reopen resumes across the segment set
        with WriteAheadLog(tmp_path, segment_max_bytes=128) as log:
            assert log.next_seq == 20
            assert [r.seq for r in _records(log)] == list(range(20))

    def test_segment_names_carry_first_seq(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=128) as log:
            for i in range(12):
                log.append(f"key{i}", {"i": i})
            names = log.segments
        assert names[0] == "wal-000000000000.log"
        firsts = [int(n[4:-4]) for n in names]
        assert firsts == sorted(firsts)

    def test_size_bytes_counts_all_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=128) as log:
            for i in range(12):
                log.append(f"key{i}", {"i": i})
            total = sum(
                os.path.getsize(os.path.join(log.directory, n))
                for n in log.segments
            )
            assert log.size_bytes() == total


class TestValidation:
    def test_bad_fsync_interval(self, tmp_path):
        with pytest.raises(IngestError):
            WriteAheadLog(tmp_path, fsync_interval=0)

    def test_bad_segment_size(self, tmp_path):
        with pytest.raises(IngestError):
            WriteAheadLog(tmp_path, segment_max_bytes=4)

    def test_fsync_batching_counts(self, tmp_path):
        calls = []
        log = WriteAheadLog(tmp_path, fsync_interval=3)
        original = log.sync
        log.sync = lambda: calls.append(True) or original()
        for i in range(7):
            log.append(f"k{i}", {})
        assert len(calls) == 2  # at appends 3 and 6
        log.close()
