"""The headline robustness property: ``kill -9`` anywhere, recover,
replay — and the corpus is byte-identical with zero duplicate applies.

Each seed draws a :class:`~repro.resilience.faults.CrashSchedule` — a
fault site (WAL append/sync/rotate, apply before/after, commit
before/after), a visit count, and for mid-append deaths a torn-write
prefix length — then runs ingest until the schedule kills it, abandons
every in-memory object, resurrects from disk alone, lets the producer
re-send everything (at-least-once delivery), and drains.  The invariant:

* the recovered corpus digest equals the uninterrupted baseline's;
* no journal uid was applied twice (``duplicate_applies() == 0``).
"""

import pytest

from repro.ingest import IngestConfig
from repro.resilience.faults import CrashSchedule, KillPoint

from .conftest import make_docs, make_ingest

N_DOCS = 30
CONFIG = IngestConfig(reorder_window=4, commit_interval=5)


def _baseline_digest(tmp_path):
    ingest = make_ingest(tmp_path / "baseline", CONFIG)
    for doc in make_docs(N_DOCS):
        ingest.append(doc)
    ingest.drain()
    ingest.flush()
    assert ingest.duplicate_applies() == 0
    return ingest.corpus_digest()


class TestRandomizedCrashSchedules:
    @pytest.mark.parametrize("seed", range(30))
    def test_crash_recover_replay_is_exactly_once(self, tmp_path, seed):
        expected = _baseline_digest(tmp_path)
        schedule = CrashSchedule.random(seed)
        workdir = tmp_path / "crash"

        victim = make_ingest(workdir, CONFIG, fault_hook=schedule)
        try:
            for doc in make_docs(N_DOCS):
                victim.append(doc)
            victim.drain()
            victim.flush()
        except KillPoint:
            pass  # the process is dead; drop every in-memory object

        # resurrection: fresh target, fresh pipeline, same directory
        revived = make_ingest(workdir, CONFIG)
        revived.recover()
        # an at-least-once producer re-sends its whole batch
        for doc in make_docs(N_DOCS):
            revived.append(doc)
        revived.drain()
        revived.flush()

        assert revived.corpus_digest() == expected, repr(schedule)
        assert revived.duplicate_applies() == 0, repr(schedule)

    @pytest.mark.parametrize("site", CrashSchedule.SITES)
    def test_every_site_is_actually_exercised(self, tmp_path, site):
        """Each declared fault site fires for some schedule — a suite
        whose schedules never hit a site proves nothing about it."""
        config = IngestConfig(
            reorder_window=2, commit_interval=3,
            segment_max_bytes=256,  # small enough to force rotations
        )
        schedule = CrashSchedule(site, hit=1)
        ingest = make_ingest(tmp_path, config, fault_hook=schedule)
        with pytest.raises(KillPoint):
            for doc in make_docs(N_DOCS):
                ingest.append(doc)
            ingest.drain()
            ingest.flush()
        assert schedule.fired


class TestTornWrites:
    @pytest.mark.parametrize("torn_bytes", [1, 5, 9, 20])
    def test_torn_append_is_truncated_and_resent(
        self, tmp_path, torn_bytes
    ):
        expected = _baseline_digest(tmp_path)
        schedule = CrashSchedule(
            "wal.append", hit=7, torn_bytes=torn_bytes
        )
        workdir = tmp_path / "crash"
        victim = make_ingest(workdir, CONFIG, fault_hook=schedule)
        with pytest.raises(KillPoint):
            for doc in make_docs(N_DOCS):
                victim.append(doc)

        revived = make_ingest(workdir, CONFIG)
        revived.recover()
        for doc in make_docs(N_DOCS):
            revived.append(doc)
        revived.drain()
        revived.flush()
        assert revived.corpus_digest() == expected
        assert revived.duplicate_applies() == 0

    def test_torn_tail_repair_counts(self, tmp_path):
        from repro.observability.facade import session

        schedule = CrashSchedule("wal.append", hit=3, torn_bytes=6)
        workdir = tmp_path / "crash"
        victim = make_ingest(workdir, CONFIG, fault_hook=schedule)
        with pytest.raises(KillPoint):
            for doc in make_docs(5):
                victim.append(doc)
        with session() as obs:
            make_ingest(workdir, CONFIG)  # reopen repairs the tail
            counter = obs.registry.counter(
                "ingest.wal.torn_tails_repaired"
            )
            assert counter.value == 1


class TestCommitCrashes:
    def test_crash_mid_commit_leaves_previous_commit(self, tmp_path):
        """Death after commit.before (inside the atomic write window)
        must leave the *previous* commit readable — the temp file is
        abandoned, never the target."""
        expected = _baseline_digest(tmp_path)
        schedule = CrashSchedule("commit.before", hit=2)
        workdir = tmp_path / "crash"
        victim = make_ingest(workdir, CONFIG, fault_hook=schedule)
        with pytest.raises(KillPoint):
            for doc in make_docs(N_DOCS):
                victim.append(doc)
            victim.drain()
            victim.flush()

        revived = make_ingest(workdir, CONFIG)
        assert revived.recover() is True  # the first commit survived
        for doc in make_docs(N_DOCS):
            revived.append(doc)
        revived.drain()
        revived.flush()
        assert revived.corpus_digest() == expected
        assert revived.duplicate_applies() == 0
