"""Competing consumers: parallel claims, crashes, redelivery idempotence."""

import pytest

from repro.errors import IngestError
from repro.ingest import ConsumerGroup, IngestConfig

from .conftest import make_docs, make_ingest

N_DOCS = 24
CONFIG = IngestConfig(reorder_window=4)


def _serial_digest(tmp_path):
    ingest = make_ingest(tmp_path / "serial", CONFIG)
    for doc in make_docs(N_DOCS):
        ingest.append(doc)
    ingest.drain()
    ingest.flush()
    return ingest.corpus_digest()


class TestCompetingConsumers:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_group_drain_matches_serial(self, tmp_path, workers):
        expected = _serial_digest(tmp_path)
        ingest = make_ingest(tmp_path / "group", CONFIG)
        for doc in make_docs(N_DOCS):
            ingest.append(doc)
        group = ConsumerGroup(ingest, workers=workers)
        fetched = group.drain()
        ingest.flush()
        assert fetched == N_DOCS
        assert group.claims == N_DOCS
        assert ingest.corpus_digest() == expected
        assert ingest.duplicate_applies() == 0

    def test_drain_is_resumable(self, tmp_path):
        expected = _serial_digest(tmp_path)
        ingest = make_ingest(tmp_path / "group", CONFIG)
        docs = make_docs(N_DOCS)
        for doc in docs[:10]:
            ingest.append(doc)
        group = ConsumerGroup(ingest, workers=2)
        assert group.drain() == 10
        for doc in docs[10:]:
            ingest.append(doc)
        assert group.drain() == N_DOCS - 10
        ingest.flush()
        assert ingest.corpus_digest() == expected


class TestRedelivery:
    @pytest.mark.parametrize("mode", ["before", "after"])
    def test_crashed_claim_is_redelivered_idempotently(
        self, tmp_path, mode
    ):
        expected = _serial_digest(tmp_path)
        ingest = make_ingest(tmp_path / "group", CONFIG)
        for doc in make_docs(N_DOCS):
            ingest.append(doc)
        group = ConsumerGroup(
            ingest, workers=3, crashes={5: mode, 13: mode}
        )
        group.drain()
        ingest.flush()
        assert group.redeliveries == 2
        assert ingest.corpus_digest() == expected
        assert ingest.duplicate_applies() == 0

    def test_after_crash_exercises_duplicate_suppression(self, tmp_path):
        """An ``after`` crash means the record was applied, then the
        unacked claim is redelivered — the idempotent receiver must
        suppress the second delivery."""
        ingest = make_ingest(tmp_path, CONFIG)
        for doc in make_docs(N_DOCS):
            ingest.append(doc)
        group = ConsumerGroup(ingest, workers=2, crashes={7: "after"})
        group.drain()
        ingest.flush()
        assert ingest.suppressed == 1
        assert ingest.duplicate_applies() == 0


class TestValidation:
    def test_bad_worker_count(self, tmp_path):
        ingest = make_ingest(tmp_path, CONFIG)
        with pytest.raises(IngestError):
            ConsumerGroup(ingest, workers=0)

    def test_bad_crash_mode(self, tmp_path):
        ingest = make_ingest(tmp_path, CONFIG)
        with pytest.raises(IngestError):
            ConsumerGroup(ingest, crashes={1: "sideways"})
