"""The resequencer: bounded-window order repair, late routing, timeouts."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IngestError
from repro.ingest import Resequencer


def _drive(reseq, items):
    """Push (value, seq) pairs; return released values incl. flush."""
    out = []
    for value, seq in items:
        out.extend(reseq.push(value, seq, f"k{seq}", {"seq": seq}))
    out.extend(reseq.flush())
    return [item[0] for item in out]


class TestOrdering:
    def test_window_zero_releases_immediately(self):
        reseq = Resequencer(window=0)
        released = reseq.push(5.0, 0, "k0", None)
        assert [item[0] for item in released] == [5.0]
        assert len(reseq) == 0

    def test_window_repairs_bounded_shuffle(self):
        reseq = Resequencer(window=3)
        values = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0]
        out = _drive(reseq, [(v, i) for i, v in enumerate(values)])
        assert out == sorted(values)
        assert reseq.released == len(values)

    def test_equal_values_release_in_seq_order(self):
        reseq = Resequencer(window=4)
        out = []
        for seq in (3, 1, 2, 0):
            out.extend(reseq.push(7.0, seq, f"k{seq}", None))
        out.extend(reseq.flush())
        assert [item[1] for item in out] == [0, 1, 2, 3]

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_any_window_bounded_permutation_is_repaired(self, seed):
        """Property: shuffle arrivals freely within consecutive blocks
        of ``window + 1`` (so no element is displaced beyond the
        window's reach) and the resequencer restores exact sorted
        order, with nothing routed late."""
        rng = random.Random(seed)
        n, window = 30, rng.randint(1, 8)
        values = sorted(rng.uniform(0, 100) for _ in range(n))
        arrival = []
        for start in range(0, n, window + 1):
            chunk = list(range(start, min(start + window + 1, n)))
            rng.shuffle(chunk)
            arrival.extend(chunk)
        reseq = Resequencer(window=window)
        out = _drive(
            reseq,
            [(values[i], seq) for seq, i in enumerate(arrival)],
        )
        assert out == values
        assert reseq.late == 0


class TestLateArrivals:
    def test_late_record_goes_to_sink(self):
        sunk = []
        reseq = Resequencer(
            window=0,
            late_sink=lambda *args: sunk.append(args),
        )
        reseq.push(10.0, 0, "k0", None)
        released = reseq.push(3.0, 1, "k1", {"doc": 1})
        assert released == []
        assert reseq.late == 1
        (entry,) = sunk
        assert entry == (3.0, 1, "k1", {"doc": 1}, 10.0)

    def test_late_without_sink_is_counted(self):
        reseq = Resequencer(window=0)
        reseq.push(10.0, 0, "k0", None)
        assert reseq.push(3.0, 1, "k1", None) == []
        assert reseq.late == 1


class TestGapTimeout:
    def test_spread_beyond_timeout_forces_release(self):
        reseq = Resequencer(window=100, gap_timeout=5.0)
        assert reseq.push(1.0, 0, "k0", None) == []
        assert reseq.push(3.0, 1, "k1", None) == []
        released = reseq.push(9.0, 2, "k2", None)
        # 9 - 1 > 5 forces out 1.0; 9 - 3 > 5 forces out 3.0
        assert [item[0] for item in released] == [1.0, 3.0]
        assert reseq.gap_timeouts == 2

    def test_within_timeout_keeps_buffering(self):
        reseq = Resequencer(window=100, gap_timeout=5.0)
        for seq, value in enumerate((1.0, 2.0, 4.0)):
            assert reseq.push(value, seq, f"k{seq}", None) == []
        assert reseq.gap_timeouts == 0
        assert len(reseq) == 3


class TestSnapshots:
    def test_pending_restore_roundtrip(self):
        reseq = Resequencer(window=10)
        for seq, value in enumerate((5.0, 2.0, 8.0)):
            reseq.push(value, seq, f"k{seq}", {"seq": seq})
        frontier, pending = reseq.frontier, reseq.pending()
        assert [item[0] for item in pending] == [2.0, 5.0, 8.0]

        fresh = Resequencer(window=10)
        fresh.restore(frontier, pending)
        assert fresh.frontier == frontier
        assert [item[0] for item in fresh.flush()] == [2.0, 5.0, 8.0]

    def test_restored_frontier_still_rejects_late(self):
        reseq = Resequencer(window=0)
        reseq.push(10.0, 0, "k0", None)
        fresh = Resequencer(window=0)
        fresh.restore(reseq.frontier, [])
        fresh.push(3.0, 1, "k1", None)
        assert fresh.late == 1


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(IngestError):
            Resequencer(window=-1)

    def test_negative_gap_timeout_rejected(self):
        with pytest.raises(IngestError):
            Resequencer(gap_timeout=-0.5)
