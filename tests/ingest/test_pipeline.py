"""IngestPipeline: idempotent receiver, offset commits, recovery."""

import json
import os

import pytest

from repro.errors import IngestError
from repro.index.inverted_index import Document
from repro.ingest import IngestConfig, IngestPipeline, IngestTarget, \
    corpus_digest
from repro.ingest.deadletter import DEAD_LETTER_ACTION
from repro.observability.facade import session
from repro.pipeline import DiversificationPipeline

from .conftest import make_docs, make_ingest, make_queries, \
    make_stream_pipeline


class TestApplyPath:
    def test_append_drain_applies_in_order(self, tmp_path):
        ingest = make_ingest(tmp_path)
        docs = make_docs(12)
        for doc in docs:
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        journal = ingest.target.supervisor().journal
        assert [post.uid for post in journal] == [d.doc_id for d in docs]
        assert ingest.applied == len(docs)
        assert ingest.duplicate_applies() == 0

    def test_two_identical_runs_share_a_digest(self, tmp_path):
        digests = []
        for sub in ("a", "b"):
            ingest = make_ingest(tmp_path / sub)
            for doc in make_docs(10):
                ingest.append(doc)
            ingest.drain()
            ingest.flush()
            digests.append(ingest.corpus_digest())
        assert digests[0] == digests[1]

    def test_out_of_order_appends_are_resequenced(self, tmp_path):
        ingest = make_ingest(
            tmp_path, IngestConfig(reorder_window=4)
        )
        docs = make_docs(12)
        shuffled = docs[:]
        # bounded shuffle: swap adjacent pairs
        for i in range(0, len(shuffled) - 1, 2):
            shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
        for doc in shuffled:
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        journal = ingest.target.supervisor().journal
        assert [post.uid for post in journal] == [d.doc_id for d in docs]

    def test_custom_idempotency_key(self, tmp_path):
        ingest = make_ingest(tmp_path)
        doc = make_docs(1)[0]
        ingest.append(doc, key="tenant-a:1")
        ingest.append(doc, key="tenant-a:1")  # producer retry
        ingest.drain()
        ingest.flush()
        assert ingest.applied == 1
        assert ingest.suppressed == 1


class TestIdempotentReceiver:
    def test_duplicate_key_suppressed_counted_and_dead_lettered(
        self, tmp_path
    ):
        with session() as obs:
            ingest = make_ingest(tmp_path)
            doc = make_docs(1)[0]
            ingest.append(doc)
            ingest.append(doc)  # same default key doc:0
            ingest.drain()
            ingest.flush()
            assert ingest.applied == 1
            assert ingest.suppressed == 1
            assert ingest.duplicate_applies() == 0
            counter = obs.registry.counter(
                "ingest.duplicates_suppressed"
            )
            assert counter.value == 1
        keys = [letter.key for letter in ingest.dead_letters.letters]
        assert keys == ["dup:1:doc:0"]

    def test_malformed_payload_is_dead_lettered(self, tmp_path):
        ingest = make_ingest(tmp_path)
        ingest.wal.append("bad:1", {"no_doc_id": True})
        ingest.drain()
        assert ingest.applied == 0
        (letter,) = ingest.dead_letters.letters
        assert letter.key == "bad:1"
        assert letter.reason == "malformed payload"

    def test_late_arrival_reaches_supervisor_quarantine(self, tmp_path):
        ingest = make_ingest(
            tmp_path, IngestConfig(reorder_window=0)
        )
        docs = make_docs(3)
        ingest.append(docs[2])  # frontier jumps to t=2
        ingest.append(docs[0])  # now hopelessly late
        ingest.drain()
        ingest.flush()
        (letter,) = ingest.dead_letters.letters
        assert letter.key == "doc:0"
        assert "late arrival" in letter.reason
        quarantine = ingest.target.supervisor().quarantine
        assert any(
            record.action == DEAD_LETTER_ACTION
            and record.post.uid == 0
            for record in quarantine
        )


class TestCommitRecover:
    def test_recover_on_fresh_directory_is_noop(self, tmp_path):
        ingest = make_ingest(tmp_path)
        assert ingest.recover() is False
        assert ingest.consumed_seq == -1

    def test_commit_recover_roundtrip(self, tmp_path):
        ingest = make_ingest(tmp_path, IngestConfig(reorder_window=2))
        docs = make_docs(20)
        for doc in docs[:12]:
            ingest.append(doc)
        ingest.drain()
        digest_mid = ingest.corpus_digest()
        offset_mid = ingest.consumed_seq

        # a new process over the same directory
        revived = make_ingest(tmp_path, IngestConfig(reorder_window=2))
        assert revived.recover() is True
        assert revived.consumed_seq == offset_mid
        assert revived.corpus_digest() == digest_mid
        for doc in docs[12:]:
            revived.append(doc)
        revived.drain()
        revived.flush()
        journal = revived.target.supervisor().journal
        assert [post.uid for post in journal] == \
            [d.doc_id for d in docs]
        assert revived.duplicate_applies() == 0

    def test_commit_interval_batches_commits(self, tmp_path):
        ingest = make_ingest(
            tmp_path,
            IngestConfig(reorder_window=0, commit_interval=5),
        )
        for doc in make_docs(12):
            ingest.append(doc)
        ingest.drain()
        # two interval commits (after 5 and 10) plus the final one
        assert ingest.commits == 3

    def test_unreadable_commit_raises(self, tmp_path):
        ingest = make_ingest(tmp_path)
        with open(ingest.commit_path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        with pytest.raises(IngestError):
            ingest.recover()

    def test_unsupported_commit_version_raises(self, tmp_path):
        ingest = make_ingest(tmp_path)
        with open(ingest.commit_path, "w", encoding="utf-8") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(IngestError):
            ingest.recover()

    def test_commit_is_a_single_atomic_file(self, tmp_path):
        ingest = make_ingest(tmp_path)
        for doc in make_docs(4):
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        # no temp-file litter next to the commit
        entries = sorted(os.listdir(tmp_path))
        assert entries == ["commit.json", "wal"]


class TestTargetValidation:
    def test_unsupervised_pipeline_rejected(self):
        bare = DiversificationPipeline(
            make_queries(), lam=60.0, stream_algorithm="stream_scan+",
            dedup_distance=None,
        )
        with pytest.raises(IngestError):
            IngestTarget.for_pipeline(bare)

    def test_config_validation(self):
        with pytest.raises(IngestError):
            IngestConfig(commit_interval=0)


class TestIntrospection:
    def test_introspect_is_json_safe_and_complete(self, tmp_path):
        ingest = make_ingest(tmp_path)
        for doc in make_docs(6):
            ingest.append(doc)
        ingest.drain()
        ingest.flush()
        snapshot = ingest.introspect()
        json.dumps(snapshot)  # JSON-safe
        assert snapshot["applied"] == 6
        assert snapshot["duplicate_applies"] == 0
        assert snapshot["wal"]["next_seq"] == 6
        assert snapshot["corpus_digest"] == ingest.corpus_digest()

    def test_corpus_digest_is_order_sensitive(self):
        from repro.core.post import Post

        posts = [
            Post(uid=0, value=1.0, labels=frozenset("a"), text="x"),
            Post(uid=1, value=2.0, labels=frozenset("b"), text="y"),
        ]
        assert corpus_digest(posts) != corpus_digest(posts[::-1])
        assert corpus_digest(posts) == corpus_digest(list(posts))
