"""The sound CNF -> set cover -> MQDP reduction, validated against DPLL."""

import random

import pytest

from repro.core.brute_force import exact_via_setcover
from repro.core.coverage import is_cover
from repro.errors import ReductionError
from repro.hardness.cnf import CNFFormula, random_cnf
from repro.hardness.sat import dpll_satisfiable
from repro.hardness.sound import (
    reduce_cnf_sound,
    setcover_to_mqdp,
)


class TestSetcoverEmbedding:
    def test_all_posts_at_time_zero(self):
        instance = setcover_to_mqdp([{"a"}, {"a", "b"}])
        assert all(post.value == 0.0 for post in instance.posts)

    def test_min_cover_equals_min_setcover(self):
        # family where the optimum is the two complementary sets
        instance = setcover_to_mqdp(
            [{"x", "y", "z", "w"}, {"x", "p"}, {"y", "z", "w", "q"},
             {"p", "q"}]
        )
        assert exact_via_setcover(instance).size == 2

    def test_empty_set_rejected(self):
        with pytest.raises(ReductionError):
            setcover_to_mqdp([set()])


class TestSoundReductionShape:
    def test_two_posts_per_variable(self):
        formula = CNFFormula.from_clauses([(1, -2)])
        reduction = reduce_cnf_sound(formula)
        assert len(reduction.instance) == 2 * formula.num_vars

    def test_budget_is_num_vars(self):
        formula = CNFFormula.from_clauses([(1, -2), (2,)])
        assert reduce_cnf_sound(formula).budget == 2

    def test_literal_sets_contain_their_clauses(self):
        formula = CNFFormula.from_clauses([(1, -2), (-1, 2)])
        reduction = reduce_cnf_sound(formula)
        by_literal = {
            literal: reduction.instance.post(uid)
            for uid, literal in reduction.uid_to_literal.items()
        }
        assert by_literal[1].labels == {"x1", "C1"}
        assert by_literal[-1].labels == {"x1", "C2"}
        assert by_literal[2].labels == {"x2", "C2"}
        assert by_literal[-2].labels == {"x2", "C1"}

    def test_empty_formula_rejected(self):
        with pytest.raises(ReductionError):
            reduce_cnf_sound(CNFFormula(num_vars=0, clauses=()))


class TestEquivalence:
    """Satisfiable <=> cover of size <= n, cross-checked against DPLL
    over a spread of random formulas on both sides of the phase
    transition."""

    @pytest.mark.parametrize("seed", range(20))
    def test_decision_agreement(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 5)
        num_clauses = rng.randint(1, 10)
        formula = random_cnf(rng, num_vars, num_clauses,
                             clause_size=min(3, num_vars))
        reduction = reduce_cnf_sound(formula)
        model = dpll_satisfiable(formula)
        optimum = exact_via_setcover(reduction.instance)
        assert (optimum.size <= reduction.budget) == (model is not None)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 5, 6, 7, 9, 10, 11])
    def test_certificates_roundtrip(self, seed):
        rng = random.Random(100 + seed)
        num_vars = rng.randint(1, 5)
        formula = random_cnf(rng, num_vars, rng.randint(1, 6),
                             clause_size=min(3, num_vars))
        model = dpll_satisfiable(formula)
        assert model is not None, "seeds are chosen satisfiable"
        reduction = reduce_cnf_sound(formula)
        # encode: assignment -> budget-sized cover
        cover = reduction.encode(model)
        assert len(cover) == reduction.budget
        assert is_cover(reduction.instance, cover)
        # decode: optimal cover -> satisfying assignment
        optimum = exact_via_setcover(reduction.instance)
        decoded = reduction.decode(optimum.posts)
        assert formula.evaluate(decoded)

    def test_encode_rejects_bad_assignment(self):
        formula = CNFFormula.from_clauses([(1,)])
        reduction = reduce_cnf_sound(formula)
        with pytest.raises(ReductionError):
            reduction.encode({1: False})
