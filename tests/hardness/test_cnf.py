"""CNF formula representation and DIMACS I/O."""

import random

import pytest

from repro.errors import ReductionError
from repro.hardness.cnf import CNFFormula, parse_dimacs, random_cnf, to_dimacs


class TestCNFFormula:
    def test_evaluate_satisfying(self):
        formula = CNFFormula.from_clauses([(1, -2), (2,)])
        assert formula.evaluate({1: True, 2: True})

    def test_evaluate_falsifying(self):
        formula = CNFFormula.from_clauses([(1,), (-1,)])
        assert not formula.evaluate({1: True})
        assert not formula.evaluate({1: False})

    def test_partial_assignment_unsatisfied_clause(self):
        formula = CNFFormula.from_clauses([(1, 2)])
        assert not formula.evaluate({})

    def test_empty_clause_rejected(self):
        with pytest.raises(ReductionError):
            CNFFormula.from_clauses([()])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ReductionError):
            CNFFormula(num_vars=1, clauses=((2,),))

    def test_zero_literal_rejected(self):
        with pytest.raises(ReductionError):
            CNFFormula(num_vars=1, clauses=((0,),))

    def test_variables_listed(self):
        formula = CNFFormula.from_clauses([(3, -1)])
        assert formula.variables() == [1, 3]

    def test_num_vars_inferred(self):
        formula = CNFFormula.from_clauses([(5,)])
        assert formula.num_vars == 5


class TestDimacs:
    SAMPLE = """c a comment
p cnf 3 2
1 -2 0
2 3 0
"""

    def test_parse(self):
        formula = parse_dimacs(self.SAMPLE)
        assert formula.num_vars == 3
        assert formula.clauses == ((1, -2), (2, 3))

    def test_roundtrip(self):
        formula = parse_dimacs(self.SAMPLE)
        assert parse_dimacs(to_dimacs(formula)) == formula

    def test_multiline_clause(self):
        text = "p cnf 2 1\n1\n-2 0\n"
        formula = parse_dimacs(text)
        assert formula.clauses == ((1, -2),)

    def test_missing_problem_line_rejected(self):
        with pytest.raises(ReductionError):
            parse_dimacs("1 2 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(ReductionError):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_malformed_problem_line(self):
        with pytest.raises(ReductionError):
            parse_dimacs("p sat 2 1\n1 0\n")


class TestRandomCNF:
    def test_shape(self):
        formula = random_cnf(random.Random(0), num_vars=5,
                             num_clauses=7, clause_size=3)
        assert formula.num_vars == 5
        assert formula.num_clauses == 7
        assert all(len(c) == 3 for c in formula.clauses)

    def test_no_duplicate_variables_within_clause(self):
        formula = random_cnf(random.Random(1), num_vars=4,
                             num_clauses=20, clause_size=3)
        for clause in formula.clauses:
            variables = [abs(lit) for lit in clause]
            assert len(set(variables)) == len(variables)

    def test_clause_size_exceeding_vars_rejected(self):
        with pytest.raises(ReductionError):
            random_cnf(random.Random(0), num_vars=2,
                       num_clauses=1, clause_size=3)

    def test_deterministic_under_seed(self):
        one = random_cnf(random.Random(7), 4, 6)
        two = random_cnf(random.Random(7), 4, 6)
        assert one == two
