"""The faithful Lemma 1 gadget — including the reproduction finding.

The forward direction of Lemma 1 holds and is tested (satisfying
assignment -> budget-sized cover).  The backward direction does NOT hold
as printed in the paper; ``test_lemma1_counterexample`` pins the concrete
failure so the finding stays documented and reproducible.
"""

import random

import pytest

from repro.core.brute_force import exact_via_setcover
from repro.core.coverage import is_cover
from repro.errors import ReductionError
from repro.hardness.cnf import CNFFormula, random_cnf
from repro.hardness.reduction import (
    assignment_to_cover,
    cover_to_assignment,
    reduce_cnf_to_mqdp,
)
from repro.hardness.sat import dpll_satisfiable


class TestConstructionShape:
    def test_post_count(self):
        # per variable: 4 anchors + 2(m+1) fillers + 2m clause posts
        formula = CNFFormula.from_clauses([(1, -2), (2,)])
        reduction = reduce_cnf_to_mqdp(formula)
        n, m = 2, 2
        assert len(reduction.instance) == n * (4 * m + 6)

    def test_budget_formula(self):
        formula = CNFFormula.from_clauses([(1, -2), (2,)])
        reduction = reduce_cnf_to_mqdp(formula)
        assert reduction.budget == 2 * (2 * 2 + 3)

    def test_at_most_two_labels_per_post(self):
        """The property Lemma 1 advertises: posts carry <= 2 labels."""
        formula = random_cnf(random.Random(0), 3, 4, clause_size=2)
        reduction = reduce_cnf_to_mqdp(formula)
        assert reduction.instance.max_labels_per_post() <= 2

    def test_lambda_is_one(self):
        formula = CNFFormula.from_clauses([(1,)])
        assert reduce_cnf_to_mqdp(formula).instance.lam == 1.0

    def test_clause_labels_on_correct_side(self):
        formula = CNFFormula.from_clauses([(1, -2)])
        reduction = reduce_cnf_to_mqdp(formula)
        positive = reduction.post_for(("clause", 1, "u", 1))
        assert "c1" in positive.labels
        negative = reduction.post_for(("clause", 2, "v", 1))
        assert "c1" in negative.labels
        # and not on the opposite rails
        assert "c1" not in reduction.post_for(("clause", 1, "v", 1)).labels
        assert "c1" not in reduction.post_for(("clause", 2, "u", 1)).labels

    def test_empty_formula_rejected(self):
        with pytest.raises(ReductionError):
            reduce_cnf_to_mqdp(CNFFormula(num_vars=0, clauses=()))


class TestForwardDirection:
    """Satisfiable formula => a budget-sized cover exists (this half of
    Lemma 1 is correct)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 5, 6, 7, 9])
    def test_assignment_yields_budget_cover(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 3)
        formula = random_cnf(rng, num_vars, rng.randint(1, 4),
                             clause_size=min(2, num_vars))
        model = dpll_satisfiable(formula)
        assert model is not None, "seeds are chosen satisfiable"
        reduction = reduce_cnf_to_mqdp(formula)
        cover = assignment_to_cover(reduction, model)
        assert len(cover) == reduction.budget
        assert is_cover(reduction.instance, cover)

    def test_unsatisfying_assignment_rejected(self):
        formula = CNFFormula.from_clauses([(1,)])
        reduction = reduce_cnf_to_mqdp(formula)
        with pytest.raises(ReductionError):
            assignment_to_cover(reduction, {1: False})

    def test_roundtrip_decodes_canonical_cover(self):
        formula = CNFFormula.from_clauses([(1, 2), (-1, 2)])
        model = dpll_satisfiable(formula)
        reduction = reduce_cnf_to_mqdp(formula)
        cover = assignment_to_cover(reduction, model)
        decoded = cover_to_assignment(reduction, cover)
        assert formula.evaluate(decoded)


class TestReproductionFinding:
    def test_lemma1_counterexample(self):
        """REPRODUCTION FINDING: the backward direction of Lemma 1 fails.

        For the unsatisfiable formula ``x1 and not-x1 and not-x1``
        (n = 1, m = 3), the gadget instance admits a cover of 8 posts —
        strictly below the budget n(2m+3) = 9 — because a post at unit
        spacing covers three rail slots, not the two the proof's counting
        assumes.  The decision procedure implied by Lemma 1 would wrongly
        declare this formula satisfiable.
        """
        formula = CNFFormula.from_clauses([(1,), (-1,), (-1,)])
        assert dpll_satisfiable(formula) is None
        reduction = reduce_cnf_to_mqdp(formula)
        optimum = exact_via_setcover(reduction.instance)
        assert is_cover(reduction.instance, optimum.posts)
        assert optimum.size == 8
        assert optimum.size < reduction.budget  # the lemma's claim breaks

    def test_rail_coverable_below_m_plus_one(self):
        """The root cause, in isolation: 2m+3 unit-spaced same-label posts
        need only ceil((2m+3)/3) picks, not m+1."""
        m = 3
        from repro.core.instance import Instance

        instance = Instance.from_specs(
            [(float(t), "u") for t in range(1, 2 * m + 4)], lam=1.0
        )
        optimum = exact_via_setcover(instance)
        assert optimum.size == 3  # ceil(9/3), below m+1 = 4
