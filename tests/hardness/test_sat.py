"""The DPLL solver, validated against exhaustive truth tables."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.cnf import CNFFormula, random_cnf
from repro.hardness.sat import dpll_satisfiable


def _truth_table_satisfiable(formula: CNFFormula) -> bool:
    for bits in itertools.product(
        (False, True), repeat=formula.num_vars
    ):
        assignment = {var: bits[var - 1]
                      for var in range(1, formula.num_vars + 1)}
        if formula.evaluate(assignment):
            return True
    return False


class TestDPLLBasics:
    def test_single_positive_unit(self):
        model = dpll_satisfiable(CNFFormula.from_clauses([(1,)]))
        assert model == {1: True}

    def test_contradiction(self):
        formula = CNFFormula.from_clauses([(1,), (-1,)])
        assert dpll_satisfiable(formula) is None

    def test_model_actually_satisfies(self):
        formula = CNFFormula.from_clauses([(1, 2), (-1, 2), (1, -2)])
        model = dpll_satisfiable(formula)
        assert model is not None
        assert formula.evaluate(model)

    def test_all_variables_assigned(self):
        formula = CNFFormula(num_vars=3, clauses=((1,),))
        model = dpll_satisfiable(formula)
        assert set(model) == {1, 2, 3}

    def test_pure_literal_case(self):
        formula = CNFFormula.from_clauses([(1, 2), (1, 3)])
        model = dpll_satisfiable(formula)
        assert formula.evaluate(model)

    def test_unsatisfiable_3cnf(self):
        # all eight clauses over three variables: unsatisfiable
        clauses = [
            tuple(s * v for s, v in zip(signs, (1, 2, 3)))
            for signs in itertools.product((1, -1), repeat=3)
        ]
        assert dpll_satisfiable(CNFFormula.from_clauses(clauses)) is None


class TestDPLLAgainstTruthTable:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=80)
    def test_agreement_on_random_formulas(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 6)
        num_clauses = rng.randint(1, 12)
        clause_size = rng.randint(1, min(3, num_vars))
        formula = random_cnf(rng, num_vars, num_clauses, clause_size)
        model = dpll_satisfiable(formula)
        expected = _truth_table_satisfiable(formula)
        assert (model is not None) == expected
        if model is not None:
            assert formula.evaluate(model)
