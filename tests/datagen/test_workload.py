"""Workload builders and calibration."""

import random

import pytest

from repro.datagen.workload import (
    PAPER_MATCH_RATES_PER_MIN,
    day_workload,
    instance_with_overlap,
    labelled_posts,
    match_rate_per_min,
    tweet_workload,
)
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery


class TestMatchRateInterpolation:
    def test_published_points_exact(self):
        for size, rate in PAPER_MATCH_RATES_PER_MIN.items():
            assert match_rate_per_min(size) == rate

    def test_interpolation_monotone(self):
        rates = [match_rate_per_min(k) for k in range(1, 30)]
        assert rates == sorted(rates)

    def test_extrapolation_below(self):
        assert match_rate_per_min(1) == pytest.approx(68.0)

    def test_extrapolation_above(self):
        assert match_rate_per_min(40) == pytest.approx(2360.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            match_rate_per_min(0)


class TestLabelledPosts:
    def test_overlap_rate_calibrated(self):
        rng = random.Random(0)
        labels = [f"q{i}" for i in range(5)]
        times = [float(i) for i in range(4000)]
        posts = labelled_posts(rng, labels, times, overlap=1.8)
        measured = sum(len(p.labels) for p in posts) / len(posts)
        assert measured == pytest.approx(1.8, abs=0.08)

    def test_single_label_universe(self):
        posts = labelled_posts(random.Random(0), ["only"], [1.0, 2.0],
                               overlap=1.0)
        assert all(p.labels == {"only"} for p in posts)

    def test_overlap_bounds_validated(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            labelled_posts(rng, ["a", "b"], [1.0], overlap=0.5)
        with pytest.raises(ValueError):
            labelled_posts(rng, ["a", "b"], [1.0], overlap=3.0)

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            labelled_posts(random.Random(0), [], [1.0])

    def test_popularity_skew_present(self):
        """Zipf weighting: the first label should be the most frequent."""
        rng = random.Random(1)
        labels = [f"q{i}" for i in range(8)]
        posts = labelled_posts(rng, labels, [float(i) for i in range(5000)],
                               overlap=1.2)
        counts = {label: 0 for label in labels}
        for post in posts:
            for label in post.labels:
                counts[label] += 1
        assert counts["q0"] > counts["q7"]


class TestInstanceBuilders:
    def test_instance_with_overlap_defaults_to_table2_rate(self):
        instance = instance_with_overlap(
            random.Random(0), num_labels=2, duration=600.0, lam=30.0
        )
        # 136/min for 10 minutes ~ 1360 posts
        assert 1100 <= len(instance) <= 1650
        assert instance.labels == {"q0", "q1"}

    def test_day_workload_scaled(self):
        instance = day_workload(
            random.Random(0), num_labels=2, lam=600.0, scale=0.01,
            duration=86_400.0,
        )
        # 136/min * 0.01 * 1440 min ~ 2000 posts, bursts add ~50%
        assert 1200 <= len(instance) <= 5000
        assert instance.lam == 600.0

    def test_tweet_workload_builds_instance(self):
        queries = [
            TopicQuery(label="golf", keywords=frozenset({"tiger"})),
            TopicQuery(label="nba", keywords=frozenset({"lebron"})),
        ]
        documents = [
            Document(0, 1.0, "tiger wins"),
            Document(1, 2.0, "lebron dunks"),
            Document(2, 3.0, "irrelevant chatter"),
        ]
        instance, posts = tweet_workload(
            random.Random(0), queries, documents, lam=5.0
        )
        assert len(instance) == 2
        assert instance.labels == {"golf", "nba"}

    def test_tweet_workload_no_matches_raises(self):
        queries = [TopicQuery(label="golf",
                              keywords=frozenset({"tiger"}))]
        documents = [Document(0, 1.0, "nothing here")]
        with pytest.raises(ValueError):
            tweet_workload(random.Random(0), queries, documents, lam=5.0)
