"""Data loaders and serialisers."""

import io

import pytest

from repro.core.instance import Instance
from repro.core.solution import Solution
from repro.core.post import make_posts
from repro.datagen.loaders import (
    documents_from_csv,
    instance_from_jsonl,
    instance_to_jsonl,
    posts_from_jsonl,
    solution_to_csv,
)
from repro.errors import InvalidInstanceError


class TestDocumentsFromCsv:
    CSV = "timestamp,text\n1.5,obama speech\n2.0,nba finals\n"

    def test_parse_string(self):
        docs = documents_from_csv(self.CSV)
        assert len(docs) == 2
        assert docs[0].timestamp == 1.5
        assert docs[0].text == "obama speech"
        assert [d.doc_id for d in docs] == [0, 1]

    def test_parse_file_object(self):
        docs = documents_from_csv(io.StringIO(self.CSV))
        assert len(docs) == 2

    def test_custom_field_names(self):
        csv_text = "ts,body,id\n3.0,hello,7\n"
        docs = documents_from_csv(
            csv_text, timestamp_field="ts", text_field="body",
            id_field="id",
        )
        assert docs[0].doc_id == 7
        assert docs[0].timestamp == 3.0

    def test_missing_column_raises(self):
        with pytest.raises(InvalidInstanceError):
            documents_from_csv("time,text\n1,hello\n")

    def test_bad_timestamp_raises(self):
        with pytest.raises(InvalidInstanceError):
            documents_from_csv("timestamp,text\nnoon,hello\n")


class TestPostsFromJsonl:
    def test_parse(self):
        lines = (
            '{"uid": 1, "value": 2.5, "labels": ["a", "b"]}\n'
            '{"uid": 2, "value": 3.0, "labels": ["a"], "text": "hi"}\n'
        )
        posts = posts_from_jsonl(lines)
        assert posts[0].labels == {"a", "b"}
        assert posts[1].text == "hi"

    def test_blank_lines_skipped(self):
        posts = posts_from_jsonl(
            '\n{"uid": 1, "value": 1.0, "labels": ["a"]}\n\n'
        )
        assert len(posts) == 1

    def test_invalid_json_raises(self):
        with pytest.raises(InvalidInstanceError):
            posts_from_jsonl("{not json}\n")

    def test_missing_fields_raise(self):
        with pytest.raises(InvalidInstanceError):
            posts_from_jsonl('{"uid": 1, "value": 1.0}\n')


class TestInstanceRoundTrip:
    def test_jsonl_round_trip(self):
        instance = Instance.from_specs(
            [(1.0, "ab", "first"), (2.0, "b", "second")], lam=1.5,
            labels="abc",
        )
        text = instance_to_jsonl(instance)
        loaded = instance_from_jsonl(text)
        assert loaded.lam == instance.lam
        assert loaded.labels == instance.labels
        assert loaded.posts == instance.posts
        assert [p.text for p in loaded.posts] == ["first", "second"]

    def test_missing_header_raises(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_jsonl(
                '{"uid": 1, "value": 1.0, "labels": ["a"]}\n'
            )


class TestSolutionToCsv:
    def test_header_and_rows(self):
        solution = Solution.from_posts(
            "scan", make_posts([(1.0, "ab", "hello world")])
        )
        text = solution_to_csv(solution)
        lines = text.strip().splitlines()
        assert lines[0] == "uid,value,labels,text"
        assert lines[1] == "0,1.0,a b,hello world"


class TestReadTextWithRetry:
    """Exponential backoff around file reads (injectable sleep/rng)."""

    @staticmethod
    def _flaky_opener(failures, path_content):
        state = {"left": failures}

        def opener(path, mode, encoding=None):
            if state["left"] > 0:
                state["left"] -= 1
                raise OSError("transient failure")
            return io.StringIO(path_content)

        return opener

    def test_succeeds_after_transient_failures(self):
        from repro.datagen.loaders import read_text_with_retry

        sleeps = []
        text = read_text_with_retry(
            "dummy.csv",
            attempts=4,
            base_delay=0.1,
            jitter=0.0,
            sleep=sleeps.append,
            opener=self._flaky_opener(2, "payload"),
        )
        assert text == "payload"
        # two failures -> two pauses, doubling: 0.1 then 0.2
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_backoff_is_capped_and_jittered(self):
        import random as _random

        from repro.datagen.loaders import read_text_with_retry
        from repro.errors import LoaderError

        sleeps = []
        with pytest.raises(LoaderError):
            read_text_with_retry(
                "dummy.csv",
                attempts=5,
                base_delay=1.0,
                max_delay=2.0,
                jitter=0.5,
                sleep=sleeps.append,
                rng=_random.Random(0),
                opener=self._flaky_opener(99, ""),
            )
        assert len(sleeps) == 4  # attempts - 1 pauses
        for pause, base in zip(sleeps, [1.0, 2.0, 2.0, 2.0]):
            assert base <= pause <= base * 1.5

    def test_exhaustion_raises_loader_error_with_cause(self):
        from repro.datagen.loaders import read_text_with_retry
        from repro.errors import LoaderError

        with pytest.raises(LoaderError) as excinfo:
            read_text_with_retry(
                "missing.csv",
                attempts=3,
                sleep=lambda _: None,
                opener=self._flaky_opener(99, ""),
            )
        assert "3 attempts" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_zero_attempts_rejected(self):
        from repro.datagen.loaders import read_text_with_retry

        with pytest.raises(ValueError):
            read_text_with_retry("x", attempts=0)

    def test_full_jitter_draws_uniform_below_ceiling(self):
        import random as _random

        from repro.datagen.loaders import read_text_with_retry
        from repro.errors import LoaderError

        sleeps = []
        with pytest.raises(LoaderError):
            read_text_with_retry(
                "dummy.csv",
                attempts=5,
                base_delay=1.0,
                max_delay=2.0,
                jitter="full",
                max_elapsed=None,
                sleep=sleeps.append,
                rng=_random.Random(0),
                opener=self._flaky_opener(99, ""),
            )
        assert len(sleeps) == 4
        # full jitter: uniformly in [0, ceiling], never above it
        for pause, ceiling in zip(sleeps, [1.0, 2.0, 2.0, 2.0]):
            assert 0.0 <= pause <= ceiling
        # decorrelated fleets: the draws differ across retries
        assert len(set(sleeps)) == len(sleeps)

    def test_full_jitter_is_the_default(self):
        import random as _random

        from repro.datagen.loaders import read_text_with_retry

        sleeps = []
        text = read_text_with_retry(
            "dummy.csv",
            attempts=3,
            base_delay=1.0,
            sleep=sleeps.append,
            rng=_random.Random(7),
            opener=self._flaky_opener(2, "ok"),
        )
        assert text == "ok"
        # smear semantics would sleep >= the full ceiling; full jitter
        # sleeps strictly under it for these draws
        assert all(p < c for p, c in zip(sleeps, [1.0, 2.0]))

    def test_max_elapsed_fails_fast(self):
        from repro.datagen.loaders import read_text_with_retry
        from repro.errors import LoaderError

        ticks = iter([0.0, 0.0, 3.0, 7.0, 11.0])
        sleeps = []
        with pytest.raises(LoaderError) as excinfo:
            read_text_with_retry(
                "dead-source.csv",
                attempts=10,
                base_delay=4.0,
                max_delay=4.0,
                jitter=0.0,
                max_elapsed=10.0,
                sleep=sleeps.append,
                clock=lambda: next(ticks),
                opener=self._flaky_opener(99, ""),
            )
        # the budget ran out long before the 10-attempt schedule did:
        # at elapsed 7.0 the next 4.0s pause would overshoot 10.0
        assert len(sleeps) == 2
        assert "max_elapsed" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_max_elapsed_none_disables_the_cap(self):
        from repro.datagen.loaders import read_text_with_retry
        from repro.errors import LoaderError

        sleeps = []
        with pytest.raises(LoaderError) as excinfo:
            read_text_with_retry(
                "x.csv",
                attempts=6,
                base_delay=100.0,
                jitter=0.0,
                max_elapsed=None,
                sleep=sleeps.append,
                opener=self._flaky_opener(99, ""),
            )
        assert len(sleeps) == 5  # the whole schedule ran
        assert "6 attempts" in str(excinfo.value)

    def test_invalid_jitter_and_max_elapsed_rejected(self):
        from repro.datagen.loaders import read_text_with_retry

        with pytest.raises(ValueError):
            read_text_with_retry("x", jitter="bogus")
        with pytest.raises(ValueError):
            read_text_with_retry("x", max_elapsed=-1.0)

    def test_non_oserror_propagates_immediately(self):
        from repro.datagen.loaders import read_text_with_retry

        def opener(path, mode, encoding=None):
            raise KeyError("not an I/O problem")

        calls = []
        with pytest.raises(KeyError):
            read_text_with_retry(
                "x", attempts=5, sleep=calls.append, opener=opener
            )
        assert calls == []  # no retries for non-I/O failures


class TestPathLikeSources:
    def test_documents_from_csv_path(self, tmp_path):
        target = tmp_path / "dump.csv"
        target.write_text("timestamp,text\n1.5,obama speech\n")
        docs = documents_from_csv(target)
        assert len(docs) == 1
        assert docs[0].timestamp == 1.5

    def test_instance_from_jsonl_path(self, tmp_path):
        instance = Instance.from_specs([(1.0, "a")], lam=2.0)
        target = tmp_path / "instance.jsonl"
        target.write_text(instance_to_jsonl(instance))
        loaded = instance_from_jsonl(target)
        assert loaded.posts == instance.posts

    def test_missing_path_raises_loader_error(self, tmp_path):
        from repro.errors import LoaderError

        quick = dict(attempts=2, sleep=lambda _: None)
        # go through the module-level loader, which uses default retry
        # settings; patch them down so the test is instant
        from repro.datagen import loaders as loaders_module

        original = loaders_module.read_text_with_retry

        def fast_retry(path, **kwargs):
            kwargs.update(quick)
            return original(path, **kwargs)

        loaders_module.read_text_with_retry = fast_retry
        try:
            with pytest.raises(LoaderError):
                documents_from_csv(tmp_path / "does-not-exist.csv")
        finally:
            loaders_module.read_text_with_retry = original
