"""Data loaders and serialisers."""

import io

import pytest

from repro.core.instance import Instance
from repro.core.solution import Solution
from repro.core.post import make_posts
from repro.datagen.loaders import (
    documents_from_csv,
    instance_from_jsonl,
    instance_to_jsonl,
    posts_from_jsonl,
    solution_to_csv,
)
from repro.errors import InvalidInstanceError


class TestDocumentsFromCsv:
    CSV = "timestamp,text\n1.5,obama speech\n2.0,nba finals\n"

    def test_parse_string(self):
        docs = documents_from_csv(self.CSV)
        assert len(docs) == 2
        assert docs[0].timestamp == 1.5
        assert docs[0].text == "obama speech"
        assert [d.doc_id for d in docs] == [0, 1]

    def test_parse_file_object(self):
        docs = documents_from_csv(io.StringIO(self.CSV))
        assert len(docs) == 2

    def test_custom_field_names(self):
        csv_text = "ts,body,id\n3.0,hello,7\n"
        docs = documents_from_csv(
            csv_text, timestamp_field="ts", text_field="body",
            id_field="id",
        )
        assert docs[0].doc_id == 7
        assert docs[0].timestamp == 3.0

    def test_missing_column_raises(self):
        with pytest.raises(InvalidInstanceError):
            documents_from_csv("time,text\n1,hello\n")

    def test_bad_timestamp_raises(self):
        with pytest.raises(InvalidInstanceError):
            documents_from_csv("timestamp,text\nnoon,hello\n")


class TestPostsFromJsonl:
    def test_parse(self):
        lines = (
            '{"uid": 1, "value": 2.5, "labels": ["a", "b"]}\n'
            '{"uid": 2, "value": 3.0, "labels": ["a"], "text": "hi"}\n'
        )
        posts = posts_from_jsonl(lines)
        assert posts[0].labels == {"a", "b"}
        assert posts[1].text == "hi"

    def test_blank_lines_skipped(self):
        posts = posts_from_jsonl(
            '\n{"uid": 1, "value": 1.0, "labels": ["a"]}\n\n'
        )
        assert len(posts) == 1

    def test_invalid_json_raises(self):
        with pytest.raises(InvalidInstanceError):
            posts_from_jsonl("{not json}\n")

    def test_missing_fields_raise(self):
        with pytest.raises(InvalidInstanceError):
            posts_from_jsonl('{"uid": 1, "value": 1.0}\n')


class TestInstanceRoundTrip:
    def test_jsonl_round_trip(self):
        instance = Instance.from_specs(
            [(1.0, "ab", "first"), (2.0, "b", "second")], lam=1.5,
            labels="abc",
        )
        text = instance_to_jsonl(instance)
        loaded = instance_from_jsonl(text)
        assert loaded.lam == instance.lam
        assert loaded.labels == instance.labels
        assert loaded.posts == instance.posts
        assert [p.text for p in loaded.posts] == ["first", "second"]

    def test_missing_header_raises(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_jsonl(
                '{"uid": 1, "value": 1.0, "labels": ["a"]}\n'
            )


class TestSolutionToCsv:
    def test_header_and_rows(self):
        solution = Solution.from_posts(
            "scan", make_posts([(1.0, "ab", "hello world")])
        )
        text = solution_to_csv(solution)
        lines = text.strip().splitlines()
        assert lines[0] == "uid,value,labels,text"
        assert lines[1] == "0,1.0,a b,hello world"
