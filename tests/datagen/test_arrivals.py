"""Arrival processes."""

import math
import random

import pytest

from repro.datagen.arrivals import (
    bursty_times,
    diurnal_rate,
    nonhomogeneous_poisson_times,
    poisson_times,
)


class TestPoisson:
    def test_sorted_within_bounds(self):
        times = poisson_times(random.Random(0), 2.0, 10.0, 20.0)
        assert times == sorted(times)
        assert all(10.0 <= t < 20.0 for t in times)

    def test_rate_approximately_honoured(self):
        times = poisson_times(random.Random(1), 5.0, 0.0, 1000.0)
        rate = len(times) / 1000.0
        assert rate == pytest.approx(5.0, rel=0.1)

    def test_zero_rate_empty(self):
        assert poisson_times(random.Random(0), 0.0, 0.0, 10.0) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_times(random.Random(0), -1.0, 0.0, 1.0)

    def test_empty_interval(self):
        assert poisson_times(random.Random(0), 1.0, 5.0, 5.0) == []

    def test_deterministic_under_seed(self):
        one = poisson_times(random.Random(9), 1.0, 0.0, 50.0)
        two = poisson_times(random.Random(9), 1.0, 0.0, 50.0)
        assert one == two


class TestNonhomogeneous:
    def test_thinning_respects_rate_shape(self):
        """Twice the rate in the second half -> roughly twice the events."""
        def rate(t):
            return 2.0 if t >= 500.0 else 1.0

        times = nonhomogeneous_poisson_times(
            random.Random(2), rate, rate_max=2.0, start=0.0, end=1000.0
        )
        first = sum(1 for t in times if t < 500.0)
        second = len(times) - first
        assert second / max(first, 1) == pytest.approx(2.0, rel=0.25)

    def test_rate_escape_detected(self):
        with pytest.raises(ValueError):
            nonhomogeneous_poisson_times(
                random.Random(0), lambda t: 5.0, rate_max=1.0,
                start=0.0, end=100.0,
            )

    def test_zero_max_rate_empty(self):
        assert nonhomogeneous_poisson_times(
            random.Random(0), lambda t: 0.0, 0.0, 0.0, 10.0
        ) == []


class TestDiurnal:
    def test_peak_at_requested_phase(self):
        rate = diurnal_rate(10.0, amplitude=0.5, period=100.0,
                            peak_at=0.25)
        assert rate(25.0) == pytest.approx(15.0)
        assert rate(75.0) == pytest.approx(5.0)

    def test_max_is_base_times_one_plus_amplitude(self):
        rate = diurnal_rate(10.0, amplitude=0.3)
        values = [rate(t) for t in range(0, 86_400, 600)]
        assert max(values) <= 13.0 + 1e-9

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            diurnal_rate(1.0, amplitude=1.5)


class TestBursty:
    def test_returns_times_and_epochs(self):
        times, epochs = bursty_times(
            random.Random(3), base_rate=0.5, start=0.0, end=1000.0,
            n_bursts=2,
        )
        assert times == sorted(times)
        assert len(epochs) == 2
        assert all(0.0 <= e <= 1000.0 for e in epochs)

    def test_bursts_raise_local_volume(self):
        rng = random.Random(4)
        times, epochs = bursty_times(
            rng, base_rate=0.2, start=0.0, end=5000.0,
            n_bursts=1, burst_rate=5.0, burst_decay=100.0,
        )
        epoch = epochs[0]
        inside = sum(1 for t in times if epoch <= t <= epoch + 100.0)
        before = sum(1 for t in times if epoch - 100.0 <= t < epoch)
        assert inside > before

    def test_no_bursts_is_plain_poisson_volume(self):
        times, epochs = bursty_times(
            random.Random(5), base_rate=1.0, start=0.0, end=1000.0,
            n_bursts=0,
        )
        assert epochs == []
        assert len(times) / 1000.0 == pytest.approx(1.0, rel=0.15)
