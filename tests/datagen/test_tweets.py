"""The tweet text generator."""

import random

import pytest

from repro.datagen.tweets import TweetGenerator
from repro.index.query import LabelMatcher
from repro.index.simhash import SimHashIndex
from repro.text.sentiment import sentiment_score
from repro.topics.lda_sim import SyntheticTopicModel


@pytest.fixture(scope="module")
def model():
    return SyntheticTopicModel.train(random.Random(42))


def _generator(model, seed=0, **kwargs):
    return TweetGenerator(model, random.Random(seed), **kwargs)


class TestGenerate:
    def test_documents_at_given_times(self, model):
        generator = _generator(model)
        docs = generator.generate([1.0, 2.0, 5.0], start_doc_id=10)
        assert [d.doc_id for d in docs] == [10, 11, 12]
        assert [d.timestamp for d in docs] == [1.0, 2.0, 5.0]
        assert all(d.text for d in docs)

    def test_deterministic_under_seed(self, model):
        one = _generator(model, seed=3).generate([1.0, 2.0, 3.0])
        two = _generator(model, seed=3).generate([1.0, 2.0, 3.0])
        assert [d.text for d in one] == [d.text for d in two]

    def test_topical_fraction_zero_matches_nothing(self, model):
        generator = _generator(model, topical_fraction=0.0,
                               duplicate_prob=0.0)
        docs = generator.generate([float(i) for i in range(100)])
        matcher = LabelMatcher(model.topics[:50])
        assert all(not matcher.match(d.text) for d in docs)

    def test_topical_fraction_one_mostly_matches(self, model):
        generator = _generator(model, topical_fraction=1.0,
                               duplicate_prob=0.0)
        docs = generator.generate([float(i) for i in range(200)])
        matcher = LabelMatcher(model.topics)  # all topics
        matched = sum(1 for d in docs if matcher.match(d.text))
        assert matched / len(docs) > 0.9

    def test_near_duplicates_produced(self, model):
        generator = _generator(model, duplicate_prob=0.5)
        docs = generator.generate([float(i) for i in range(300)])
        index = SimHashIndex(max_distance=12)
        kept, dropped = index.deduplicate(
            (d.doc_id, d.text) for d in docs
        )
        assert dropped, "expected some near-duplicates to be caught"

    def test_sentiment_bias_shifts_polarity(self, model):
        broads = sorted(model.by_broad())
        positive_bias = {broad: 1.0 for broad in broads}
        negative_bias = {broad: 0.0 for broad in broads}
        up = _generator(model, seed=5, topical_fraction=1.0,
                        duplicate_prob=0.0, sentiment_bias=positive_bias)
        down = _generator(model, seed=5, topical_fraction=1.0,
                          duplicate_prob=0.0, sentiment_bias=negative_bias)
        times = [float(i) for i in range(300)]
        up_mean = sum(
            sentiment_score(d.text) for d in up.generate(times)
        ) / 300
        down_mean = sum(
            sentiment_score(d.text) for d in down.generate(times)
        ) / 300
        assert up_mean > 0 > down_mean

    def test_word_budget_roughly_respected(self, model):
        generator = _generator(model, words_per_tweet=9,
                               duplicate_prob=0.0)
        docs = generator.generate([float(i) for i in range(50)])
        lengths = [len(d.text.split()) for d in docs]
        assert all(5 <= n <= 14 for n in lengths)
