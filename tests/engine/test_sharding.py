"""Shard planning and stitch repair."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.core.coverage import is_cover, uncovered_pairs
from repro.core.instance import Instance
from repro.core.scan import scan
from repro.engine.columnar import snapshot
from repro.engine.sharding import (
    _gap_cut_positions,
    plan_halo_shards,
    plan_shards,
    stitch_repair,
)

from .conftest import engine_instances


def gapped_instance() -> Instance:
    # three clusters separated by gaps wider than lam=1.0
    specs = [(v, "ab") for v in (0.0, 0.5, 1.0)]
    specs += [(v, "a") for v in (5.0, 5.5)]
    specs += [(v, "b") for v in (10.0, 10.2, 10.9)]
    return Instance.from_specs(specs, lam=1.0)


class TestGapCuts:
    def test_positions(self):
        values = np.asarray([0.0, 0.5, 1.0, 5.0, 5.5, 10.0])
        cuts = _gap_cut_positions(values, 1.0)
        assert cuts.tolist() == [3, 5]

    def test_exact_lambda_gap_is_not_a_cut(self):
        # a gap of exactly lambda still couples the sides
        values = np.asarray([0.0, 1.0, 2.0])
        assert _gap_cut_positions(values, 1.0).tolist() == []

    def test_short_arrays(self):
        assert _gap_cut_positions(np.empty(0), 1.0).tolist() == []
        assert _gap_cut_positions(np.asarray([3.0]), 1.0).tolist() == []


class TestPlanShards:
    def test_single_when_no_gaps(self):
        inst = Instance.from_specs([(0.0, "a"), (0.5, "a")], lam=1.0)
        plan = plan_shards(snapshot(inst), max_shards=4)
        assert plan.kind == "single"
        assert len(plan) == 1
        assert plan.gap_cuts_available == 0

    def test_gap_plan_partitions_instance(self):
        inst = gapped_instance()
        plan = plan_shards(snapshot(inst), max_shards=8)
        assert plan.kind == "gap"
        assert plan.shards[0].start == 0
        assert plan.shards[-1].end == len(inst)
        for left, right in zip(plan.shards, plan.shards[1:]):
            assert left.end == right.start
        for shard in plan.shards:
            assert not shard.has_halo

    def test_cut_points_really_are_gaps(self):
        inst = gapped_instance()
        snap = snapshot(inst)
        plan = plan_shards(snap, max_shards=8)
        for shard in plan.shards[1:]:
            k = shard.start
            assert snap.values[k] - snap.values[k - 1] > inst.lam

    def test_max_shards_respected(self):
        inst = gapped_instance()
        plan = plan_shards(snapshot(inst), max_shards=2)
        assert len(plan) == 2
        assert plan.gap_cuts_available == 2

    def test_max_shards_one_means_single(self):
        plan = plan_shards(snapshot(gapped_instance()), max_shards=1)
        assert plan.kind == "single"

    def test_cuts_balance_pair_cost_not_post_count(self):
        # label-heavy posts clustered left: 3 posts x 4 labels, then 6
        # posts x 1 label, gaps everywhere (every cut is safe).  Cost
        # prefix is [0, 4, 8, 12, 13, ..., 18]; the equal-cost halving
        # cut is at post 2 (|8 - 9| < |12 - 9|) — equal-count balancing
        # would have put it near post 4 and made the left shard carry
        # two thirds of the coverage pairs.
        specs = [(3.0 * k, "abcd") for k in range(3)]
        specs += [(3.0 * k, "a") for k in range(3, 9)]
        inst = Instance.from_specs(specs, lam=1.0)
        plan = plan_shards(snapshot(inst), max_shards=2)
        assert plan.kind == "gap"
        assert [s.start for s in plan.shards] == [0, 2]

    @given(engine_instances(force_gaps=True))
    def test_property_partition_and_gap_invariants(self, inst):
        snap = snapshot(inst)
        plan = plan_shards(snap, max_shards=6)
        assert plan.shards[0].start == 0
        assert plan.shards[-1].end == len(inst)
        for left, right in zip(plan.shards, plan.shards[1:]):
            assert left.end == right.start
            k = right.start
            assert snap.values[k] - snap.values[k - 1] > inst.lam


class TestPlanHaloShards:
    def test_cores_partition_posts(self):
        inst = gapped_instance()
        plan = plan_halo_shards(snapshot(inst), 3)
        assert plan.kind == "halo"
        assert plan.shards[0].start == 0
        assert plan.shards[-1].end == len(inst)
        for left, right in zip(plan.shards, plan.shards[1:]):
            assert left.end == right.start

    def test_halo_contains_lambda_neighbourhood(self):
        inst = gapped_instance()
        snap = snapshot(inst)
        plan = plan_halo_shards(snap, 3)
        lam = inst.lam
        for shard in plan.shards:
            lo_val = snap.values[shard.start] - lam
            hi_val = snap.values[shard.end - 1] + lam
            # every post within lambda of the core is inside the halo
            for k, v in enumerate(snap.values):
                if lo_val <= v <= hi_val:
                    assert shard.halo_start <= k < shard.halo_end

    def test_halo_bounds_balance_pair_cost(self):
        # same skew, gap-free: the halving boundary lands where the
        # cumulative pair cost crosses half, not at the post midpoint
        specs = [(0.4 * k, "abcd") for k in range(3)]
        specs += [(0.4 * k, "a") for k in range(3, 9)]
        inst = Instance.from_specs(specs, lam=1.0)
        plan = plan_halo_shards(snapshot(inst), 2)
        assert plan.kind == "halo"
        assert [s.start for s in plan.shards] == [0, 3]

    @given(engine_instances(gap_free=True, max_posts=40))
    def test_property_halo_invariants(self, inst):
        snap = snapshot(inst)
        plan = plan_halo_shards(snap, 4)
        lam = inst.lam
        for shard in plan.shards:
            assert shard.halo_start <= shard.start
            assert shard.halo_end >= shard.end
            if shard.halo_start > 0:
                # first excluded-left post is beyond lambda of the core
                assert (snap.values[shard.start]
                        - snap.values[shard.halo_start - 1]) > 0


class TestStitchRepair:
    def test_valid_cover_untouched(self):
        inst = gapped_instance()
        picks = list(scan(inst).posts)
        repaired, added = stitch_repair(inst, picks)
        assert added == 0
        assert sorted(p.uid for p in repaired) == \
            sorted(p.uid for p in picks)

    def test_seam_damage_repaired(self):
        inst = gapped_instance()
        picks = list(scan(inst).posts)
        # knock out a pick: simulated seam damage
        broken = picks[:-1]
        if not uncovered_pairs(inst, broken):
            pytest.skip("dropping the last pick left the cover intact")
        repaired, added = stitch_repair(inst, broken)
        assert added >= 1
        assert is_cover(inst, repaired)

    def test_empty_picks_fully_repaired(self):
        inst = gapped_instance()
        repaired, added = stitch_repair(inst, [])
        assert added >= 1
        assert is_cover(inst, repaired)

    @given(engine_instances(max_posts=30))
    def test_property_repair_always_yields_cover(self, inst):
        # start from half of scan's picks: arbitrary seam damage
        picks = list(scan(inst).posts)[::2]
        repaired, _added = stitch_repair(inst, picks)
        assert is_cover(inst, repaired)
