"""Sharded-solver parity: the engine's central contract.

With ``split="auto"`` every parallel solver must be pick-for-pick
identical to its serial counterpart — across gapped, gap-free,
exact-lambda-boundary and single-label-degenerate instances, and across
executors.  With ``split="halo"`` (forced sharding of gap-free
instances) the output must be a verifier-accepted cover.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.coverage import is_cover, verify_cover
from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.scan import scan, scan_plus
from repro.engine import (
    parallel_greedy_sc,
    parallel_scan,
    parallel_scan_plus,
)
from repro.observability import facade

from .conftest import engine_instances, exact_lambda_instance


def assert_scan_parity(inst, **kw):
    assert parallel_scan(inst, **kw).uids == scan(inst).uids


def assert_scan_plus_parity(inst, **kw):
    assert parallel_scan_plus(inst, **kw).uids == scan_plus(inst).uids


def assert_greedy_parity(inst, **kw):
    assert parallel_greedy_sc(inst, **kw).uids == greedy_sc(inst).uids


class TestScanParity:
    @given(engine_instances())
    def test_random_instances(self, inst):
        assert_scan_parity(inst)

    @given(engine_instances(force_gaps=True))
    def test_gapped_instances(self, inst):
        assert_scan_parity(inst, max_shards=6)

    @given(engine_instances(gap_free=True))
    def test_gap_free_worst_case_forces_speculation(self, inst):
        # no safe cuts inside any posting list: every extra shard is a
        # speculative chunk whose seam the merger must verify
        assert_scan_parity(inst, max_shards=5)

    def test_exact_lambda_boundaries(self):
        inst = exact_lambda_instance(lam=2.0, n=30)
        assert_scan_parity(inst, max_shards=4)

    def test_single_label_degenerate(self):
        inst = Instance.from_specs(
            [(float(i) * 0.25, "a") for i in range(50)], lam=1.0
        )
        assert_scan_parity(inst, max_shards=8)

    @given(engine_instances(max_posts=40))
    def test_label_orders(self, inst):
        for order in ("sorted", "longest_first", "shortest_first"):
            assert parallel_scan(inst, order).uids == \
                scan(inst, order).uids

    def test_thread_executor(self):
        inst = exact_lambda_instance(lam=1.0, n=40)
        assert_scan_parity(inst, executor="thread", workers=2)


class TestScanPlusParity:
    @given(engine_instances())
    def test_random_instances(self, inst):
        assert_scan_plus_parity(inst)

    @given(engine_instances(force_gaps=True))
    def test_gapped_instances(self, inst):
        assert_scan_plus_parity(inst, max_shards=6)

    @given(engine_instances(gap_free=True))
    def test_gap_free_runs_serial_under_auto_split(self, inst):
        # no gap cuts -> single shard -> serial path; still exact
        assert_scan_plus_parity(inst, max_shards=5)

    def test_exact_lambda_boundaries(self):
        inst = exact_lambda_instance(lam=2.0, n=30)
        assert_scan_plus_parity(inst, max_shards=4)

    @given(engine_instances(force_gaps=True, max_posts=40))
    def test_label_orders(self, inst):
        for order in ("sorted", "longest_first", "shortest_first"):
            assert parallel_scan_plus(inst, order, max_shards=4).uids \
                == scan_plus(inst, order).uids

    def test_thread_executor(self):
        inst = Instance.from_specs(
            [(float(i), "ab"[i % 2]) for i in range(0, 60, 3)], lam=1.0
        )
        assert_scan_plus_parity(inst, executor="thread", workers=2,
                                max_shards=6)


class TestGreedyScParity:
    @given(engine_instances(max_posts=40))
    def test_random_instances(self, inst):
        assert_greedy_parity(inst)

    @given(engine_instances(force_gaps=True, max_posts=40))
    def test_gapped_instances(self, inst):
        assert_greedy_parity(inst, max_shards=6)

    @given(engine_instances(gap_free=True, max_posts=40))
    def test_gap_free_parallel_family_build(self, inst):
        # single shard -> the per-label family fan-out path
        assert_greedy_parity(inst, max_shards=5)

    def test_exact_lambda_boundaries(self):
        inst = exact_lambda_instance(lam=2.0, n=30)
        assert_greedy_parity(inst, max_shards=4)

    def test_both_strategies(self):
        inst = exact_lambda_instance(lam=2.0, n=24)
        for strategy in ("rescan", "lazy_heap"):
            assert parallel_greedy_sc(
                inst, strategy=strategy, max_shards=4
            ).uids == greedy_sc(inst, strategy=strategy).uids

    def test_thread_executor(self):
        inst = Instance.from_specs(
            [(float(i), "ab"[i % 2]) for i in range(0, 60, 3)], lam=1.0
        )
        assert_greedy_parity(inst, executor="thread", workers=2,
                             max_shards=6)


class TestHaloSplit:
    """Forced sharding of gap-free instances: verifier-accepted covers."""

    @given(engine_instances(gap_free=True, max_posts=50))
    @settings(deadline=None)
    def test_scan_plus_halo_covers(self, inst):
        solution = parallel_scan_plus(inst, split="halo", max_shards=4)
        verify_cover(inst, solution.posts)

    @given(engine_instances(gap_free=True, max_posts=40))
    @settings(deadline=None)
    def test_greedy_halo_covers(self, inst):
        solution = parallel_greedy_sc(inst, split="halo", max_shards=4)
        verify_cover(inst, solution.posts)

    def test_halo_size_close_to_serial(self):
        inst = Instance.from_specs(
            [(float(i) * 0.4, "ab"[i % 2]) for i in range(80)], lam=1.0
        )
        serial = scan_plus(inst)
        halo = parallel_scan_plus(inst, split="halo", max_shards=4)
        assert is_cover(inst, halo.posts)
        # seams may add a few picks but never explode the cover
        assert halo.size <= serial.size + 2 * 4

    def test_unknown_split_raises(self):
        inst = Instance.from_specs([(0.0, "a")], lam=1.0)
        with pytest.raises(ValueError, match="unknown split"):
            parallel_scan_plus(inst, split="chunk")


class TestProcessExecutor:
    """One fixed instance per solver: process pools are expensive, the
    pickling/rebuild path just needs to be exercised end to end."""

    @pytest.fixture(scope="class")
    def inst(self):
        return Instance.from_specs(
            [(float(i) * 0.8 + (3.0 if i > 40 else 0.0),
              "abc"[i % 3] + ("a" if i % 5 == 0 and i % 3 else ""))
             for i in range(70)],
            lam=1.0,
        )

    def test_scan(self, inst):
        assert_scan_parity(inst, executor="process", workers=2,
                           max_shards=6)

    def test_scan_plus(self, inst):
        assert_scan_plus_parity(inst, executor="process", workers=2,
                                max_shards=6)

    def test_greedy_sc(self, inst):
        assert_greedy_parity(inst, executor="process", workers=2,
                             max_shards=6)


class TestEngineObservability:
    def test_scan_counters(self):
        inst = Instance.from_specs(
            [(float(i), "a") for i in range(0, 40, 2)], lam=1.0
        )
        with facade.session() as bundle:
            parallel_scan(inst, max_shards=4)
        counters = bundle.registry.counters()
        assert counters["engine.scan.tasks"] >= 1
        assert counters["engine.scan.gap_tasks"] >= 1
        assert bundle.registry.gauge("engine.workers").value == 1

    def test_halo_counters(self):
        inst = Instance.from_specs(
            [(float(i) * 0.4, "ab"[i % 2]) for i in range(60)], lam=1.0
        )
        with facade.session() as bundle:
            parallel_scan_plus(inst, split="halo", max_shards=4)
        counters = bundle.registry.counters()
        assert counters["engine.scan_plus.shards"] == 4
        assert counters["engine.scan_plus.halo_posts"] > 0
        assert "engine.scan_plus.stitch_repairs" in counters

    def test_family_fanout_counter(self):
        inst = Instance.from_specs(
            [(float(i) * 0.4, "ab"[i % 2]) for i in range(30)], lam=1.0
        )
        with facade.session() as bundle:
            parallel_greedy_sc(inst, max_shards=1)
        counters = bundle.registry.counters()
        assert counters["engine.greedy_sc.family_label_tasks"] == 2

    def test_results_identical_enabled_vs_disabled(self):
        inst = exact_lambda_instance(lam=2.0, n=30)
        plain = parallel_scan_plus(inst, max_shards=4)
        with facade.session():
            observed = parallel_scan_plus(inst, max_shards=4)
        assert plain.uids == observed.uids


class TestMakeParallelSolver:
    """The registry-compatible factory wraps the engines unchanged."""

    @pytest.fixture(scope="class")
    def inst(self):
        return exact_lambda_instance(lam=2.0, n=30)

    def test_solver_matches_direct_engine_call(self, inst):
        from repro.engine import make_parallel_solver

        solver = make_parallel_solver("scan", max_shards=4)
        assert solver(inst).uids == \
            parallel_scan(inst, max_shards=4).uids

    def test_extra_kwargs_pass_through(self, inst):
        from repro.engine import make_parallel_solver

        solver = make_parallel_solver(
            "greedy_sc", max_shards=4, split="halo", strategy="rescan")
        solution = solver(inst)
        assert solution.algorithm == "parallel_greedy_sc"
        assert is_cover(inst, solution.posts)

    def test_registered_and_served_by_name(self, inst):
        from repro.core.registry import register, solve, unregister
        from repro.engine import make_parallel_solver

        register("scan_factory_test_only",
                 make_parallel_solver("scan", executor="thread",
                                      workers=2))
        try:
            solution = solve("scan_factory_test_only", inst)
            assert solution.algorithm == "parallel_scan"
            assert solution.uids == scan(inst).uids
        finally:
            unregister("scan_factory_test_only")

    def test_unknown_kind_raises(self):
        from repro.engine import make_parallel_solver

        with pytest.raises(ValueError, match="scan"):
            make_parallel_solver("quantum")
