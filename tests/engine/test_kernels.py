"""Vectorised scan kernels: pick-for-pick parity with the scalar loop."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.scan import scan_label
from repro.engine.kernels import (
    first_uncovered,
    scan_label_kernel,
    scan_segment_kernel,
    scan_values_kernel,
)

from .conftest import exact_lambda_instance


def scalar_reference(values, lam):
    """Index-level transliteration of :func:`scan_label` (the arbiter)."""
    picks = []
    n = len(values)
    i = 0
    while i < n:
        left = values[i]
        j = i
        while j + 1 < n and values[j + 1] - left <= lam:
            j += 1
        picks.append(j)
        picked = values[j]
        i = j + 1
        while i < n and values[i] - picked <= lam:
            i += 1
    return picks


sorted_value_arrays = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=80,
).map(sorted)

lambdas = st.sampled_from([0.0, 0.25, 1.0, 3.0, 10.0, 100.0])


class TestScanValuesKernel:
    @given(sorted_value_arrays, lambdas)
    def test_parity_with_scalar_reference(self, raw, lam):
        values = np.asarray(raw, dtype=np.float64)
        assert scan_values_kernel(values, lam) == \
            scalar_reference(values, lam)

    @given(sorted_value_arrays, lambdas)
    def test_parity_with_scan_label(self, raw, lam):
        inst = Instance.from_specs([(v, "a") for v in raw], lam)
        plist = inst.posting("a")
        values = np.asarray([p.value for p in plist], dtype=np.float64)
        kernel_picks = [plist[i].uid
                        for i in scan_values_kernel(values, lam)]
        scalar_picks = [p.uid for p in scan_label(plist, lam)]
        assert kernel_picks == scalar_picks

    def test_exact_lambda_boundaries(self):
        inst = exact_lambda_instance(lam=2.0, n=24)
        values = np.asarray([p.value for p in inst.posts])
        assert scan_values_kernel(values, 2.0) == \
            scalar_reference(values, 2.0)

    def test_all_ties(self):
        values = np.zeros(10)
        assert scan_values_kernel(values, 0.0) == [9]
        assert scan_values_kernel(values, 1.0) == [9]

    def test_empty(self):
        assert scan_values_kernel(np.empty(0), 1.0) == []

    def test_one_ulp_spacing(self):
        # windows one ulp wide: the subtraction test must decide
        base = 1.0
        values = np.asarray([base, np.nextafter(base, 2.0),
                             np.nextafter(np.nextafter(base, 2.0), 2.0)])
        lam = values[1] - values[0]
        assert scan_values_kernel(values, lam) == \
            scalar_reference(values, lam)


class TestScanSegmentKernel:
    @given(sorted_value_arrays, lambdas)
    def test_full_segment_equals_whole_kernel(self, raw, lam):
        values = np.asarray(raw, dtype=np.float64)
        assert scan_segment_kernel(values, lam, 0, len(values)) == \
            scan_values_kernel(values, lam)

    @given(sorted_value_arrays, lambdas, st.integers(2, 5))
    def test_chained_segments_reproduce_serial(self, raw, lam, pieces):
        """The shard merger's chaining contract: run arbitrary chunks,
        chain via first_uncovered, accept only matching seams — the
        result equals the serial kernel pick-for-pick."""
        values = np.asarray(raw, dtype=np.float64)
        n = len(values)
        edges = sorted({round(k * n / pieces) for k in range(1, pieces)})
        edges = [0] + [e for e in edges if 0 < e < n] + [n]
        merged = []
        for start, boundary in zip(edges, edges[1:]):
            if merged:
                carry = values[merged[-1]]
                resume = first_uncovered(values, carry, lam)
            else:
                resume = 0
            if resume >= boundary:
                continue
            # speculative result is only valid if the seam matched;
            # otherwise re-run from the true resume point
            if resume == start:
                merged.extend(
                    scan_segment_kernel(values, lam, start, boundary)
                )
            else:
                merged.extend(
                    scan_segment_kernel(values, lam, resume, boundary)
                )
        assert merged == scan_values_kernel(values, lam)


class TestFirstUncovered:
    def test_basic(self):
        values = np.asarray([0.0, 1.0, 2.0, 3.5, 10.0])
        assert first_uncovered(values, 1.0, 1.0) == 3
        assert first_uncovered(values, 3.5, 1.0) == 4
        assert first_uncovered(values, 10.0, 1.0) == 5

    def test_lo_floor(self):
        values = np.asarray([0.0, 1.0, 2.0])
        assert first_uncovered(values, -100.0, 1.0, lo=2) == 2

    @given(sorted_value_arrays, lambdas,
           st.floats(min_value=-5.0, max_value=105.0,
                     allow_nan=False, allow_infinity=False))
    def test_matches_linear_scan(self, raw, lam, pick):
        values = np.asarray(raw, dtype=np.float64)
        idx = first_uncovered(values, pick, lam)
        expect = 0
        while expect < len(values) and values[expect] - pick <= lam:
            expect += 1
        assert idx == expect


class TestScanLabelKernel:
    def test_slice_offsets_are_global(self):
        values = np.asarray([0.0, 5.0, 10.0, 15.0, 20.0])
        picks = scan_label_kernel(values, 1.0, start=2)
        assert picks == [2, 3, 4]
