"""Executor and shared-memory lifecycle: warm pools, clean teardown.

The contract under test here is the one the scaling fix rests on:

* pooled executors keep ONE pool across ``run()`` calls (same worker
  PIDs observed twice) and release it fully on ``close()`` — no leaked
  processes, and the executor stays usable afterwards;
* shared-memory snapshot segments are unlinked on ``close()``, on
  publish failure, and when the source instance is garbage-collected;
* with shared memory forced off, the process path falls back to pickled
  payloads and still produces byte-identical covers.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np
import pytest

from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.scan import scan, scan_plus
from repro.engine import columnar
from repro.engine.columnar import (
    SharedSnapshot,
    payload_from_shm,
    posting_values_from_shm,
    shared_snapshot,
    shm_available,
    snapshot,
)
from repro.engine.executors import ProcessExecutor, ThreadExecutor
from repro.engine.parallel import (
    parallel_greedy_sc,
    parallel_scan,
    parallel_scan_plus,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable"
)


def worker_pid(_k):
    """Module-level: process pools must import the task fn."""
    return os.getpid()


def slow_pid(delay):
    time.sleep(delay)
    return os.getpid()


def boom(msg):
    raise ValueError(msg)


def make_instance(n=60, seed=3):
    rng = np.random.default_rng(seed)
    specs = []
    value = 0.0
    alphabet = "abcd"
    for k in range(n):
        value += float(rng.uniform(0.05, 0.6))
        if k % 17 == 0:
            value += 5.0  # gaps wider than lambda: gap shards exist
        count = int(rng.integers(1, 4))
        labels = "".join(
            sorted(rng.choice(list(alphabet), size=count, replace=False))
        )
        specs.append((value, labels))
    return Instance.from_specs(specs, lam=1.0)


class TestPoolReuse:
    def test_thread_pool_object_survives_runs(self):
        ex = ThreadExecutor(2)
        assert not ex.alive
        ex.run(worker_pid, [(k,) for k in range(4)])
        assert ex.alive
        first_pool = ex._pool
        ex.run(worker_pid, [(k,) for k in range(4)])
        assert ex._pool is first_pool
        ex.close()
        assert not ex.alive

    def test_process_pool_same_pids_across_runs(self):
        with ProcessExecutor(2) as ex:
            # slow tasks: both workers must serve each run, so the PID
            # sets overlap iff the pool survived between runs (instant
            # tasks can all land on one worker and alias a rebuild)
            first = set(ex.run(slow_pid, [(0.02,) for _ in range(8)]))
            pool = ex._pool
            second = set(ex.run(slow_pid, [(0.02,) for _ in range(8)]))
            assert ex._pool is pool
            assert first and first & second  # the pool was reused
            assert all(pid != os.getpid() for pid in first)

    def test_close_terminates_worker_processes(self):
        ex = ProcessExecutor(2)
        pids = set(ex.run(worker_pid, [(k,) for k in range(8)]))
        ex.close()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the worker is gone

    def test_executor_usable_after_close(self):
        ex = ProcessExecutor(2)
        assert ex.run(worker_pid, [(k,) for k in range(4)])
        ex.close()
        # close() is a release, not a poison pill
        assert len(ex.run(worker_pid, [(k,) for k in range(4)])) == 4
        ex.close()
        ex.close()  # idempotent

    def test_context_manager_closes(self):
        with ThreadExecutor(2) as ex:
            ex.run(worker_pid, [(k,) for k in range(4)])
            assert ex.alive
        assert not ex.alive

    def test_single_task_never_builds_a_pool(self):
        ex = ProcessExecutor(2)
        assert ex.run(worker_pid, [(0,)]) == [os.getpid()]
        assert not ex.alive
        ex.close()


class TestFailFast:
    @pytest.mark.parametrize("executor_cls",
                             [ThreadExecutor, ProcessExecutor])
    def test_original_exception_propagates(self, executor_cls):
        # the worker's own ValueError must surface (never a
        # CancelledError from the fail-fast sweep); which of the two
        # concurrent failures wins is scheduling-dependent
        with executor_cls(2) as ex:
            with pytest.raises(ValueError, match=r"shard \d failed"):
                ex.run(boom, [("shard 0 failed",), ("shard 1 failed",)])

    def test_failure_cancels_queued_tasks(self):
        # 1 worker + an immediate failure: the queued slow tasks must be
        # cancelled, so the call returns far sooner than running them all.
        with ProcessExecutor(2) as ex:
            ex.run(worker_pid, [(k,) for k in range(4)])  # warm the pool
            started = time.perf_counter()
            with pytest.raises(ValueError):
                ex.run(boom, [("fail",)] + [("later",)] * 30)
            elapsed = time.perf_counter() - started
        # 31 tasks x anything measurable would dwarf this bound if they
        # all ran; generous enough for a loaded CI box
        assert elapsed < 10.0

    def test_pool_survives_task_failure(self):
        with ProcessExecutor(2) as ex:
            before = set(ex.run(worker_pid, [(k,) for k in range(8)]))
            with pytest.raises(ValueError):
                ex.run(boom, [("fail",), ("fail2",)])
            after = set(ex.run(worker_pid, [(k,) for k in range(8)]))
            assert before & after  # same pool, not rebuilt

    def test_unpicklable_fn_rejected_before_the_pool(self):
        # a work item that fails to pickle on the queue-feeder thread
        # leaves ProcessPoolExecutor.shutdown hanging forever on CPython
        # 3.11, so the executor must refuse lambdas/local functions up
        # front — and the refusal must not poison the pool
        with ProcessExecutor(2) as ex:
            with pytest.raises(TypeError, match="picklable module-level"):
                ex.run(lambda k: k, [(0,), (1,)])
            assert not ex.alive  # rejected before any pool was built
            assert len(ex.run(worker_pid, [(k,) for k in range(4)])) == 4
        # close() after the rejection returns promptly (no deadlock) —
        # reaching this line is the assertion


@needs_shm
class TestSharedMemorySegments:
    def test_publish_roundtrip_matches_payload(self):
        inst = make_instance()
        snap = snapshot(inst)
        shared = SharedSnapshot.publish(snap)
        try:
            direct = snap.payload(5, 25)
            via_shm = payload_from_shm(shared.name, 5, 25)
            assert via_shm.lam == direct.lam
            assert via_shm.labels == direct.labels
            assert np.array_equal(via_shm.values, direct.values)
            assert np.array_equal(via_shm.uids, direct.uids)
            assert via_shm.label_sets == direct.label_sets
            for idx, label in enumerate(snap.labels):
                values, lam = posting_values_from_shm(shared.name, idx)
                assert lam == snap.lam
                assert np.array_equal(values, snap.posting_values[label])
        finally:
            shared.close()

    def test_close_unlinks_segment(self):
        shared = SharedSnapshot.publish(snapshot(make_instance()))
        path = f"/dev/shm/{shared.name}"
        if not os.path.exists(path):
            pytest.skip("platform does not expose /dev/shm paths")
        shared.close()
        assert not os.path.exists(path)
        shared.close()  # idempotent

    def test_publish_failure_unlinks_segment(self, monkeypatch):
        created = []
        original = columnar._write_segment

        def failing(shm, header_bytes, arrays, offsets):
            created.append(shm.name)
            original(shm, header_bytes, arrays, offsets)
            raise RuntimeError("injected publish failure")

        monkeypatch.setattr(columnar, "_write_segment", failing)
        with pytest.raises(RuntimeError, match="injected"):
            SharedSnapshot.publish(snapshot(make_instance()))
        assert len(created) == 1
        assert not os.path.exists(f"/dev/shm/{created[0]}")

    def test_shared_snapshot_cached_and_finalized(self):
        inst = make_instance()
        shared = shared_snapshot(inst)
        assert shared is not None
        assert shared_snapshot(inst) is shared
        name = shared.name
        path = f"/dev/shm/{name}"
        if not os.path.exists(path):
            pytest.skip("platform does not expose /dev/shm paths")
        del shared, inst
        gc.collect()
        assert not os.path.exists(path)  # finalizer unlinked it

    def test_publish_failure_reports_unavailable(self, monkeypatch):
        inst = make_instance()

        def failing(snap):
            raise OSError("no shm")

        monkeypatch.setattr(
            columnar.SharedSnapshot, "publish", staticmethod(failing)
        )
        assert shared_snapshot(inst) is None


class TestFallbackParity:
    """With shared memory forced off, the pickle path must produce the
    same covers the serial baseline does."""

    @pytest.fixture
    def no_shm(self, monkeypatch):
        monkeypatch.setattr(columnar, "_SHM_PROBE", False)
        assert not shm_available()

    def test_fallback_covers_match_serial(self, no_shm):
        inst = make_instance(n=80, seed=11)
        with ProcessExecutor(2) as ex:
            assert shared_snapshot(inst) is None
            got = parallel_greedy_sc(inst, executor=ex)
            assert [p.uid for p in got.posts] == \
                [p.uid for p in greedy_sc(inst).posts]
            got = parallel_scan_plus(inst, executor=ex)
            assert [p.uid for p in got.posts] == \
                [p.uid for p in scan_plus(inst).posts]
            got = parallel_scan(inst, executor=ex)
            assert [p.uid for p in got.posts] == \
                [p.uid for p in scan(inst).posts]

    @needs_shm
    def test_shm_and_fallback_agree(self, monkeypatch):
        inst = make_instance(n=80, seed=13)
        with ProcessExecutor(2) as ex:
            via_shm = parallel_greedy_sc(inst, executor=ex)
            monkeypatch.setattr(columnar, "_SHM_PROBE", False)
            via_pickle = parallel_greedy_sc(inst, executor=ex)
        assert [p.uid for p in via_shm.posts] == \
            [p.uid for p in via_pickle.posts]
