"""Executor contract: ordered results across serial/thread/process."""

from __future__ import annotations

import os

import pytest

from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
    default_workers,
    get_executor,
)


def square_plus(x, y):
    """Module-level on purpose: process pools must import the task fn."""
    return x * x + y


class TestGetExecutor:
    def test_names_resolve(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread", 2), ThreadExecutor)
        assert isinstance(get_executor("process", 2), ProcessExecutor)

    def test_instance_passes_through(self):
        ex = SerialExecutor()
        assert get_executor(ex) is ex

    def test_workers_recorded(self):
        assert get_executor("thread", 3).workers == 3
        assert get_executor("process", 5).workers == 5

    def test_default_workers_positive(self):
        assert default_workers() >= 1
        assert get_executor("thread").workers >= 1

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("gpu")

    def test_default_workers_prefers_affinity(self, monkeypatch):
        # a cgroup/taskset mask smaller than the machine must win over
        # os.cpu_count() — the surplus workers only contend
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 2, 5}
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_workers() == 3

    def test_default_workers_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert default_workers() == 6

    def test_default_workers_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1

    def test_abstract_run_raises(self):
        with pytest.raises(NotImplementedError):
            ShardExecutor().run(square_plus, [(1, 2)])


TASKS = [(x, y) for x in range(7) for y in range(3)]
EXPECTED = [x * x + y for x, y in TASKS]


class TestRunContract:
    @pytest.mark.parametrize("spec", ["serial", "thread", "process"])
    def test_results_in_task_order(self, spec):
        ex = get_executor(spec, 2)
        assert ex.run(square_plus, TASKS) == EXPECTED

    @pytest.mark.parametrize("spec", ["serial", "thread", "process"])
    def test_empty_and_singleton(self, spec):
        ex = get_executor(spec, 2)
        assert ex.run(square_plus, []) == []
        assert ex.run(square_plus, [(3, 1)]) == [10]

    def test_single_worker_degrades_to_serial_loop(self):
        # workers=1 must not spin up a pool (observable as: still correct)
        assert ThreadExecutor(1).run(square_plus, TASKS) == EXPECTED
        assert ProcessExecutor(1).run(square_plus, TASKS) == EXPECTED
