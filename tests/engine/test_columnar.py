"""Columnar snapshots: array fidelity, caching, payload round-trips."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given

from repro.core.instance import Instance
from repro.engine import columnar
from repro.engine.columnar import ColumnarInstance, snapshot

from .conftest import engine_instances


@pytest.fixture
def instance() -> Instance:
    return Instance.from_specs(
        [(0.0, "a"), (1.0, "ab"), (2.5, "b"), (4.0, "ab"), (5.0, "a"),
         (9.0, "b")],
        lam=1.5,
    )


class TestColumnarInstance:
    def test_values_and_uids_aligned(self, instance):
        snap = ColumnarInstance(instance)
        assert len(snap) == len(instance)
        for k, post in enumerate(instance.posts):
            assert snap.values[k] == post.value
            assert snap.uids[k] == post.uid

    def test_values_ascending(self, instance):
        snap = ColumnarInstance(instance)
        assert np.all(np.diff(snap.values) >= 0)

    def test_labels_sorted(self, instance):
        snap = ColumnarInstance(instance)
        assert snap.labels == tuple(sorted(instance.labels))

    def test_posting_indices_match_posting_lists(self, instance):
        snap = ColumnarInstance(instance)
        for label in instance.labels:
            plist = instance.posting(label)
            idx = snap.posting_indices[label]
            assert [instance.posts[int(k)].uid for k in idx] == \
                [p.uid for p in plist]
            assert np.array_equal(
                snap.posting_values[label],
                np.asarray([p.value for p in plist]),
            )

    def test_label_sets_roundtrip(self, instance):
        snap = ColumnarInstance(instance)
        for k, post in enumerate(instance.posts):
            decoded = frozenset(snap.labels[i] for i in snap.label_sets[k])
            assert decoded == post.labels

    def test_pair_counts_match_label_cardinality(self, instance):
        snap = ColumnarInstance(instance)
        assert snap.pair_counts.tolist() == \
            [len(p.labels) for p in instance.posts]
        assert int(snap.pair_counts.sum()) == sum(
            len(snap.posting_indices[a]) for a in snap.labels
        )

    @given(engine_instances())
    def test_property_posting_fidelity(self, inst):
        snap = ColumnarInstance(inst)
        for label in inst.labels:
            plist = inst.posting(label)
            idx = snap.posting_indices[label]
            assert len(idx) == len(plist)
            assert np.all(np.diff(idx) > 0)  # global order, unique


class TestSnapshotCache:
    def test_snapshot_cached_per_instance(self, instance):
        assert snapshot(instance) is snapshot(instance)

    def test_distinct_instances_distinct_snapshots(self, instance):
        other = Instance.from_specs([(0.0, "a")], lam=1.0)
        assert snapshot(instance) is not snapshot(other)

    def test_concurrent_snapshot_builds_exactly_once(self, monkeypatch):
        # hammer the cache: many threads released together must agree on
        # one snapshot object and build it exactly once (the unlocked
        # WeakKeyDictionary used to race duplicate builds here)
        inst = Instance.from_specs(
            [(float(k), "ab"[k % 2]) for k in range(50)], lam=1.5
        )
        builds = []
        real = columnar.ColumnarInstance

        class Counting(real):
            def __init__(self, instance):
                builds.append(threading.get_ident())
                super().__init__(instance)

        monkeypatch.setattr(columnar, "ColumnarInstance", Counting)
        threads = 16
        barrier = threading.Barrier(threads)
        results = [None] * threads

        def hammer(slot):
            barrier.wait()
            results[slot] = snapshot(inst)

        workers = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert len(builds) == 1
        assert all(r is results[0] for r in results)
        assert results[0] is not None


class TestShardPayload:
    def test_full_slice_rebuilds_instance(self, instance):
        snap = snapshot(instance)
        sub = snap.payload(0, len(snap)).to_instance()
        assert [p.uid for p in sub.posts] == \
            [p.uid for p in instance.posts]
        assert sub.lam == instance.lam
        assert sub.labels == instance.labels

    def test_partial_slice_keeps_parent_label_universe(self, instance):
        snap = snapshot(instance)
        sub = snap.payload(0, 2).to_instance()
        # posts 0..1 only use labels a/b, but the universe is declared
        assert sub.labels == instance.labels
        assert len(sub) == 2

    def test_payload_pickle_roundtrip(self, instance):
        snap = snapshot(instance)
        payload = snap.payload(1, 4)
        clone = pickle.loads(pickle.dumps(payload))
        assert clone.lam == payload.lam
        assert clone.labels == payload.labels
        assert np.array_equal(clone.values, payload.values)
        assert np.array_equal(clone.uids, payload.uids)
        assert clone.label_sets == payload.label_sets
        rebuilt = clone.to_instance()
        assert [p.uid for p in rebuilt.posts] == \
            [int(u) for u in payload.uids]

    @given(engine_instances(max_posts=30))
    def test_property_payload_posts_match_slice(self, inst):
        snap = snapshot(inst)
        n = len(snap)
        mid = n // 2
        sub = snap.payload(0, mid).to_instance()
        assert [p.uid for p in sub.posts] == \
            [p.uid for p in inst.posts[:mid]]
        for post, original in zip(sub.posts, inst.posts[:mid]):
            assert post.labels == original.labels
