"""Strategies and helpers shared by the engine test suite."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.post import Post

LABELS = "abcdef"


@st.composite
def engine_instances(
    draw,
    max_posts: int = 60,
    max_labels: int = 4,
    force_gaps: bool = False,
    gap_free: bool = False,
):
    """Random instances sized for sharding: more posts than the exact
    solvers can take, with optional forced gaps (shardable) or forced
    gap-freeness (the halo worst case)."""
    n_labels = draw(st.integers(min_value=1, max_value=max_labels))
    labels = LABELS[:n_labels]
    n_posts = draw(st.integers(min_value=1, max_value=max_posts))
    lam = draw(st.sampled_from([0.5, 1.0, 2.0, 5.0]))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32)))

    values = []
    v = 0.0
    for i in range(n_posts):
        if gap_free:
            # steps never exceed lambda: no safe cut point exists
            step = rng.uniform(0.0, lam * 0.9)
        elif force_gaps and i and i % 7 == 0:
            step = lam * (1.5 + rng.random())
        else:
            step = rng.uniform(0.0, lam * 2.0)
        v += step
        values.append(v)

    posts = []
    for uid, value in enumerate(values):
        k = rng.randint(1, n_labels)
        chosen = rng.sample(list(labels), k)
        posts.append(Post(uid=uid, value=value, labels=frozenset(chosen)))
    return Instance(posts, lam)


def exact_lambda_instance(lam: float = 2.0, n: int = 24) -> Instance:
    """Posts spaced *exactly* lambda apart — every window boundary is a
    tie the float discipline must resolve identically everywhere."""
    specs = [(i * lam, "ab"[i % 2] + ("a" if i % 3 == 0 else ""))
             for i in range(n)]
    return Instance.from_specs(specs, lam)
