"""The engine="auto" density probe and selector."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.engine import auto
from repro.engine.auto import choose_engine, probe_pair_count
from repro.observability import facade

from .conftest import engine_instances


def brute_force_pairs(instance: Instance) -> int:
    """O(n^2) reference: within-lambda same-label ordered pairs,
    both directions, self-pairs included."""
    total = 0
    for label in instance.labels:
        posts = list(instance.posting(label))
        for a in posts:
            for b in posts:
                if abs(a.value - b.value) <= instance.lam:
                    total += 1
    return total


class TestProbePairCount:
    def test_small_example(self):
        inst = Instance.from_specs(
            [(0.0, "a"), (1.0, "a"), (5.0, "a")], lam=1.0
        )
        # pairs: (0,0),(0,1),(1,0),(1,1),(5,5) -> 5
        assert probe_pair_count(inst) == 5

    @given(engine_instances(max_posts=25))
    def test_property_matches_brute_force(self, inst):
        assert probe_pair_count(inst) == brute_force_pairs(inst)


class TestChooseEngine:
    def test_sparse_instance_selects_python(self):
        inst = Instance.from_specs(
            [(float(i * 10), "a") for i in range(5)], lam=1.0
        )
        assert choose_engine(inst) == "python"

    def test_threshold_flips_choice(self, monkeypatch):
        inst = Instance.from_specs(
            [(0.0, "a"), (0.5, "a"), (1.0, "a")], lam=1.0
        )
        monkeypatch.setattr(auto, "AUTO_PAIR_THRESHOLD", 1)
        assert choose_engine(inst) == "numpy"
        monkeypatch.setattr(auto, "AUTO_PAIR_THRESHOLD", 10**9)
        assert choose_engine(inst) == "python"

    def test_decision_recorded_as_counters(self):
        inst = Instance.from_specs(
            [(0.0, "a"), (1.0, "ab"), (2.0, "b")], lam=1.0
        )
        with facade.session() as bundle:
            engine = choose_engine(inst)
        counters = bundle.registry.counters()
        assert counters[f"engine.auto.{engine}_selected"] == 1
        assert bundle.registry.gauge("engine.auto.probe_pairs").value == \
            probe_pair_count(inst)


class TestGreedyScAutoDefault:
    def test_default_engine_is_auto(self):
        import inspect

        sig = inspect.signature(greedy_sc)
        assert sig.parameters["engine"].default == "auto"

    @given(engine_instances(max_posts=30))
    def test_auto_matches_both_engines(self, inst):
        auto_picks = greedy_sc(inst, engine="auto").uids
        assert auto_picks == greedy_sc(inst, engine="python").uids
        assert auto_picks == greedy_sc(inst, engine="numpy").uids

    def test_unknown_engine_still_raises(self):
        inst = Instance.from_specs([(0.0, "a")], lam=1.0)
        with pytest.raises(ValueError, match="unknown engine"):
            greedy_sc(inst, engine="rust")
