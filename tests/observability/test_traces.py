"""The durable trace pipeline: sampling, buffering, JSONL rotation."""

from __future__ import annotations

import json

import pytest

from repro.observability.tracing import Tracer
from repro.observability.traces import (
    SamplingPolicy,
    TraceBuffer,
    TracePipeline,
    TraceSink,
    head_sample,
)


class TestHeadSample:
    def test_deterministic_per_trace_id(self):
        trace_id = "00ab" * 8
        assert head_sample(trace_id, 0.5) == head_sample(trace_id, 0.5)

    def test_rate_bounds(self):
        assert head_sample("ff" * 16, 1.0) is True
        assert head_sample("00" * 16, 0.0) is False

    def test_rate_orders_decisions(self):
        # a trace kept at rate r is kept at every rate above r
        trace_id = "40" * 16  # draw = 0.25...
        assert head_sample(trace_id, 0.3) is True
        assert head_sample(trace_id, 0.2) is False

    def test_junk_trace_ids_default_to_kept(self):
        assert head_sample("not-hex!", 0.5) is True


class TestSamplingPolicy:
    def test_error_statuses_always_keep(self):
        policy = SamplingPolicy(rate=0.0)
        assert policy.decide("00" * 16, "error", 0.001) == "status"
        assert policy.decide("00" * 16, "degraded", 0.001) == "status"
        assert policy.decide("00" * 16, "shed", 0.001) == "status"

    def test_slow_requests_always_keep(self):
        policy = SamplingPolicy(rate=0.0, slow_threshold_s=0.5)
        assert policy.decide("00" * 16, "ok", 0.6) == "slow"
        assert policy.decide("00" * 16, "ok", 0.4) is None

    def test_probabilistic_keep(self):
        policy = SamplingPolicy(rate=1.0)
        assert policy.decide("00" * 16, "ok", 0.001) == "sampled"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(slow_threshold_s=0.0)


class TestTraceBuffer:
    def test_bounded_with_dropped_counter(self):
        buffer = TraceBuffer(capacity=3)
        for index in range(5):
            buffer.append({"trace_id": str(index)})
        assert len(buffer) == 3
        assert buffer.kept == 5
        assert buffer.dropped == 2
        assert [r["trace_id"] for r in buffer.records()] == \
            ["2", "3", "4"]


class TestTraceSink:
    def test_write_and_read_back(self, tmp_path):
        sink = TraceSink(str(tmp_path / "traces.jsonl"))
        sink.write({"trace_id": "a"})
        sink.write({"trace_id": "b"})
        assert [r["trace_id"] for r in sink.read_records()] == ["a", "b"]
        sink.close()

    def test_rotation_is_size_bounded(self, tmp_path):
        sink = TraceSink(
            str(tmp_path / "traces.jsonl"),
            max_bytes=1024, max_segments=2,
        )
        record = {"trace_id": "x" * 200}
        for _ in range(20):
            sink.write(record)
        assert sink.rotations >= 2
        segments = sink.segments()
        assert len(segments) <= 3  # active + 2 rotated
        # the oldest data was deleted, the newest survives
        assert sink.read_records()
        sink.close()

    def test_segment_files_are_valid_jsonl(self, tmp_path):
        sink = TraceSink(
            str(tmp_path / "traces.jsonl"), max_bytes=1024
        )
        for index in range(30):
            sink.write({"trace_id": f"t{index}", "pad": "y" * 100})
        for segment in sink.segments():
            with open(segment, "r", encoding="utf-8") as handle:
                for line in handle:
                    json.loads(line)
        sink.close()

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TraceSink(str(tmp_path / "t.jsonl"), max_bytes=10)
        with pytest.raises(ValueError):
            TraceSink(str(tmp_path / "t.jsonl"), max_segments=0)


class TestTracePipeline:
    def test_sampled_request_persists_the_assembled_tree(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cluster.request") as root:
            with tracer.span("service.solve"):
                pass
        trace_id = root.trace_id
        pipeline = TracePipeline(
            policy=SamplingPolicy(rate=1.0),
            sink=TraceSink(str(tmp_path / "traces.jsonl")),
        )
        record = pipeline.offer(
            trace_id=trace_id, status="ok", latency_s=0.01,
            tracer=tracer,
        )
        assert record is not None
        assert record["reason"] == "sampled"
        assert record["tree"]["trace_id"] == trace_id
        assert record["tree"]["spans"] == 2

        def names(nodes):
            out = set()
            for node in nodes:
                out.add(node["name"])
                out |= names(node["children"])
            return out

        assert names(record["tree"]["roots"]) == \
            {"cluster.request", "service.solve"}
        persisted = pipeline.sink.read_records()
        assert persisted[0]["trace_id"] == trace_id
        pipeline.close()

    def test_unsampled_error_persists_a_skeleton(self):
        pipeline = TracePipeline(policy=SamplingPolicy(rate=0.0))
        record = pipeline.offer(
            trace_id="00" * 16, status="error", latency_s=0.2,
            tracer=None,
        )
        assert record is not None
        assert record["reason"] == "status"
        assert record["tree"] is None
        assert pipeline.skeletons == 1

    def test_unsampled_ok_is_skipped(self):
        pipeline = TracePipeline(policy=SamplingPolicy(rate=0.0))
        assert pipeline.offer(
            trace_id="00" * 16, status="ok", latency_s=0.001,
        ) is None
        assert pipeline.skipped == 1

    def test_snapshot_shape(self, tmp_path):
        pipeline = TracePipeline(
            policy=SamplingPolicy(rate=1.0),
            sink=TraceSink(str(tmp_path / "traces.jsonl")),
        )
        pipeline.offer(trace_id="ab" * 16, status="ok", latency_s=0.01)
        snapshot = pipeline.snapshot()
        assert snapshot["offered"] == 1
        assert snapshot["kept"] == 1
        assert snapshot["rate"] == 1.0
        assert snapshot["sink"]["written"] == 1
        pipeline.close()
