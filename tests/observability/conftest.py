"""Observability test fixtures.

The facade is module-global state; every test in this package runs with a
guard that restores the disabled default afterwards, so a failing test
cannot leak an enabled registry into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.observability import facade


@pytest.fixture(autouse=True)
def _observability_disabled_after():
    yield
    facade.disable()


class FakeClock:
    """Deterministic clock: each call returns the next scripted instant,
    or advances by ``step`` once the script is exhausted."""

    def __init__(self, *instants: float, step: float = 1.0):
        self.instants = list(instants)
        self.step = step
        self.now = instants[-1] if instants else 0.0

    def __call__(self) -> float:
        if self.instants:
            self.now = self.instants.pop(0)
        else:
            self.now += self.step
        return self.now


@pytest.fixture
def fake_clock():
    return FakeClock
