"""The versioned BENCH_*.json trajectory artifacts."""

import json

import pytest

from repro.observability.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    BenchTrajectory,
    main,
    validate_bench,
)


def _trajectory() -> BenchTrajectory:
    trajectory = BenchTrajectory("throughput", now=1_700_000_000.0)
    trajectory.record_solver(
        "scan",
        wall_time_s=0.012,
        solution_size=34,
        instance={"posts": 820, "labels": 3, "lam": 30.0},
        counters={"scan.window_advances": 2400},
    )
    trajectory.record_figure(
        "fig13", [{"lam": 30.0, "scan_ms": 1.2}]
    )
    return trajectory


class TestEmission:
    def test_document_is_versioned(self):
        document = _trajectory().to_dict()
        assert document["schema"] == BENCH_SCHEMA
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert document["suite"] == "throughput"
        assert document["created_unix"] == 1_700_000_000.0

    def test_write_emits_valid_json(self, tmp_path):
        path = tmp_path / "BENCH_throughput.json"
        _trajectory().write(path)
        document = json.loads(path.read_text())
        (entry,) = document["solvers"]
        assert entry["solver"] == "scan"
        assert entry["wall_time_s"] == 0.012
        assert entry["solution_size"] == 34
        assert entry["counters"]["scan.window_advances"] == 2400
        assert document["figures"]["fig13"][0]["scan_ms"] == 1.2

    def test_extra_fields_preserved(self):
        trajectory = BenchTrajectory("throughput")
        entry = trajectory.record_solver(
            "scan", wall_time_s=0.1, solution_size=1,
            instance={}, tau=15.0,
        )
        assert entry["tau"] == 15.0


class TestValidation:
    def test_round_trip_validates(self, tmp_path):
        path = tmp_path / "BENCH_throughput.json"
        _trajectory().write(path)
        assert validate_bench(path)["suite"] == "throughput"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="no BENCH artifact"):
            validate_bench(tmp_path / "nope.json")

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not JSON"):
            validate_bench(path)

    def test_wrong_schema_rejected(self):
        document = _trajectory().to_dict()
        document["schema"] = "someone.else"
        with pytest.raises(BenchSchemaError, match="unknown schema"):
            validate_bench(document)

    def test_future_version_rejected(self):
        document = _trajectory().to_dict()
        document["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError, match="schema_version"):
            validate_bench(document)

    def test_empty_solvers_rejected(self):
        document = _trajectory().to_dict()
        document["solvers"] = []
        with pytest.raises(BenchSchemaError, match="no solver entries"):
            validate_bench(document)

    def test_missing_field_rejected(self):
        document = _trajectory().to_dict()
        del document["solvers"][0]["counters"]
        with pytest.raises(BenchSchemaError, match="counters"):
            validate_bench(document)

    def test_negative_wall_time_rejected(self):
        document = _trajectory().to_dict()
        document["solvers"][0]["wall_time_s"] = -1.0
        with pytest.raises(BenchSchemaError, match="negative wall_time_s"):
            validate_bench(document)

    def test_write_refuses_invalid_document(self, tmp_path):
        trajectory = BenchTrajectory("empty")
        with pytest.raises(BenchSchemaError):
            trajectory.write(tmp_path / "BENCH_empty.json")


class TestCli:
    def test_validate_ok(self, tmp_path, capsys):
        path = tmp_path / "BENCH_throughput.json"
        _trajectory().write(path)
        assert main(["--validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_broken(self, tmp_path, capsys):
        path = tmp_path / "BENCH_throughput.json"
        path.write_text("{}")
        assert main(["--validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        path = tmp_path / "BENCH_throughput.json"
        _trajectory().write(path)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.observability.bench",
             "--validate", str(path)],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stderr
        assert "OK" in completed.stdout
