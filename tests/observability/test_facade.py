"""The zero-overhead facade: disabled no-ops, enable/disable/session."""

import time

from repro.observability import facade


class TestDisabledDefault:
    def test_disabled_by_default(self):
        assert not facade.enabled()
        assert facade.active() is None

    def test_disabled_helpers_are_noops(self):
        facade.count("x", 3)
        facade.observe("y", 1.0)
        facade.set_gauge("z", 2.0)
        with facade.span("nothing") as span:
            span.set_attribute("ignored", 1)
        assert facade.active() is None

    def test_disabled_clock_is_perf_counter(self):
        assert facade.clock() is time.perf_counter


class TestEnableDisable:
    def test_enable_records_and_disable_returns_bundle(self):
        bundle = facade.enable()
        facade.count("hits", 2)
        facade.observe("lat", 0.5)
        facade.set_gauge("depth", 4)
        returned = facade.disable()
        assert returned is bundle
        assert bundle.registry.counter("hits").value == 2
        assert bundle.registry.histogram("lat").count == 1
        assert bundle.registry.gauge("depth").value == 4.0
        assert not facade.enabled()

    def test_enable_with_injected_clock(self, fake_clock):
        bundle = facade.enable(clock=fake_clock(5.0, 7.0))
        assert facade.clock() is bundle.clock
        with facade.span("timed") as span:
            pass
        assert span.duration == 2.0

    def test_enable_resumes_existing_bundle(self):
        bundle = facade.enable()
        facade.count("hits")
        facade.disable()
        facade.enable(bundle)
        facade.count("hits")
        assert bundle.registry.counter("hits").value == 2

    def test_spans_share_registry_clock(self):
        bundle = facade.enable()
        assert bundle.registry.clock is bundle.tracer.clock


class TestSession:
    def test_session_scopes_enablement(self):
        with facade.session() as bundle:
            assert facade.active() is bundle
            facade.count("inside")
        assert facade.active() is None
        assert bundle.registry.counter("inside").value == 1

    def test_session_restores_previous_bundle(self):
        outer = facade.enable()
        with facade.session() as inner:
            assert facade.active() is inner
            assert inner is not outer
        assert facade.active() is outer

    def test_session_restores_on_exception(self):
        try:
            with facade.session():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert facade.active() is None
