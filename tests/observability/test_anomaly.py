"""The anomaly engine: every rule, plus raise/clear lifecycle."""

from __future__ import annotations

import pytest

from repro.observability import structlog
from repro.observability.anomaly import RULES, Alert, AnomalyEngine


def _state(cycle=1, latency=None, nodes=None, dark_labels=None):
    return {
        "cycle": cycle,
        "latency": latency or {"count": 0, "p50": None,
                               "p95": None, "p99": None},
        "nodes": nodes or {},
        "dark_labels": dark_labels or [],
    }


def _node(fast_burn=0.0, pending=None, hard=None,
          poisoned=0, stale=None):
    return {
        "slo": {"max_fast_burn": fast_burn, "max_slow_burn": 0.0},
        "service": {
            "pending": pending,
            "hard_watermark": hard,
            "views_poisoned": poisoned,
            "view_stale_reads": stale,
        },
        "consecutive_failures": 0,
    }


class TestRules:
    def test_p99_regression_needs_a_baseline(self):
        engine = AnomalyEngine(min_samples=5)
        # 4 calm cycles build the trailing baseline
        for cycle in range(1, 5):
            engine.evaluate(_state(
                cycle=cycle,
                latency={"count": 100, "p99": 0.010},
            ))
        assert engine.active == {}
        alerts = engine.evaluate(_state(
            cycle=5, latency={"count": 100, "p99": 0.100},
        ))
        assert [a.rule for a in alerts] == ["p99_regression"]
        assert alerts[0].severity == "warning"

    def test_p99_regression_needs_min_samples(self):
        engine = AnomalyEngine(min_samples=50)
        for cycle in range(1, 5):
            engine.evaluate(_state(
                cycle=cycle, latency={"count": 10, "p99": 0.010},
            ))
        alerts = engine.evaluate(_state(
            cycle=5, latency={"count": 10, "p99": 0.500},
        ))
        assert alerts == []

    def test_fast_burn_alert_is_critical(self):
        engine = AnomalyEngine()
        alerts = engine.evaluate(_state(
            nodes={"node0": _node(fast_burn=20.0)}
        ))
        assert [a.rule for a in alerts] == ["error_budget_fast_burn"]
        assert alerts[0].severity == "critical"
        assert alerts[0].subject == "node0"

    def test_dark_shard_alert(self):
        engine = AnomalyEngine()
        alerts = engine.evaluate(_state(dark_labels=["golf", "nba"]))
        assert [a.rule for a in alerts] == ["dark_shard"]
        assert alerts[0].severity == "critical"
        assert alerts[0].value == 2.0
        assert "golf" in alerts[0].message

    def test_queue_saturation_alert(self):
        engine = AnomalyEngine(queue_ratio=0.8)
        alerts = engine.evaluate(_state(
            nodes={"node1": _node(pending=9, hard=10)}
        ))
        assert [a.rule for a in alerts] == ["queue_watermark_saturation"]
        assert engine.evaluate(_state(
            nodes={"node1": _node(pending=2, hard=10)}
        )) == []

    def test_view_drift_on_poisoned_views(self):
        engine = AnomalyEngine()
        alerts = engine.evaluate(_state(
            nodes={"node2": _node(poisoned=1)}
        ))
        assert [a.rule for a in alerts] == ["view_ledger_drift"]
        assert alerts[0].severity == "critical"

    def test_view_drift_on_stale_read_growth(self):
        engine = AnomalyEngine(stale_reads_per_cycle=10)
        assert engine.evaluate(_state(
            cycle=1, nodes={"node2": _node(stale=0)}
        )) == []
        alerts = engine.evaluate(_state(
            cycle=2, nodes={"node2": _node(stale=50)}
        ))
        assert [a.rule for a in alerts] == ["view_ledger_drift"]
        assert alerts[0].severity == "warning"


class TestLifecycle:
    def test_raise_then_clear_emits_structured_events(self):
        engine = AnomalyEngine()
        with structlog.capture() as events:
            engine.evaluate(_state(cycle=1, dark_labels=["golf"]))
            engine.evaluate(_state(cycle=2, dark_labels=[]))
        names = [e["event"] for e in events]
        assert "obs.alert_raised" in names
        assert "obs.alert_cleared" in names
        assert engine.active == {}
        assert engine.raised_total == {"dark_shard": 1}
        assert engine.cleared_total == {"dark_shard": 1}

    def test_persisting_alert_keeps_its_since_cycle(self):
        engine = AnomalyEngine()
        engine.evaluate(_state(cycle=3, dark_labels=["golf"]))
        alerts = engine.evaluate(_state(cycle=4, dark_labels=["golf"]))
        assert alerts[0].since_cycle == 3
        assert engine.raised_total == {"dark_shard": 1}

    def test_alerts_sorted_most_severe_first(self):
        engine = AnomalyEngine()
        alerts = engine.evaluate(_state(
            nodes={
                "a": _node(pending=9, hard=10),       # warning
                "b": _node(fast_burn=20.0),           # critical
            },
        ))
        assert alerts[0].severity == "critical"
        assert alerts[-1].severity == "warning"

    def test_snapshot_shape(self):
        engine = AnomalyEngine()
        engine.evaluate(_state(dark_labels=["golf"]))
        snapshot = engine.snapshot()
        assert snapshot["active"][0]["rule"] == "dark_shard"
        assert snapshot["raised_total"] == {"dark_shard": 1}
        assert snapshot["evaluations"] == 1
        assert snapshot["rules"] == list(RULES)

    def test_prometheus_lines_cover_every_rule(self):
        engine = AnomalyEngine()
        engine.evaluate(_state(dark_labels=["golf"]))
        text = "\n".join(engine.to_prometheus_lines())
        assert 'repro_alerts{rule="dark_shard"' in text
        assert "repro_alerts_active 1" in text
        for rule in RULES:
            assert f'repro_alerts_raised_total{{rule="{rule}"}}' in text


class TestValidation:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AnomalyEngine(p99_ratio=1.0)
        with pytest.raises(ValueError):
            AnomalyEngine(baseline_cycles=0)

    def test_alert_key_is_rule_and_subject(self):
        alert = Alert(rule="dark_shard", severity="critical",
                      message="m", subject="golf")
        assert alert.key == ("dark_shard", "golf")
