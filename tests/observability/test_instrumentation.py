"""Per-solver instrumentation hooks: work counters, spans, clocks.

These tests pin the two contracts of the facade: (a) enabled runs count
the real work units and time through the injectable clock; (b) disabled
runs record nothing and return bit-identical results.
"""

import pytest

from repro.core.greedy_sc import build_setcover_family, greedy_sc
from repro.core.fastpath import build_family_encoded
from repro.core.instance import Instance
from repro.core.scan import (
    _scan_label_counted,
    scan,
    scan_label,
    scan_plus,
)
from repro.core.solution import timed_solution
from repro.core.streaming import stream_solve
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.observability import facade
from repro.pipeline import DiversificationPipeline
from repro.resilience.supervisor import StreamSupervisor, run_supervised
from repro.setcover.greedy import greedy_set_cover


@pytest.fixture
def instance() -> Instance:
    return Instance.from_specs(
        [(0.0, "a"), (1.0, "ab"), (2.5, "b"), (4.0, "ab"),
         (5.0, "a"), (9.0, "b")],
        lam=1.5,
    )


class TestScanCounters:
    def test_counted_twin_matches_scan_label(self, instance):
        for label in instance.labels:
            plist = instance.posting(label)
            plain = scan_label(plist, instance.lam)
            counted, advances = _scan_label_counted(plist, instance.lam)
            assert counted == plain
            assert advances >= len(plist)  # every index is advanced past

    def test_scan_records_window_advances(self, instance):
        with facade.session() as bundle:
            observed = scan(instance)
        counters = bundle.registry.counters()
        assert counters["scan.window_advances"] > 0
        assert counters["scan.picks"] == len(observed.posts) \
            or counters["scan.picks"] >= observed.size
        assert counters["scan.labels_processed"] == len(instance.labels)

    def test_scan_results_identical_enabled_vs_disabled(self, instance):
        plain = scan(instance)
        with facade.session():
            observed = scan(instance)
        assert plain.uids == observed.uids

    def test_scan_plus_counters_and_parity(self, instance):
        plain = scan_plus(instance)
        with facade.session() as bundle:
            observed = scan_plus(instance)
        assert plain.uids == observed.uids
        counters = bundle.registry.counters()
        assert counters["scan_plus.window_advances"] > 0
        assert counters["scan_plus.strike_positions"] > 0

    def test_disabled_scan_records_nothing(self, instance):
        bundle = facade.disable()
        assert bundle is None
        scan(instance)
        assert facade.active() is None


class TestFamilyBuilderCounters:
    def test_python_builder_counts_enumerated_pairs(self, instance):
        with facade.session() as bundle:
            family, universe = build_setcover_family(instance)
        counters = bundle.registry.counters()
        # every (coverer, covered) enumeration including self-pairs
        assert counters["greedy_sc.family_pairs_enumerated"] >= len(
            universe
        )
        assert counters["greedy_sc.universe_size"] == len(universe)

    def test_numpy_builder_counts_enumerated_and_kept(self, instance):
        with facade.session() as bundle:
            family, universe, _ = build_family_encoded(instance)
        counters = bundle.registry.counters()
        assert counters["fastpath.family_pairs_kept"] >= len(universe)
        # ulp-widened windows enumerate at least what survives the filter
        assert (
            counters["fastpath.family_pairs_enumerated"]
            >= counters["fastpath.family_pairs_kept"]
        )
        assert counters["fastpath.universe_size"] == len(universe)

    def test_greedy_sc_engines_unaffected_by_observation(self, instance):
        plain = greedy_sc(instance, engine="numpy")
        with facade.session():
            observed = greedy_sc(instance, engine="numpy")
        assert plain.uids == observed.uids


class TestSetCoverCounters:
    SETS = [{1, 2, 3}, {3, 4}, {4, 5, 6}, {1, 6}]

    def test_rescan_counts_rounds_and_updates(self):
        with facade.session() as bundle:
            chosen = greedy_set_cover(self.SETS, strategy="rescan")
        counters = bundle.registry.counters()
        assert counters["setcover.rescan.rounds"] == len(chosen)
        assert counters["setcover.rescan.sets_scanned"] == len(chosen) \
            * len(self.SETS)
        assert counters["setcover.rescan.residual_updates"] > 0

    def test_lazy_heap_counts_pops(self):
        with facade.session() as bundle:
            chosen = greedy_set_cover(self.SETS, strategy="lazy_heap")
        counters = bundle.registry.counters()
        assert counters["setcover.lazy_heap.picks"] == len(chosen)
        assert counters["setcover.lazy_heap.pops"] >= len(chosen)


class TestTimedSolutionClock:
    def test_elapsed_from_observability_clock(self, instance, fake_clock):
        with facade.session(clock=fake_clock(step=0.25)):
            solution = scan(instance)
        assert solution.elapsed == pytest.approx(0.25)

    def test_explicit_clock_argument_wins(self, instance, fake_clock):
        solution = timed_solution(
            "probe", lambda inst: list(inst.posts), instance,
            clock=fake_clock(10.0, 12.0),
        )
        assert solution.elapsed == 2.0

    def test_solver_span_and_histogram_recorded(self, instance):
        with facade.session() as bundle:
            scan(instance)
        names = [span.name for span in bundle.tracer.finished]
        assert "solver.scan" in names
        assert bundle.registry.counters()["solver.scan.calls"] == 1
        hist = bundle.registry.histogram("solver.scan.elapsed")
        assert hist.count == 1


class TestStreamingCounters:
    def test_stream_run_counters(self, instance):
        with facade.session() as bundle:
            result = stream_solve("stream_scan", instance, tau=1.0)
        counters = bundle.registry.counters()
        assert counters["stream.arrivals"] == len(instance.posts)
        assert counters["stream.emissions"] == result.size
        names = [span.name for span in bundle.tracer.finished]
        assert "stream.run" in names
        assert "stream.solve" in names

    def test_windowed_greedy_work_counters(self, instance):
        with facade.session() as bundle:
            stream_solve("stream_greedy_sc", instance, tau=2.0)
        counters = bundle.registry.counters()
        assert counters["stream_greedy.windows"] > 0
        assert counters["stream_greedy.gain_evaluations"] > 0

    def test_stream_results_identical_enabled_vs_disabled(self, instance):
        plain = stream_solve("stream_greedy_sc", instance, tau=2.0)
        with facade.session():
            observed = stream_solve("stream_greedy_sc", instance, tau=2.0)
        assert plain.emissions == observed.emissions


class TestSupervisorCounters:
    def test_admissions_and_drops_mirrored(self, instance):
        supervisor = StreamSupervisor(
            instance.labels, instance.lam, tau=1.0
        )
        bad = instance.posts[0]
        with facade.session() as bundle:
            run_supervised(supervisor, list(instance.posts) + [bad])
        counters = bundle.registry.counters()
        assert counters["supervisor.arrivals"] == len(instance.posts) + 1
        assert counters["supervisor.admitted"] == len(instance.posts)
        # the duplicate uid is dropped and quarantined
        assert counters["supervisor.quarantined"] == 1
        assert counters["supervisor.emissions"] == \
            supervisor.health.emissions
        assert bundle.registry.gauge(
            "supervisor.journal_depth"
        ).value == len(instance.posts)


class TestPipelineCounters:
    QUERIES = [
        TopicQuery("nba", frozenset({"nba", "game"})),
        TopicQuery("storm", frozenset({"storm", "rain"})),
    ]

    def _documents(self):
        return [
            Document(0, 0.0, "nba game tonight"),
            Document(1, 10.0, "storm rain warning"),
            Document(2, 20.0, "nothing relevant here"),
            Document(3, 30.0, "nba game tonight"),  # simhash duplicate
        ]

    def test_digest_counters_and_span(self):
        pipeline = DiversificationPipeline(self.QUERIES, lam=5.0)
        with facade.session() as bundle:
            result = pipeline.digest(self._documents())
        counters = bundle.registry.counters()
        assert counters["pipeline.digests"] == 1
        assert counters["pipeline.documents"] == 4
        assert counters["pipeline.duplicates_dropped"] == \
            result.duplicates_dropped == 1
        assert counters["pipeline.unmatched_dropped"] == \
            result.unmatched_dropped == 1
        digest_spans = [
            span for span in bundle.tracer.finished
            if span.name == "pipeline.digest"
        ]
        assert digest_spans[0].attributes["digest_size"] == result.size

    def test_feed_counters(self):
        pipeline = DiversificationPipeline(
            self.QUERIES, lam=5.0, tau=0.0,
            stream_algorithm="instant",
        )
        with facade.session() as bundle:
            emitted = 0
            for document in self._documents():
                emitted += len(pipeline.feed(document))
            emitted += len(pipeline.finish())
        counters = bundle.registry.counters()
        assert counters["pipeline.fed"] == 4
        assert counters["pipeline.stream_duplicates_dropped"] == 1
        assert counters["pipeline.stream_unmatched_dropped"] == 1
        assert counters["pipeline.stream_emissions"] == emitted

    def test_digest_unchanged_when_disabled(self):
        pipeline = DiversificationPipeline(self.QUERIES, lam=5.0)
        plain = pipeline.digest(self._documents())
        with facade.session():
            observed = pipeline.digest(self._documents())
        assert plain.solution.uids == observed.solution.uids
