"""Structured event logging: schema, levels, trace correlation."""

from __future__ import annotations

import io
import json
import logging

from repro import observability
from repro.observability import structlog
from repro.observability.structlog import (
    LOGGER_NAME,
    JsonLinesHandler,
    event_payload,
)


class TestEmitAndCapture:
    def test_basic_event_schema(self):
        with structlog.capture() as events:
            structlog.emit("unit.test", tenant="acme", epoch=3, extra=1)
        (event,) = events
        assert event["event"] == "unit.test"
        assert event["tenant"] == "acme"
        assert event["epoch"] == 3
        assert event["extra"] == 1
        assert event["level"] == "INFO"
        assert event["ts"] > 0

    def test_explicit_level(self):
        with structlog.capture() as events:
            structlog.emit("unit.warn", level=logging.WARNING)
        assert events[0]["level"] == "WARNING"

    def test_capture_is_ordered(self):
        with structlog.capture() as events:
            for i in range(5):
                structlog.emit("unit.seq", index=i)
        assert [e["index"] for e in events] == list(range(5))

    def test_capture_restores_level(self):
        logger = logging.getLogger(LOGGER_NAME)
        before = logger.level
        with structlog.capture():
            pass
        assert logger.level == before

    def test_below_threshold_is_dropped_cheaply(self):
        # the default logger threshold gates emission before any
        # payload is built
        with structlog.capture(level=logging.WARNING) as events:
            structlog.emit("unit.info", level=logging.INFO)
            structlog.emit("unit.warn", level=logging.WARNING)
        assert [e["event"] for e in events] == ["unit.warn"]


class TestTraceCorrelation:
    def test_no_tracer_means_null_trace_id(self):
        with structlog.capture() as events:
            structlog.emit("unit.untraced")
        assert events[0]["trace_id"] is None

    def test_trace_id_picked_up_from_active_span(self):
        with observability.session():
            ctx = observability.TraceContext.mint(tenant="acme")
            with observability.activate(ctx):
                with observability.span("outer"):
                    with structlog.capture() as events:
                        structlog.emit("unit.traced")
        (event,) = events
        assert event["trace_id"] == ctx.trace_id
        assert event["tenant"] == "acme"

    def test_explicit_trace_id_wins(self):
        with observability.session():
            ctx = observability.TraceContext.mint()
            with observability.activate(ctx):
                with structlog.capture() as events:
                    structlog.emit("unit.pinned", trace_id="deadbeef")
        assert events[0]["trace_id"] == "deadbeef"


class TestJsonLinesHandler:
    def _emit_through(self, **fields):
        stream = io.StringIO()
        handler = structlog.configure(stream=stream)
        logger = logging.getLogger(LOGGER_NAME)
        try:
            structlog.emit("unit.line", **fields)
        finally:
            logger.removeHandler(handler)
        return stream.getvalue()

    def test_one_json_object_per_line(self):
        text = self._emit_through(answer=42)
        lines = text.splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["event"] == "unit.line"
        assert payload["answer"] == 42

    def test_unserialisable_value_degrades_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        text = self._emit_through(thing=Opaque())
        payload = json.loads(text)
        assert payload["thing"] == "<opaque>"

    def test_configure_returns_detachable_handler(self):
        logger = logging.getLogger(LOGGER_NAME)
        handler = structlog.configure(stream=io.StringIO())
        assert handler in logger.handlers
        logger.removeHandler(handler)
        assert handler not in logger.handlers

    def test_event_payload_plain_record_fallback(self):
        record = logging.LogRecord(
            LOGGER_NAME, logging.INFO, __file__, 1, "plain message",
            None, None,
        )
        payload = event_payload(record)
        assert payload["event"] == "plain message"
        assert payload["level"] == "INFO"

    def test_handler_default_stream_is_stderr(self):
        import sys

        assert JsonLinesHandler().stream is sys.stderr
