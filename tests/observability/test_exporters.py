"""JSON and Prometheus exporters."""

import json

from repro.observability import facade
from repro.observability.exporters import to_json, to_prometheus, write_json
from repro.observability.facade import Observability


def _sample_bundle(fake_clock) -> Observability:
    bundle = Observability(clock=fake_clock(step=1.0))
    bundle.registry.counter("scan.window_advances").inc(120)
    bundle.registry.gauge("supervisor.rung").set(1)
    bundle.registry.histogram("solver.scan.elapsed",
                              buckets=(0.1, 1.0)).observe(0.05)
    bundle.registry.histogram("solver.scan.elapsed").observe(2.0)
    with bundle.tracer.span("solver.scan", algorithm="scan"):
        pass
    return bundle


class TestJson:
    def test_document_shape(self, fake_clock):
        document = json.loads(to_json(_sample_bundle(fake_clock)))
        assert document["metrics"]["scan.window_advances"]["value"] == 120
        assert document["spans"][0]["name"] == "solver.scan"

    def test_write_json_round_trip(self, tmp_path, fake_clock):
        path = tmp_path / "obs.json"
        write_json(_sample_bundle(fake_clock), path)
        document = json.loads(path.read_text())
        assert set(document) == {"metrics", "spans"}


class TestPrometheus:
    def test_counter_rendering(self, fake_clock):
        text = to_prometheus(_sample_bundle(fake_clock))
        assert "# TYPE scan_window_advances_total counter" in text
        assert "scan_window_advances_total 120" in text

    def test_gauge_rendering(self, fake_clock):
        text = to_prometheus(_sample_bundle(fake_clock))
        assert "supervisor_rung 1.0" in text

    def test_histogram_cumulative_buckets(self, fake_clock):
        text = to_prometheus(_sample_bundle(fake_clock))
        lines = text.splitlines()
        assert 'solver_scan_elapsed_bucket{le="0.1"} 1' in lines
        assert 'solver_scan_elapsed_bucket{le="1.0"} 1' in lines
        assert 'solver_scan_elapsed_bucket{le="+Inf"} 2' in lines
        assert "solver_scan_elapsed_count 2" in lines
        assert "solver_scan_elapsed_sum 2.05" in lines

    def test_accepts_bare_registry(self, fake_clock):
        bundle = _sample_bundle(fake_clock)
        assert to_prometheus(bundle.registry) == to_prometheus(bundle)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(Observability()) == ""

    def test_dotted_names_sanitised(self):
        bundle = Observability()
        bundle.registry.counter("a.b-c/d").inc()
        text = to_prometheus(bundle)
        assert "a_b_c_d_total 1" in text


class TestEndToEnd:
    def test_facade_session_exports(self, fake_clock):
        with facade.session(clock=fake_clock(step=1.0)) as bundle:
            facade.count("hits", 3)
        assert "hits_total 3" in to_prometheus(bundle)
        assert json.loads(to_json(bundle))["metrics"]["hits"]["value"] == 3


class TestParsePrometheus:
    def test_round_trips_our_own_exposition(self, fake_clock):
        from repro.observability.exporters import parse_prometheus

        bundle = _sample_bundle(fake_clock)
        samples = parse_prometheus(to_prometheus(bundle))
        by_name = {s["name"]: s for s in samples}
        counter = by_name["scan_window_advances_total"]
        assert counter["value"] == 120
        assert counter["type"] == "counter"
        assert by_name["supervisor_rung"]["type"] == "gauge"
        inf_bucket = [
            s for s in samples
            if s["name"] == "solver_scan_elapsed_bucket"
            and s["labels"]["le"] == "+Inf"
        ]
        assert inf_bucket[0]["value"] == 2
        assert inf_bucket[0]["type"] == "histogram"

    def test_inf_values_parse(self):
        import math

        from repro.observability.exporters import parse_prometheus

        samples = parse_prometheus(
            'x{le="+Inf"} +Inf\ny -Inf\nz NaN\n'
        )
        assert samples[0]["value"] == math.inf
        assert samples[1]["value"] == -math.inf
        assert math.isnan(samples[2]["value"])

    def test_labels_with_escapes(self):
        from repro.observability.exporters import parse_prometheus

        (sample,) = parse_prometheus(
            'm{tenant="a\\"b",algorithm="scan+"} 1\n'
        )
        assert sample["labels"] == {
            "tenant": 'a"b', "algorithm": "scan+",
        }

    def test_blank_lines_and_bare_comments_skipped(self):
        from repro.observability.exporters import parse_prometheus

        samples = parse_prometheus("\n# scraped at noon\nm 1\n\n")
        assert len(samples) == 1

    def test_malformed_sample_raises(self):
        import pytest

        from repro.observability.exporters import (
            PromFormatError,
            parse_prometheus,
        )

        with pytest.raises(PromFormatError, match="line 1"):
            parse_prometheus("not a metric!!! 1\n")
        with pytest.raises(PromFormatError):
            parse_prometheus("m{unclosed 1\n")
        with pytest.raises(PromFormatError):
            parse_prometheus("m notanumber\n")
        with pytest.raises(PromFormatError):
            parse_prometheus("# TYPE m flumph\n")

    def test_timestamped_samples_accepted(self):
        from repro.observability.exporters import parse_prometheus

        (sample,) = parse_prometheus("m 1.5 1700000000\n")
        assert sample["value"] == 1.5


class TestTraceToJson:
    def test_exports_one_assembled_trace(self, fake_clock):
        from repro.observability.exporters import trace_to_json
        from repro.observability.tracing import TraceContext, Tracer

        tracer = Tracer(clock=fake_clock(step=1.0))
        ctx = TraceContext.mint(tenant="acme")
        with tracer.activate(ctx):
            with tracer.span("service.request"):
                with tracer.span("service.solve"):
                    pass
        # a second, unrelated trace must not leak in
        other = TraceContext.mint()
        with tracer.activate(other):
            with tracer.span("service.request"):
                pass
        document = json.loads(trace_to_json(tracer, ctx.trace_id))
        assert document["trace_id"] == ctx.trace_id
        assert document["spans"] == 2
        (root,) = document["roots"]
        assert root["name"] == "service.request"
        assert root["children"][0]["name"] == "service.solve"
