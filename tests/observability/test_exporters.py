"""JSON and Prometheus exporters."""

import json

from repro.observability import facade
from repro.observability.exporters import to_json, to_prometheus, write_json
from repro.observability.facade import Observability


def _sample_bundle(fake_clock) -> Observability:
    bundle = Observability(clock=fake_clock(step=1.0))
    bundle.registry.counter("scan.window_advances").inc(120)
    bundle.registry.gauge("supervisor.rung").set(1)
    bundle.registry.histogram("solver.scan.elapsed",
                              buckets=(0.1, 1.0)).observe(0.05)
    bundle.registry.histogram("solver.scan.elapsed").observe(2.0)
    with bundle.tracer.span("solver.scan", algorithm="scan"):
        pass
    return bundle


class TestJson:
    def test_document_shape(self, fake_clock):
        document = json.loads(to_json(_sample_bundle(fake_clock)))
        assert document["metrics"]["scan.window_advances"]["value"] == 120
        assert document["spans"][0]["name"] == "solver.scan"

    def test_write_json_round_trip(self, tmp_path, fake_clock):
        path = tmp_path / "obs.json"
        write_json(_sample_bundle(fake_clock), path)
        document = json.loads(path.read_text())
        assert set(document) == {"metrics", "spans"}


class TestPrometheus:
    def test_counter_rendering(self, fake_clock):
        text = to_prometheus(_sample_bundle(fake_clock))
        assert "# TYPE scan_window_advances_total counter" in text
        assert "scan_window_advances_total 120" in text

    def test_gauge_rendering(self, fake_clock):
        text = to_prometheus(_sample_bundle(fake_clock))
        assert "supervisor_rung 1.0" in text

    def test_histogram_cumulative_buckets(self, fake_clock):
        text = to_prometheus(_sample_bundle(fake_clock))
        lines = text.splitlines()
        assert 'solver_scan_elapsed_bucket{le="0.1"} 1' in lines
        assert 'solver_scan_elapsed_bucket{le="1.0"} 1' in lines
        assert 'solver_scan_elapsed_bucket{le="+Inf"} 2' in lines
        assert "solver_scan_elapsed_count 2" in lines
        assert "solver_scan_elapsed_sum 2.05" in lines

    def test_accepts_bare_registry(self, fake_clock):
        bundle = _sample_bundle(fake_clock)
        assert to_prometheus(bundle.registry) == to_prometheus(bundle)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(Observability()) == ""

    def test_dotted_names_sanitised(self):
        bundle = Observability()
        bundle.registry.counter("a.b-c/d").inc()
        text = to_prometheus(bundle)
        assert "a_b_c_d_total 1" in text


class TestEndToEnd:
    def test_facade_session_exports(self, fake_clock):
        with facade.session(clock=fake_clock(step=1.0)) as bundle:
            facade.count("hits", 3)
        assert "hits_total 3" in to_prometheus(bundle)
        assert json.loads(to_json(bundle))["metrics"]["hits"]["value"] == 3
