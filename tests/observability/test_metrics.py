"""The metrics registry: counters, gauges, histograms."""

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_summary_stats(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 100.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 102.5
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(102.5 / 3)

    def test_bucket_assignment_is_upper_bound_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(1.0)   # lands in le=1.0
        hist.observe(10.0)  # lands in le=10.0
        hist.observe(10.5)  # overflows to +Inf
        assert hist.bucket_counts == [1, 1, 1]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))

    def test_empty_histogram_mean_is_none(self):
        assert Histogram("h").mean is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_counters_view_excludes_other_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        assert registry.counters() == {"c": 3}

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["g"] == {"type": "gauge", "value": 1.5}
        assert snapshot["h"]["count"] == 1
        assert snapshot["h"]["buckets"][-1]["le"] == "+Inf"

    def test_injectable_clock_is_carried(self):
        fake = lambda: 123.0  # noqa: E731
        registry = MetricsRegistry(clock=fake)
        assert registry.clock() == 123.0

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
