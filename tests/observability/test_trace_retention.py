"""Tracer finished-span retention: bounded ring + dropped counter."""

from __future__ import annotations

from repro.observability.tracing import DEFAULT_MAX_FINISHED, Tracer


class TestFinishedSpanRetention:
    def test_default_cap_is_generous_but_finite(self):
        assert Tracer().max_finished == DEFAULT_MAX_FINISHED
        assert DEFAULT_MAX_FINISHED >= 4096

    def test_oldest_spans_drop_at_the_cap(self):
        tracer = Tracer(max_finished=5)
        for index in range(8):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished) == 5
        assert tracer.dropped_spans == 3
        assert [s.name for s in tracer.finished] == \
            [f"s{i}" for i in range(3, 8)]

    def test_unbounded_mode(self):
        tracer = Tracer(max_finished=None)
        for index in range(100):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished) == 100
        assert tracer.dropped_spans == 0

    def test_adopt_respects_the_cap(self):
        source = Tracer()
        for index in range(6):
            with source.span(f"w{index}"):
                pass
        target = Tracer(max_finished=4)
        target.adopt([s.as_dict() for s in source.finished])
        assert len(target.finished) == 4
        assert target.dropped_spans == 2
