"""Hammer tests: the metrics registry and tracer under concurrent load.

The instruments were originally built for single-threaded solvers; the
serving layer (:mod:`repro.service`) publishes into one shared registry
from concurrent executor threads.  These tests drive every mutation path
from many threads at once and assert the *exact* totals — a lost update
(the classic ``+=`` load/add/store interleave) shows up as a short count.
"""

import threading

import pytest

from repro.observability import facade
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

THREADS = 8
ROUNDS = 2_000


def _hammer(worker, threads=THREADS):
    """Start ``threads`` copies of ``worker`` on a shared barrier."""
    barrier = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        try:
            barrier.wait()
            worker(index)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors


class TestRegistryHammer:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()

        def worker(_index):
            for _ in range(ROUNDS):
                registry.counter("hits").inc()
                registry.counter("bulk").inc(3)

        _hammer(worker)
        assert registry.counter("hits").value == THREADS * ROUNDS
        assert registry.counter("bulk").value == THREADS * ROUNDS * 3

    def test_histogram_totals_are_exact(self):
        registry = MetricsRegistry()

        def worker(index):
            for round_no in range(ROUNDS):
                registry.histogram("latency").observe(0.001 * (index + 1))

        _hammer(worker)
        hist = registry.histogram("latency")
        assert hist.count == THREADS * ROUNDS
        assert sum(hist.bucket_counts) == THREADS * ROUNDS
        expected_total = sum(
            0.001 * (index + 1) * ROUNDS for index in range(THREADS)
        )
        assert hist.total == pytest.approx(expected_total)

    def test_get_or_create_race_converges_on_one_instrument(self):
        registry = MetricsRegistry()
        grabbed = [None] * THREADS

        def worker(index):
            counter = registry.counter("raced")
            grabbed[index] = counter
            counter.inc()

        _hammer(worker)
        assert all(c is grabbed[0] for c in grabbed)
        assert registry.counter("raced").value == THREADS

    def test_gauge_inc_dec_balance(self):
        registry = MetricsRegistry()

        def worker(_index):
            gauge = registry.gauge("depth")
            for _ in range(ROUNDS):
                gauge.inc()
                gauge.dec()

        _hammer(worker)
        assert registry.gauge("depth").value == pytest.approx(0.0)

    def test_snapshot_while_writing_does_not_crash(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer(_index):
            while not stop.is_set():
                registry.counter("spin").inc()
                registry.histogram("h").observe(0.5)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()
                assert snap.get("h", {}).get("count", 0) >= 0
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestTracerHammer:
    def test_concurrent_spans_all_recorded_with_unique_ids(self):
        tracer = Tracer()

        def worker(index):
            for round_no in range(200):
                with tracer.span("outer", thread=index):
                    with tracer.span("inner", round=round_no):
                        pass

        _hammer(worker)
        assert len(tracer.finished) == THREADS * 200 * 2
        ids = [span.span_id for span in tracer.finished]
        assert len(set(ids)) == len(ids)

    def test_nesting_is_per_thread(self):
        """A span's parent is always a span opened on the same thread."""
        tracer = Tracer()
        owner = {}  # span_id -> thread index

        def worker(index):
            for _ in range(200):
                with tracer.span("outer") as outer:
                    owner[outer.span_id] = index
                    with tracer.span("inner") as inner:
                        owner[inner.span_id] = index

        _hammer(worker)
        by_id = {span.span_id: span for span in tracer.finished}
        for span in tracer.finished:
            if span.parent_id is None:
                continue
            assert span.parent_id in by_id
            assert owner[span.parent_id] == owner[span.span_id]

    def test_depth_is_thread_local(self):
        tracer = Tracer()
        with tracer.span("main-thread"):
            seen = []

            def other():
                seen.append(tracer.depth)

            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen == [0]


class TestFacadeHammer:
    def test_shared_session_counts_exactly(self):
        with facade.session() as bundle:
            def worker(_index):
                for _ in range(ROUNDS):
                    facade.count("service.requests")

            _hammer(worker)
            value = bundle.registry.counter("service.requests").value
        assert value == THREADS * ROUNDS
