"""Tracing across executor boundaries (`traced_run`).

The load-bearing fix under test: spans opened inside
``ProcessPoolExecutor`` shard workers used to be dropped on the floor
(the worker's facade is a fresh, disabled one).  ``traced_run`` ships
the caller's trace context with every task, records a per-shard span
wherever the task runs, and adopts worker-side spans back into the
caller's tracer — so a request's assembled tree is complete regardless
of executor kind.
"""

from __future__ import annotations

import pytest

from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.observability import facade
from repro.observability.requesttrace import TraceContext, traced_run


def _double(x):
    """Module-level so process pools can pickle it by reference."""
    return 2 * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


TASKS = [(1,), (2,), (3,)]
IN_PROCESS = [SerialExecutor(), ThreadExecutor(workers=2)]


class TestDisabled:
    @pytest.mark.parametrize("executor", IN_PROCESS + [
        ProcessExecutor(workers=2)
    ], ids=lambda e: e.name)
    def test_pass_through_when_disabled(self, executor):
        assert not facade.enabled()
        assert traced_run(
            executor, _double, TASKS, name="engine.test.shard"
        ) == [2, 4, 6]


class TestInProcess:
    @pytest.mark.parametrize("executor", IN_PROCESS,
                             ids=lambda e: e.name)
    def test_results_and_spans(self, executor):
        with facade.session() as obs:
            results = traced_run(
                executor, _double, TASKS, name="engine.test.shard"
            )
        assert results == [2, 4, 6]
        spans = [s for s in obs.tracer.finished
                 if s.name == "engine.test.shard"]
        assert len(spans) == 3
        assert sorted(s.attributes["shard"] for s in spans) == [0, 1, 2]

    @pytest.mark.parametrize("executor", IN_PROCESS,
                             ids=lambda e: e.name)
    def test_spans_parent_on_the_enclosing_span(self, executor):
        with facade.session() as obs:
            ctx = TraceContext.mint(tenant="acme")
            with obs.tracer.activate(ctx):
                with obs.tracer.span("solver.test") as solve:
                    traced_run(executor, _double, TASKS,
                               name="engine.test.shard")
        shards = [s for s in obs.tracer.finished
                  if s.name == "engine.test.shard"]
        assert {s.parent_id for s in shards} == {solve.span_id}
        assert {s.trace_id for s in shards} == {ctx.trace_id}

    def test_worker_error_still_records_span(self):
        with facade.session() as obs:
            with pytest.raises(RuntimeError):
                traced_run(SerialExecutor(), _boom, [(7,)],
                           name="engine.test.shard")
        (span,) = obs.tracer.finished
        assert "boom 7" in span.attributes["error"]


class TestProcessWorkers:
    """The span-loss fix: worker spans come back with the results."""

    def test_worker_spans_are_adopted(self):
        executor = ProcessExecutor(workers=2)
        with facade.session() as obs:
            ctx = TraceContext.mint(tenant="acme")
            with obs.tracer.activate(ctx):
                with obs.tracer.span("solver.test") as solve:
                    results = traced_run(executor, _double, TASKS,
                                         name="engine.test.shard")
        assert results == [2, 4, 6]
        shards = [s for s in obs.tracer.finished
                  if s.name == "engine.test.shard"]
        assert len(shards) == 3
        # re-parented onto the submitting span, in the caller's trace
        assert {s.parent_id for s in shards} == {solve.span_id}
        assert {s.trace_id for s in shards} == {ctx.trace_id}
        # adopted ids never collide with locally allocated ones
        ids = [d["span_id"] for d in obs.tracer.as_dicts()]
        assert len(ids) == len(set(ids))
        assert obs.registry.counter("trace.spans_adopted").value == 3

    def test_single_task_falls_back_in_process(self):
        # ProcessExecutor runs <=1 tasks inline; the wrapper must notice
        # the live facade and use the shared tracer, not export dicts
        executor = ProcessExecutor(workers=2)
        with facade.session() as obs:
            results = traced_run(executor, _double, [(5,)],
                                 name="engine.test.shard")
        assert results == [10]
        (span,) = [s for s in obs.tracer.finished
                   if s.name == "engine.test.shard"]
        assert span.attributes["shard"] == 0
        assert obs.registry.counters().get("trace.spans_adopted", 0) == 0


class TestEngineIntegration:
    """The parallel solvers' shard work shows up in traces end to end."""

    def _instance(self):
        from repro.core.instance import Instance
        from repro.core.post import Post

        posts = [
            Post(uid=i, value=float(v), labels=("golf",))
            for i, v in enumerate([0, 1, 2, 10, 11, 12, 30, 31, 40])
        ]
        return Instance(posts=posts, lam=2.0)

    @pytest.mark.parametrize("spec", ["serial", "thread", "process"])
    def test_parallel_greedy_traces_shards(self, spec):
        from repro.engine.parallel import parallel_greedy_sc

        instance = self._instance()
        with facade.session() as obs:
            ctx = TraceContext.mint(tenant="t")
            with obs.tracer.activate(ctx):
                parallel_greedy_sc(
                    instance, executor=spec, workers=2, split="halo",
                    max_shards=4,
                )
        names = [s.name for s in obs.tracer.finished]
        assert "solver.parallel_greedy_sc" in names
        shard_spans = [
            s for s in obs.tracer.finished
            if s.name == "engine.greedy_sc.shard"
        ]
        assert shard_spans, f"no shard spans under {spec}"
        # every shard span parents inside the same trace
        ids = {s.span_id for s in obs.tracer.finished}
        for span in shard_spans:
            assert span.trace_id == ctx.trace_id
            assert span.parent_id in ids

    def test_parallel_scan_traces_shards_across_processes(self):
        from repro.engine.parallel import parallel_scan

        instance = self._instance()
        with facade.session() as obs:
            parallel_scan(
                instance, executor="process", workers=2, max_shards=4
            )
        shard_spans = [
            s for s in obs.tracer.finished
            if s.name == "engine.scan.shard"
        ]
        assert shard_spans
        (solve,) = [
            s for s in obs.tracer.finished
            if s.name == "solver.parallel_scan"
        ]
        assert {s.parent_id for s in shard_spans} <= {
            solve.span_id,
            *(s.span_id for s in obs.tracer.finished),
        }
