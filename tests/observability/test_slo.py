"""Per-tenant SLO monitor: quantiles, windows, budgets, burn rates."""

from __future__ import annotations

import threading

import pytest

from repro.observability import SLOMonitor, parse_prometheus
from repro.observability.slo import quantile


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_monitor(**overrides):
    clock = overrides.pop("clock", FakeClock())
    monitor = SLOMonitor(clock=clock, **overrides)
    return monitor, clock


class TestQuantile:
    def test_nearest_rank_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0
        assert quantile(values, 0.5) == 3.0

    def test_single_sample_every_quantile(self):
        assert quantile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestValidation:
    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLOMonitor(objective=1.0)
        with pytest.raises(ValueError):
            SLOMonitor(objective=0.0)

    def test_window_ordering(self):
        with pytest.raises(ValueError):
            SLOMonitor(windows=(600.0, 300.0))
        with pytest.raises(ValueError):
            SLOMonitor(windows=(0.0, 300.0))

    def test_max_samples_positive(self):
        with pytest.raises(ValueError):
            SLOMonitor(max_samples=0)


class TestRecording:
    def test_empty_snapshot(self):
        monitor, _ = make_monitor()
        assert monitor.snapshot() == []

    def test_lifetime_counts_and_statuses(self):
        monitor, _ = make_monitor()
        monitor.record("acme", "scan", latency_s=0.01, status="ok")
        monitor.record("acme", "scan", latency_s=0.02, status="degraded")
        monitor.record("acme", "scan", latency_s=0.0, status="shed")
        (record,) = monitor.snapshot()
        assert record["tenant"] == "acme"
        assert record["algorithm"] == "scan"
        assert record["lifetime"] == {"requests": 3, "failures": 1}
        assert record["statuses"] == {"ok": 1, "degraded": 1, "shed": 1}

    def test_series_are_keyed_by_tenant_and_algorithm(self):
        monitor, _ = make_monitor()
        monitor.record("acme", "scan", latency_s=0.01, status="ok")
        monitor.record("acme", "greedy_sc", latency_s=0.01, status="ok")
        monitor.record("beta", "scan", latency_s=0.01, status="ok")
        keys = [(r["tenant"], r["algorithm"]) for r in monitor.snapshot()]
        # deterministic order: sorted by (tenant, algorithm)
        assert keys == [
            ("acme", "greedy_sc"), ("acme", "scan"), ("beta", "scan"),
        ]

    def test_failures_exclude_latency_quantiles(self):
        # a shed request has no meaningful service latency; quantiles
        # are over *served* responses only
        monitor, _ = make_monitor()
        monitor.record("t", "scan", latency_s=0.010, status="ok")
        monitor.record("t", "scan", latency_s=9.999, status="shed")
        (record,) = monitor.snapshot()
        assert record["latency"]["count"] == 1
        assert record["latency"]["p99"] == 0.010

    def test_no_served_samples_gives_null_quantiles(self):
        monitor, _ = make_monitor()
        monitor.record("t", "scan", latency_s=0.0, status="shed")
        (record,) = monitor.snapshot()
        assert record["latency"] == {
            "count": 0, "p50": None, "p95": None, "p99": None,
        }

    def test_cache_hits_counted(self):
        monitor, _ = make_monitor()
        monitor.record("t", "scan", latency_s=0.001, status="ok",
                       cached=True)
        monitor.record("t", "scan", latency_s=0.010, status="ok")
        (record,) = monitor.snapshot()
        assert record["cache_hits"] == 1

    def test_max_samples_bounds_memory_not_lifetime(self):
        monitor, _ = make_monitor(max_samples=4)
        for i in range(10):
            monitor.record("t", "scan", latency_s=float(i), status="ok")
        (record,) = monitor.snapshot()
        assert record["lifetime"]["requests"] == 10
        assert record["latency"]["count"] == 4
        # only the newest 4 latencies remain
        assert record["latency"]["p50"] in (7.0, 8.0)


class TestWindows:
    def test_old_samples_age_out_of_windows(self):
        monitor, clock = make_monitor(windows=(10.0, 100.0))
        monitor.record("t", "scan", latency_s=0.5, status="error")
        clock.advance(50.0)
        monitor.record("t", "scan", latency_s=0.01, status="ok")
        (record,) = monitor.snapshot()
        # the error left the fast window but is still in the slow one
        assert record["burn"]["fast"]["errors"] == 0
        assert record["burn"]["slow"]["errors"] == 1
        clock.advance(101.0)
        (record,) = monitor.snapshot()
        assert record["burn"]["slow"]["requests"] == 0

    def test_quantiles_use_slow_window(self):
        monitor, clock = make_monitor(windows=(10.0, 100.0))
        monitor.record("t", "scan", latency_s=5.0, status="ok")
        clock.advance(200.0)
        monitor.record("t", "scan", latency_s=0.01, status="ok")
        (record,) = monitor.snapshot()
        assert record["latency"]["count"] == 1
        assert record["latency"]["p99"] == 0.01


class TestBurnRates:
    def test_zero_errors_zero_burn(self):
        monitor, _ = make_monitor(objective=0.99)
        monitor.record("t", "scan", latency_s=0.01, status="ok")
        (record,) = monitor.snapshot()
        assert record["burn"]["fast"]["burn_rate"] == 0.0
        assert record["error_budget_remaining"] == 1.0

    def test_burn_one_spends_exactly_the_allowance(self):
        # objective 0.9 allows 10% errors: 1 error in 10 => burn 1.0
        monitor, _ = make_monitor(objective=0.9)
        for _ in range(9):
            monitor.record("t", "scan", latency_s=0.01, status="ok")
        monitor.record("t", "scan", latency_s=0.0, status="shed")
        (record,) = monitor.snapshot()
        assert record["burn"]["fast"]["burn_rate"] == pytest.approx(1.0)
        assert record["error_budget_remaining"] == pytest.approx(0.0)

    def test_total_outage_burns_at_inverse_allowance(self):
        monitor, _ = make_monitor(objective=0.99)
        monitor.record("t", "scan", latency_s=0.0, status="error")
        (record,) = monitor.snapshot()
        assert record["burn"]["fast"]["burn_rate"] == pytest.approx(100.0)
        assert record["error_budget_remaining"] == 0.0

    def test_degraded_does_not_spend_availability_budget(self):
        monitor, _ = make_monitor(objective=0.99)
        monitor.record("t", "scan", latency_s=0.01, status="degraded")
        (record,) = monitor.snapshot()
        assert record["burn"]["slow"]["errors"] == 0

    def test_multi_window_separates_spike_from_sustained(self):
        monitor, clock = make_monitor(
            objective=0.9, windows=(10.0, 1000.0)
        )
        for _ in range(50):
            monitor.record("t", "scan", latency_s=0.01, status="ok")
        clock.advance(100.0)  # push the healthy half out of fast window
        for _ in range(5):
            monitor.record("t", "scan", latency_s=0.0, status="shed")
        (record,) = monitor.snapshot()
        fast = record["burn"]["fast"]["burn_rate"]
        slow = record["burn"]["slow"]["burn_rate"]
        assert fast == pytest.approx(10.0)   # 100% errors / 10% allowance
        assert slow == pytest.approx(5 / 55 / 0.1)
        assert fast > slow


class TestPrometheus:
    def test_exposition_parses_and_carries_labels(self):
        monitor, _ = make_monitor()
        monitor.record("acme", "scan", latency_s=0.01, status="ok")
        monitor.record("beta", "scan+", latency_s=0.0, status="shed")
        samples = parse_prometheus(monitor.to_prometheus())
        by_name = {}
        for sample in samples:
            by_name.setdefault(sample["name"], []).append(sample)
        requests = by_name["service_slo_requests_total"]
        assert {tuple(sorted(s["labels"].items())) for s in requests} == {
            (("algorithm", "scan"), ("tenant", "acme")),
            (("algorithm", "scan+"), ("tenant", "beta")),
        }
        # declared counter type survives the round trip
        assert all(s["type"] == "counter" for s in requests)
        latencies = by_name["service_slo_latency_seconds"]
        assert {s["labels"]["quantile"] for s in latencies} == \
            {"0.50", "0.95", "0.99"}

    def test_failed_only_series_omits_latency(self):
        monitor, _ = make_monitor()
        monitor.record("t", "scan", latency_s=0.0, status="shed")
        samples = parse_prometheus(monitor.to_prometheus())
        assert not [s for s in samples
                    if s["name"] == "service_slo_latency_seconds"]

    def test_empty_monitor_still_parses(self):
        monitor, _ = make_monitor()
        assert parse_prometheus(monitor.to_prometheus()) == []


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        monitor, _ = make_monitor()

        def hammer(tenant):
            for _ in range(500):
                monitor.record(tenant, "scan", latency_s=0.01, status="ok")

        threads = [
            threading.Thread(target=hammer, args=(f"t{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = monitor.snapshot()
        assert sum(r["lifetime"]["requests"] for r in snapshot) == 2000
