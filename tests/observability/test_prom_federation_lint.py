"""parse_prometheus as the federated-page lint: duplicate series and
label-value escape validation."""

from __future__ import annotations

import pytest

from repro.observability.exporters import (
    PromFormatError,
    parse_prometheus,
)


class TestDuplicateSeries:
    def test_same_name_same_labels_is_rejected(self):
        text = (
            'requests_total{node="a"} 1\n'
            'requests_total{node="a"} 2\n'
        )
        with pytest.raises(PromFormatError, match="duplicate series"):
            parse_prometheus(text)

    def test_duplicate_unlabelled_series_is_rejected(self):
        with pytest.raises(PromFormatError, match="duplicate series"):
            parse_prometheus("up 1\nup 0\n")

    def test_node_label_disambiguates(self):
        samples = parse_prometheus(
            'requests_total{node="a"} 1\n'
            'requests_total{node="b"} 2\n'
        )
        assert len(samples) == 2

    def test_label_order_does_not_evade_detection(self):
        text = (
            'x{a="1",b="2"} 1\n'
            'x{b="2",a="1"} 1\n'
        )
        with pytest.raises(PromFormatError, match="duplicate series"):
            parse_prometheus(text)


class TestLabelEscapes:
    def test_legal_escapes_decode(self):
        (sample,) = parse_prometheus(
            'x{v="a\\"b\\\\c\\nd"} 1\n'
        )
        assert sample["labels"]["v"] == 'a"b\\c\nd'

    def test_backslash_backslash_n_is_not_a_newline(self):
        # \\n is an escaped backslash followed by a literal n —
        # replace-chains decode this wrong
        (sample,) = parse_prometheus('x{v="a\\\\nb"} 1\n')
        assert sample["labels"]["v"] == "a\\nb"
        assert "\n" not in sample["labels"]["v"]

    def test_illegal_escape_is_rejected(self):
        with pytest.raises(PromFormatError, match="illegal escape"):
            parse_prometheus('x{v="a\\tb"} 1\n')

    def test_dangling_escape_is_rejected(self):
        # the escaped quote swallows the closing delimiter, so the
        # whole label set fails to parse — rejected either way
        with pytest.raises(PromFormatError):
            parse_prometheus('x{v="a\\"} 1\n')
