"""The benchdiff CI gate: diffing trajectories and failing regressions."""

from __future__ import annotations

import json

import pytest

from repro.observability.bench import BenchTrajectory
from repro.observability.benchdiff import diff_documents, main


def _document(walls):
    trajectory = BenchTrajectory("diffsuite", now=0.0)
    for solver, wall in walls.items():
        trajectory.record_solver(
            solver,
            wall_time_s=wall,
            solution_size=4,
            instance={"posts": 100, "labels": 3},
        )
    return trajectory.to_dict()


class TestDiffDocuments:
    def test_matched_solvers_get_ratio_rows(self):
        report = diff_documents(
            _document({"a": 0.02}), _document({"a": 0.01}),
        )
        (row,) = report["rows"]
        assert row["solver"] == "a"
        assert row["ratio"] == pytest.approx(2.0)
        assert row["regressed"] is False  # informational without gates

    def test_fail_over_flags_regressions(self):
        report = diff_documents(
            _document({"a": 0.02, "b": 0.01}),
            _document({"a": 0.01, "b": 0.01}),
            fail_over=1.5,
        )
        assert len(report["failures"]) == 1
        assert report["failures"][0].startswith("a:")

    def test_per_solver_gate_overrides_fail_over(self):
        report = diff_documents(
            _document({"a": 0.014}), _document({"a": 0.01}),
            fail_over=1.5, gates={"a": 1.2},
        )
        assert report["failures"]

    def test_missing_gated_solver_is_a_failure(self):
        report = diff_documents(
            _document({"b": 0.01}), _document({"b": 0.01}),
            gates={"a": 1.05},
        )
        assert any("missing" in f for f in report["failures"])

    def test_unmatched_solvers_reported(self):
        report = diff_documents(
            _document({"a": 0.01, "new": 0.01}),
            _document({"a": 0.01, "old": 0.01}),
        )
        assert report["unmatched"] == ["new", "old"]

    def test_zero_baseline_is_not_a_crash(self):
        report = diff_documents(
            _document({"a": 0.01}), _document({"a": 0.0}),
            fail_over=1.5,
        )
        assert report["rows"][0]["ratio"] == float("inf")
        assert report["failures"]


class TestCli:
    def test_self_check_passes(self, capsys):
        assert main(["--self-check"]) == 0
        assert "self-check OK" in capsys.readouterr().out

    def test_diff_run_fails_on_regression(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_document({"a": 0.03})))
        baseline.write_text(json.dumps(_document({"a": 0.01})))
        code = main([
            "--current", str(current), "--baseline", str(baseline),
            "--fail-over", "1.5",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "regression(s)" in captured.err

    def test_diff_run_passes_without_gates(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_document({"a": 0.03})))
        baseline.write_text(json.dumps(_document({"a": 0.01})))
        assert main([
            "--current", str(current), "--baseline", str(baseline),
        ]) == 0

    def test_invalid_document_is_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_document({"a": 0.01})))
        assert main([
            "--current", str(bad), "--baseline", str(good),
        ]) == 1
        assert "INVALID" in capsys.readouterr().err
