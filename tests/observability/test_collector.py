"""Metrics federation: scrape ledgers, fleet merge, federated export.

The load-bearing property here is the bucket-wise histogram merge:
fixed shared bounds mean per-node bucket counts add exactly, so a
quantile interpolated from the merged buckets equals the quantile of a
single histogram that observed the whole fleet's samples.  The
hypothesis test pins that equality over random workloads and splits.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.query import TopicQuery
from repro.observability.anomaly import AnomalyEngine
from repro.observability.collector import (
    Collector,
    FleetStore,
    ScrapeLedger,
    escape_label_value,
    merge_histograms,
    quantile_from_buckets,
)
from repro.observability.exporters import parse_prometheus
from repro.observability.metrics import MetricsRegistry
from repro.service import DiversificationService, ServiceConfig


def run(coro):
    return asyncio.run(coro)


class TestScrapeLedger:
    def test_first_scrape_is_a_full_reset_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        ledger = ScrapeLedger(registry)
        payload = ledger.scrape(None)
        assert payload["reset"] is True
        assert payload["version"] == 1
        assert payload["metrics"]["requests"]["value"] == 3

    def test_cursor_scrape_returns_counter_deltas(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc(3)
        ledger = ScrapeLedger(registry)
        first = ledger.scrape(None)
        counter.inc(2)
        second = ledger.scrape(first["version"])
        assert second["reset"] is False
        assert second["metrics"]["requests"]["value"] == 2

    def test_unchanged_counters_are_omitted_from_deltas(self):
        registry = MetricsRegistry()
        registry.counter("idle").inc(5)
        registry.counter("busy").inc(1)
        ledger = ScrapeLedger(registry)
        first = ledger.scrape(None)
        registry.counter("busy").inc(1)
        second = ledger.scrape(first["version"])
        assert "idle" not in second["metrics"]
        assert second["metrics"]["busy"]["value"] == 1

    def test_gauges_always_ship_current_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(7)
        ledger = ScrapeLedger(registry)
        first = ledger.scrape(None)
        second = ledger.scrape(first["version"])
        assert second["metrics"]["depth"]["value"] == 7

    def test_histogram_deltas_are_per_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        ledger = ScrapeLedger(registry)
        first = ledger.scrape(None)
        hist.observe(0.5)
        hist.observe(5.0)
        second = ledger.scrape(first["version"])
        entry = second["metrics"]["lat"]
        assert entry["count"] == 2
        counts = [b["count"] for b in entry["buckets"]]
        assert counts == [0, 1, 1]

    def test_stale_cursor_degrades_to_reset_not_double_count(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        ledger = ScrapeLedger(registry, history=2)
        old = ledger.scrape(None)
        for _ in range(3):  # age the old version out of history
            counter.inc()
            ledger.scrape(None)
        payload = ledger.scrape(old["version"])
        assert payload["reset"] is True
        assert payload["metrics"]["requests"]["value"] == 3
        assert ledger.resets >= 2

    def test_history_must_be_positive(self):
        with pytest.raises(ValueError):
            ScrapeLedger(MetricsRegistry(), history=0)


class TestFleetStore:
    def _payload(self, version, metrics, reset=False):
        return {"version": version, "reset": reset, "metrics": metrics}

    def test_counters_sum_across_nodes(self):
        store = FleetStore()
        store.ingest("a", self._payload(
            1, {"req": {"type": "counter", "value": 3}}, reset=True))
        store.ingest("b", self._payload(
            1, {"req": {"type": "counter", "value": 4}}, reset=True))
        assert store.fleet_counters() == {"req": 7}

    def test_deltas_accumulate_and_resets_replace(self):
        store = FleetStore()
        store.ingest("a", self._payload(
            1, {"req": {"type": "counter", "value": 3}}, reset=True))
        store.ingest("a", self._payload(
            2, {"req": {"type": "counter", "value": 2}}))
        assert store.node_metrics("a")["req"]["value"] == 5
        store.ingest("a", self._payload(
            3, {"req": {"type": "counter", "value": 1}}, reset=True))
        assert store.node_metrics("a")["req"]["value"] == 1

    def test_gauges_stay_per_node(self):
        store = FleetStore()
        store.ingest("a", self._payload(
            1, {"depth": {"type": "gauge", "value": 2.0}}, reset=True))
        store.ingest("b", self._payload(
            1, {"depth": {"type": "gauge", "value": 9.0}}, reset=True))
        assert store.node_metrics("a")["depth"]["value"] == 2.0
        assert store.node_metrics("b")["depth"]["value"] == 9.0
        assert "depth" not in store.fleet_counters()

    def test_scrape_failures_tracked_per_node(self):
        store = FleetStore()
        store.note_failure("a")
        store.note_failure("a")
        health = store.node_health()["a"]
        assert health["failures"] == 2
        assert health["consecutive_failures"] == 2
        store.ingest("a", self._payload(1, {}, reset=True))
        assert store.node_health()["a"]["consecutive_failures"] == 0


class TestQuantileFromBuckets:
    def test_empty_histogram_has_no_quantile(self):
        assert quantile_from_buckets((1.0, 2.0), (0, 0, 0), 0.5) is None

    def test_interpolates_within_the_winning_bucket(self):
        # 10 samples in (0, 1]; p50 lands mid-bucket
        value = quantile_from_buckets((1.0,), (10, 0), 0.5)
        assert value == pytest.approx(0.5)

    def test_overflow_clamps_to_last_finite_bound(self):
        value = quantile_from_buckets((1.0, 2.0), (0, 0, 5), 0.99)
        assert value == 2.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), (1, 0), 1.5)


BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0)


def _observe_all(samples):
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=BOUNDS)
    for value in samples:
        hist.observe(value)
    return registry.snapshot()["lat"]


class TestHistogramMergeProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0001, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=120,
        ),
        splits=st.lists(st.integers(min_value=0, max_value=3),
                        min_size=1, max_size=120),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99]),
    )
    def test_merged_quantiles_equal_whole_fleet_recompute(
        self, samples, splits, q
    ):
        """Split one workload across 4 nodes; merging the per-node
        histograms bucket-wise must reproduce the single whole-fleet
        histogram exactly — counts, sum, and quantiles."""
        per_node = {i: [] for i in range(4)}
        for index, value in enumerate(samples):
            per_node[splits[index % len(splits)]].append(value)
        entries = [
            _observe_all(node_samples)
            for node_samples in per_node.values() if node_samples
        ]
        merged = merge_histograms(entries)
        whole = _observe_all(samples)
        assert merged["count"] == whole["count"]
        assert merged["sum"] == pytest.approx(whole["sum"])
        assert [b["count"] for b in merged["buckets"]] == \
            [b["count"] for b in whole["buckets"]]
        bounds = [b["le"] for b in whole["buckets"] if b["le"] != "+Inf"]
        counts_merged = [b["count"] for b in merged["buckets"]]
        counts_whole = [b["count"] for b in whole["buckets"]]
        assert quantile_from_buckets(bounds, counts_merged, q) == \
            quantile_from_buckets(bounds, counts_whole, q)

    def test_bound_mismatch_is_an_error(self):
        a = _observe_all([0.5])
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        b = registry.snapshot()["lat"]
        with pytest.raises(ValueError):
            merge_histograms([a, b])


def _make_services(names=("alpha", "beta"), *, serve=0):
    from repro.index.inverted_index import Document
    from repro.service import DigestRequest

    queries = [TopicQuery("q0", ["kwa"]), TopicQuery("q1", ["kwb"])]
    services = {
        name: DiversificationService(queries, ServiceConfig())
        for name in names
    }
    if serve:
        docs = [
            Document(i, i * 10.0, f"kwa kwb body{i}") for i in range(8)
        ]

        async def drive(service):
            service.ingest(docs)
            for _ in range(serve):
                await service.digest(DigestRequest(lam=30.0))

        for service in services.values():
            run(drive(service))
    return services


class TestCollector:
    def test_collect_once_scrapes_every_service(self):
        services = _make_services()
        collector = Collector.for_services(services)
        summary = run(collector.collect_once())
        assert summary["scraped"] == ["alpha", "beta"]
        assert summary["failed"] == []
        assert collector.store.nodes() == ["alpha", "beta"]

    def test_federated_page_parses_without_duplicate_series(self):
        services = _make_services(("node-a", 'node"b'), serve=2)
        collector = Collector.for_services(
            services, engine=AnomalyEngine()
        )
        run(collector.collect_once())
        samples = parse_prometheus(collector.to_prometheus())
        node_labels = {
            s["labels"].get("node") for s in samples
            if "node" in s["labels"]
        }
        assert node_labels == {"node-a", 'node"b'}
        fleet = [s for s in samples if s["name"].startswith("fleet_")]
        assert fleet, "expected fleet aggregate families"
        alerts = [s for s in samples if s["name"] == "repro_alerts_active"]
        assert alerts and alerts[0]["value"] == 0.0

    def test_scrape_failure_counts_and_resets_the_cursor(self):
        services = _make_services(("alpha",))
        collector = Collector.for_services(services)
        run(collector.collect_once())
        assert collector._cursors["alpha"] is not None
        services["alpha"].scrape = _raise  # type: ignore[assignment]
        summary = run(collector.collect_once())
        assert summary["failed"] == ["alpha"]
        assert collector.scrape_failures == 1
        assert "alpha" not in collector._cursors
        health = collector.store.node_health()["alpha"]
        assert health["consecutive_failures"] == 1

    def test_fleet_block_shape(self):
        services = _make_services()
        collector = Collector.for_services(
            services, interval=0.5, engine=AnomalyEngine()
        )
        run(collector.collect_once())
        fleet = collector.fleet()
        assert fleet["cycles"] == 1
        assert fleet["interval_s"] == 0.5
        assert set(fleet["nodes"]) == {"alpha", "beta"}
        assert "p99" in fleet["latency"]
        assert fleet["alerts_active"] == 0
        assert fleet["slo"] == {"fast_burn": 0.0, "slow_burn": 0.0}

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Collector(nodes=list, scrape=lambda n, c: {}, interval=0)


def _raise(cursor=None):
    raise RuntimeError("scrape blew up")


class TestEscapeLabelValue:
    def test_escapes_the_three_legal_sequences(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
