"""Span-based tracing with a deterministic clock."""

import asyncio
import json

import pytest

from repro.observability.tracing import Span, TraceContext, Tracer


class TestTracer:
    def test_span_duration_from_injected_clock(self, fake_clock):
        tracer = Tracer(clock=fake_clock(10.0, 13.5))
        with tracer.span("work") as span:
            pass
        assert span.duration == 3.5
        assert list(tracer.finished) == [span]

    def test_nesting_records_parent_ids(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # children finish (and are recorded) before their parents
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_attributes_at_open_and_during(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("solve", algorithm="scan") as span:
            span.set_attribute("solution_size", 7)
        assert span.attributes == {
            "algorithm": "scan", "solution_size": 7,
        }

    def test_exception_closes_span_and_flags_error(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.ended is not None
        assert "RuntimeError" in span.attributes["error"]
        assert tracer.depth == 0

    def test_open_span_has_no_duration(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        manager = tracer.span("open")
        span = manager.__enter__()
        assert span.duration is None
        manager.__exit__(None, None, None)
        assert span.duration is not None

    def test_as_dicts_round_trips_json(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("a", flag=True):
            pass
        json.dumps(tracer.as_dicts())  # must not raise
        (record,) = tracer.as_dicts()
        assert record["name"] == "a"
        assert record["duration"] == pytest.approx(1.0)

    def test_as_dicts_is_ordered_by_span_id(self, fake_clock):
        # completion order is child-first; exports must be allocation
        # order, which is stable under concurrency
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert [d["name"] for d in tracer.as_dicts()] == \
            ["outer", "inner"]
        ids = [d["span_id"] for d in tracer.as_dicts()]
        assert ids == sorted(ids)


class TestSpanRoundTrip:
    def test_finished_span_round_trips(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("work", kind="unit") as span:
            pass
        restored = Span.from_dict(span.as_dict())
        assert restored == span

    def test_open_span_round_trips_with_none_ended(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        manager = tracer.span("open")
        span = manager.__enter__()
        payload = json.loads(json.dumps(span.as_dict()))
        restored = Span.from_dict(payload)
        assert restored.ended is None
        assert restored.duration is None
        assert restored == span
        manager.__exit__(None, None, None)


class TestTraceContext:
    def test_mint_is_unique_and_carries_tenant(self):
        a = TraceContext.mint(tenant="acme")
        b = TraceContext.mint(tenant="acme")
        assert a.trace_id != b.trace_id
        assert a.tenant == "acme"
        assert a.span_id is None

    def test_at_rebases_parent_span(self):
        ctx = TraceContext.mint()
        child = ctx.at(7)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == 7

    def test_wire_round_trip(self):
        ctx = TraceContext.mint(tenant="t").at(3)
        payload = json.loads(json.dumps(ctx.to_dict()))
        assert TraceContext.from_dict(payload) == ctx

    def test_activation_parents_rootless_spans(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        ctx = TraceContext.mint(tenant="acme").at(99)
        with tracer.activate(ctx):
            with tracer.span("child") as span:
                pass
        assert span.parent_id == 99
        assert span.trace_id == ctx.trace_id

    def test_local_parent_beats_activated_context(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        ctx = TraceContext.mint().at(99)
        with tracer.activate(ctx):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id == 99
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == ctx.trace_id

    def test_activate_none_is_inert(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.activate(None):
            with tracer.span("free") as span:
                pass
        assert span.parent_id is None
        assert span.trace_id is None

    def test_current_context_tracks_innermost_span(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        assert tracer.current_context() is None
        ctx = TraceContext.mint()
        with tracer.activate(ctx):
            assert tracer.current_context() == ctx
            with tracer.span("s") as span:
                inner = tracer.current_context(tenant="t")
                assert inner.trace_id == ctx.trace_id
                assert inner.span_id == span.span_id
                assert inner.tenant == "t"


class TestAsyncioIsolation:
    def test_concurrent_tasks_do_not_cross_parent(self, fake_clock):
        # two requests interleaving awaits on one loop thread must not
        # adopt each other's open spans as parents
        tracer = Tracer(clock=fake_clock(step=1.0))

        async def request(name):
            with tracer.span(name) as root:
                await asyncio.sleep(0)
                with tracer.span(name + ".child") as child:
                    await asyncio.sleep(0)
            return root, child

        async def main():
            return await asyncio.gather(request("a"), request("b"))

        (ra, ca), (rb, cb) = asyncio.run(main())
        assert ra.parent_id is None and rb.parent_id is None
        assert ca.parent_id == ra.span_id
        assert cb.parent_id == rb.span_id

    def test_tasks_inherit_creators_context(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        ctx = TraceContext.mint().at(5)

        async def main():
            with tracer.activate(ctx):
                task = asyncio.ensure_future(child())
            return await task

        async def child():
            with tracer.span("inherited") as span:
                pass
            return span

        span = asyncio.run(main())
        assert span.parent_id == 5
        assert span.trace_id == ctx.trace_id


class TestAdopt:
    def _worker_spans(self, fake_clock):
        worker = Tracer(clock=fake_clock(step=1.0))
        with worker.span("shard", shard=0):
            with worker.span("kernel"):
                pass
        return worker.as_dicts()

    def test_adopt_remaps_ids_and_grafts_roots(self, fake_clock):
        parent = Tracer(clock=fake_clock(step=1.0))
        with parent.span("solve") as solve:
            pass
        adopted = parent.adopt(
            self._worker_spans(fake_clock),
            parent_id=solve.span_id, trace_id="trace-1",
        )
        shard = next(s for s in adopted if s.name == "shard")
        kernel = next(s for s in adopted if s.name == "kernel")
        assert shard.parent_id == solve.span_id
        assert kernel.parent_id == shard.span_id
        assert {s.trace_id for s in adopted} == {"trace-1"}
        # fresh ids: no collision with the parent's own spans
        ids = [d["span_id"] for d in parent.as_dicts()]
        assert len(ids) == len(set(ids)) == 3

    def test_adopt_preserves_attributes_and_times(self, fake_clock):
        parent = Tracer(clock=fake_clock(step=1.0))
        exported = self._worker_spans(fake_clock)
        (shard,) = [
            s for s in parent.adopt(exported) if s.name == "shard"
        ]
        assert shard.attributes == {"shard": 0}
        assert shard.duration is not None


class TestAssemble:
    def test_assemble_builds_the_span_tree(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        ctx = TraceContext.mint()
        with tracer.activate(ctx):
            with tracer.span("request"):
                with tracer.span("solve"):
                    with tracer.span("shard"):
                        pass
                with tracer.span("cache"):
                    pass
        tree = tracer.assemble(ctx.trace_id)
        assert tree["spans"] == 4
        (root,) = tree["roots"]
        assert root["name"] == "request"
        names = sorted(c["name"] for c in root["children"])
        assert names == ["cache", "solve"]
        (solve,) = [
            c for c in root["children"] if c["name"] == "solve"
        ]
        assert [c["name"] for c in solve["children"]] == ["shard"]

    def test_assemble_includes_open_spans(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        ctx = TraceContext.mint()
        with tracer.activate(ctx):
            manager = tracer.span("inflight")
            manager.__enter__()
            tree = tracer.assemble(ctx.trace_id)
            manager.__exit__(None, None, None)
        (root,) = tree["roots"]
        assert root["name"] == "inflight"
        assert root["ended"] is None

    def test_assemble_follows_links_one_level(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        leader = TraceContext.mint()
        with tracer.activate(leader):
            with tracer.span("leader.solve") as solve:
                pass
        follower = TraceContext.mint()
        with tracer.activate(follower):
            with tracer.span(
                "coalesced",
                link_trace_id=leader.trace_id,
                link_span_id=solve.span_id,
            ):
                pass
        tree = tracer.assemble(follower.trace_id)
        (root,) = tree["roots"]
        linked = root["linked"]
        assert linked["trace_id"] == leader.trace_id
        assert linked["roots"][0]["name"] == "leader.solve"

    def test_open_spans_snapshot(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        assert tracer.open_spans() == []
        manager = tracer.span("live")
        manager.__enter__()
        (snap,) = tracer.open_spans()
        assert snap["name"] == "live" and snap["ended"] is None
        manager.__exit__(None, None, None)
        assert tracer.open_spans() == []
