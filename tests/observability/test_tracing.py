"""Span-based tracing with a deterministic clock."""

import pytest

from repro.observability.tracing import Tracer


class TestTracer:
    def test_span_duration_from_injected_clock(self, fake_clock):
        tracer = Tracer(clock=fake_clock(10.0, 13.5))
        with tracer.span("work") as span:
            pass
        assert span.duration == 3.5
        assert tracer.finished == [span]

    def test_nesting_records_parent_ids(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # children finish (and are recorded) before their parents
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_attributes_at_open_and_during(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("solve", algorithm="scan") as span:
            span.set_attribute("solution_size", 7)
        assert span.attributes == {
            "algorithm": "scan", "solution_size": 7,
        }

    def test_exception_closes_span_and_flags_error(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.ended is not None
        assert "RuntimeError" in span.attributes["error"]
        assert tracer.depth == 0

    def test_open_span_has_no_duration(self, fake_clock):
        tracer = Tracer(clock=fake_clock(step=1.0))
        manager = tracer.span("open")
        span = manager.__enter__()
        assert span.duration is None
        manager.__exit__(None, None, None)
        assert span.duration is not None

    def test_as_dicts_round_trips_json(self, fake_clock):
        import json

        tracer = Tracer(clock=fake_clock(step=1.0))
        with tracer.span("a", flag=True):
            pass
        json.dumps(tracer.as_dicts())  # must not raise
        (record,) = tracer.as_dicts()
        assert record["name"] == "a"
        assert record["duration"] == pytest.approx(1.0)
