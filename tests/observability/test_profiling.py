"""The sampling profiler: capture, folding, speedscope export."""

from __future__ import annotations

import threading
import time

import pytest

from repro.observability.profiling import MAX_HZ, Profiler


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        _busy_leaf()


def _busy_leaf() -> float:
    total = 0.0
    for index in range(500):
        total += index * 0.5
    return total


class TestProfiler:
    def test_captures_stacks_from_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = Profiler(hz=200)
            with profiler:
                time.sleep(0.3)
        finally:
            stop.set()
            worker.join()
        assert profiler.sample_count > 0
        collapsed = profiler.collapsed()
        assert "_spin" in collapsed
        lines = [line for line in collapsed.splitlines() if line]
        # folded format: "frame;frame;... count"
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) >= 1

    def test_speedscope_document_shape(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = Profiler(hz=200)
            with profiler:
                time.sleep(0.2)
        finally:
            stop.set()
            worker.join()
        doc = profiler.speedscope(name="unit")
        assert doc["$schema"].startswith("https://www.speedscope.app")
        assert doc["profiles"][0]["type"] == "sampled"
        assert doc["profiles"][0]["name"] == "unit"
        frames = doc["shared"]["frames"]
        samples = doc["profiles"][0]["samples"]
        assert len(samples) == len(doc["profiles"][0]["weights"])
        for indexed in samples:
            for idx in indexed:
                assert 0 <= idx < len(frames)

    def test_capture_is_blocking_and_bounded(self):
        profiler = Profiler(hz=100)
        result = profiler.capture(0.05)
        assert result["seconds"] == pytest.approx(0.05)
        assert result["hz"] == 100
        assert "collapsed" in result and "speedscope" in result
        assert profiler.running is False

    def test_capture_rejects_nonpositive_seconds(self):
        with pytest.raises(ValueError):
            Profiler().capture(0.0)

    def test_hz_validation(self):
        with pytest.raises(ValueError):
            Profiler(hz=0)
        with pytest.raises(ValueError):
            Profiler(hz=MAX_HZ + 1)
        with pytest.raises(ValueError):
            Profiler().start(hz=-5)

    def test_sample_buffer_is_bounded(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = Profiler(hz=500, max_samples=20)
            with profiler:
                time.sleep(0.3)
        finally:
            stop.set()
            worker.join()
        snapshot = profiler.snapshot()
        assert snapshot["buffered"] <= 20
        if profiler.sample_count > 20:
            assert snapshot["overflowed"] > 0

    def test_double_start_is_a_no_op_and_stop_is_idempotent(self):
        profiler = Profiler(hz=50)
        profiler.start()
        assert profiler.start() is profiler  # already running: no-op
        profiler.stop()
        profiler.stop()  # no-op
        assert profiler.running is False
