"""The stream driver."""

import pytest

from repro.core.post import Post, make_posts
from repro.errors import EmissionInvariantError, StreamOrderError
from repro.stream.events import Emission, StreamingAlgorithm
from repro.stream.runner import run_stream


class EchoAlgorithm(StreamingAlgorithm):
    """Emits every arriving post immediately (a valid trivial solver)."""

    name = "echo"

    def on_arrival(self, post):
        return [Emission(post=post, emitted_at=post.value)]

    def next_deadline(self):
        return None

    def on_deadline(self, now):
        return []


class TimerAlgorithm(StreamingAlgorithm):
    """Buffers arrivals and emits them `delay` later, one timer each."""

    name = "timer"

    def __init__(self, delay):
        self.delay = delay
        self._pending = []

    def on_arrival(self, post):
        self._pending.append(post)
        return []

    def next_deadline(self):
        if not self._pending:
            return None
        return self._pending[0].value + self.delay

    def on_deadline(self, now):
        due = [p for p in self._pending if p.value + self.delay == now]
        self._pending = [
            p for p in self._pending if p.value + self.delay != now
        ]
        return [Emission(post=p, emitted_at=now) for p in due]


class MisbehavingAlgorithm(StreamingAlgorithm):
    """Emits the same post twice — the runner must catch this."""

    name = "bad"

    def __init__(self):
        self._seen = []

    def on_arrival(self, post):
        return [
            Emission(post=post, emitted_at=post.value),
            Emission(post=post, emitted_at=post.value),
        ]

    def next_deadline(self):
        return None

    def on_deadline(self, now):
        return []


class TestRunStream:
    def test_echo_emits_everything(self):
        posts = make_posts([(1.0, "a"), (2.0, "a")])
        result = run_stream(EchoAlgorithm(), posts)
        assert result.size == 2
        assert result.max_delay() == 0.0
        assert result.algorithm == "echo"

    def test_deadlines_fire_between_arrivals(self):
        posts = make_posts([(0.0, "a"), (10.0, "a")])
        result = run_stream(TimerAlgorithm(delay=2.0), posts)
        # the first post's timer (t=2) fires before the second arrival
        assert result.emissions[0].post.uid == 0
        assert result.emissions[0].emitted_at == 2.0

    def test_flush_drains_trailing_timers(self):
        posts = make_posts([(0.0, "a")])
        result = run_stream(TimerAlgorithm(delay=5.0), posts)
        assert result.size == 1
        assert result.emissions[0].emitted_at == 5.0

    def test_out_of_order_input_rejected(self):
        posts = make_posts([(5.0, "a"), (1.0, "a")])
        # bypass Instance sorting by passing the raw list
        with pytest.raises(StreamOrderError):
            run_stream(EchoAlgorithm(), posts)

    def test_double_emission_detected(self):
        posts = make_posts([(1.0, "a")])
        with pytest.raises(EmissionInvariantError):
            run_stream(MisbehavingAlgorithm(), posts)

    def test_emission_before_arrival_detected(self):
        class Premature(EchoAlgorithm):
            def on_arrival(self, post):
                ghost = Post(uid=post.uid + 1000, value=post.value,
                             labels=post.labels)
                return [Emission(post=ghost, emitted_at=post.value)]

        with pytest.raises(EmissionInvariantError):
            run_stream(Premature(), make_posts([(1.0, "a")]))

    def test_emission_before_timestamp_detected(self):
        class TimeTraveller(EchoAlgorithm):
            def on_arrival(self, post):
                return [Emission(post=post, emitted_at=post.value - 1.0)]

        with pytest.raises(EmissionInvariantError):
            run_stream(TimeTraveller(), make_posts([(1.0, "a")]))

    def test_invariants_survive_python_O(self):
        # The invariant checks are real raises, not asserts, so they must
        # fire even when Python strips assert statements (python -O).
        import subprocess
        import sys

        code = (
            "from repro.errors import EmissionInvariantError\n"
            "from repro.core.post import make_posts\n"
            "from repro.stream.runner import run_stream\n"
            "from repro.stream.events import Emission, StreamingAlgorithm\n"
            "class Bad(StreamingAlgorithm):\n"
            "    def on_arrival(self, post):\n"
            "        e = Emission(post=post, emitted_at=post.value)\n"
            "        return [e, e]\n"
            "    def next_deadline(self):\n"
            "        return None\n"
            "    def on_deadline(self, now):\n"
            "        return []\n"
            "try:\n"
            "    run_stream(Bad(), make_posts([(1.0, 'a')]))\n"
            "except EmissionInvariantError:\n"
            "    print('caught')\n"
        )
        import os
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-O", "-c", code],
            capture_output=True, text=True, env=env,
        )
        assert proc.stdout.strip() == "caught", proc.stderr

    def test_delays_recorded(self):
        posts = make_posts([(0.0, "a"), (1.0, "a")])
        result = run_stream(TimerAlgorithm(delay=3.0), posts)
        assert result.max_delay() == pytest.approx(3.0)
        assert all(e.delay == pytest.approx(3.0)
                   for e in result.emissions)

    def test_to_solution_roundtrip(self):
        posts = make_posts([(1.0, "a"), (2.0, "a")])
        result = run_stream(EchoAlgorithm(), posts)
        solution = result.to_solution()
        assert solution.size == 2
        assert solution.algorithm == "echo"

    def test_empty_stream(self):
        result = run_stream(EchoAlgorithm(), [])
        assert result.size == 0
        assert result.max_delay() == 0.0
