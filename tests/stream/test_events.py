"""Emission semantics and the StreamingAlgorithm protocol."""

import pytest

from repro.core.post import Post
from repro.stream.events import Emission, StreamingAlgorithm


def _post(value=1.0):
    return Post(uid=0, value=value, labels=frozenset("a"))


class TestEmission:
    def test_delay_derived(self):
        emission = Emission(post=_post(10.0), emitted_at=12.5)
        assert emission.delay == 2.5

    def test_zero_delay(self):
        emission = Emission(post=_post(3.0), emitted_at=3.0)
        assert emission.delay == 0.0

    def test_frozen(self):
        emission = Emission(post=_post(), emitted_at=1.0)
        with pytest.raises(AttributeError):
            emission.emitted_at = 5.0


class TestDefaultFlush:
    def test_flush_drains_deadlines_in_order(self):
        class Queued(StreamingAlgorithm):
            def __init__(self):
                self.deadlines = [3.0, 1.0, 2.0]

            def on_arrival(self, post):
                return []

            def next_deadline(self):
                return min(self.deadlines) if self.deadlines else None

            def on_deadline(self, now):
                self.deadlines.remove(now)
                return [Emission(post=Post(uid=int(now * 10),
                                           value=now,
                                           labels=frozenset("a")),
                                 emitted_at=now)]

        algorithm = Queued()
        emissions = algorithm.flush()
        assert [e.emitted_at for e in emissions] == [1.0, 2.0, 3.0]
        assert algorithm.next_deadline() is None

    def test_flush_empty_when_no_deadlines(self):
        class Idle(StreamingAlgorithm):
            def on_arrival(self, post):
                return []

            def next_deadline(self):
                return None

            def on_deadline(self, now):  # pragma: no cover
                return []

        assert Idle().flush() == []

    def test_base_class_abstract_methods(self):
        base = StreamingAlgorithm()
        with pytest.raises(NotImplementedError):
            base.on_arrival(_post())
        with pytest.raises(NotImplementedError):
            base.next_deadline()
        with pytest.raises(NotImplementedError):
            base.on_deadline(0.0)
