"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517` takes the legacy `setup.py develop`
path, which works offline; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
