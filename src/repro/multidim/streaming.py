"""Streaming spatiotemporal diversification.

Completes the future-work extension: posts arrive in *time* order (the
primary dimension), every output must be reported within ``tau`` of
publication, and coverage is the box test over all dimensions.  Two
algorithms, mirroring the 1-D pair:

* :class:`InstantBoxCover` — the ``tau = 0`` algorithm: a per-label cache
  of recently selected posts (pruned once they fall a primary radius
  behind); an arrival is emitted iff some of its labels has no cached
  post box-covering it.
* :class:`StreamGreedyBox` — the windowed greedy: when the oldest post
  with an uncovered ``(post, label)`` pair turns ``tau`` old, greedily
  select posts from the window until everything pending is covered.

With one dimension these reduce to :class:`~repro.core.streaming
.InstantCover` and :class:`~repro.core.streaming.StreamGreedySC`
respectively — asserted in the tests — so the generalisation is strict.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..stream.events import Emission, StreamingAlgorithm
from .model import BoxCoverage, MultiPost

__all__ = ["InstantBoxCover", "StreamGreedyBox"]


class _BoxSelectedIndex:
    """Per-label primary-sorted index of selected posts."""

    def __init__(self, coverage: BoxCoverage):
        self.coverage = coverage
        self._entries: Dict[str, List[Tuple[float, MultiPost]]] = {}

    def add(self, post: MultiPost) -> None:
        for label in post.labels:
            entries = self._entries.setdefault(label, [])
            bisect.insort(entries, (post.primary(), post.uid, post))

    def covers(self, label: str, post: MultiPost) -> bool:
        entries = self._entries.get(label)
        if not entries:
            return False
        radius = self.coverage.radii[0]
        keys = [entry[0] for entry in entries]
        lo = max(0, bisect.bisect_left(keys, post.primary() - radius) - 1)
        hi = min(len(entries),
                 bisect.bisect_right(keys, post.primary() + radius) + 1)
        return any(
            self.coverage.within(entry[2], post)
            for entry in entries[lo:hi]
        )


class InstantBoxCover(StreamingAlgorithm):
    """Zero-delay box-coverage selection (the multi-dim InstantCover)."""

    name = "instant_box"

    def __init__(self, labels, radii: Sequence[float]):
        self.labels = set(labels)
        self.coverage = BoxCoverage(radii)
        self._selected = _BoxSelectedIndex(self.coverage)

    def on_arrival(self, post: MultiPost) -> List[Emission]:
        covered = all(
            self._selected.covers(label, post) for label in post.labels
        )
        if covered:
            return []
        self._selected.add(post)
        return [Emission(post=post, emitted_at=post.primary())]

    def next_deadline(self) -> Optional[float]:
        return None

    def on_deadline(self, now: float) -> List[Emission]:  # pragma: no cover
        return []


class StreamGreedyBox(StreamingAlgorithm):
    """Windowed greedy box cover (the multi-dim StreamGreedySC)."""

    name = "stream_greedy_box"

    def __init__(self, labels, radii: Sequence[float], tau: float):
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        self.labels = set(labels)
        self.coverage = BoxCoverage(radii)
        self.tau = float(tau)
        self._selected = _BoxSelectedIndex(self.coverage)
        self._pending: List[Tuple[MultiPost, Set[str]]] = []
        self._buffer: List[MultiPost] = []

    def _uncovered_labels(self, post: MultiPost) -> Set[str]:
        return {
            label
            for label in post.labels
            if label in self.labels
            and not self._selected.covers(label, post)
        }

    def _prune_buffer(self, threshold: float) -> None:
        if self._buffer and self._buffer[0].primary() < threshold:
            self._buffer = [
                p for p in self._buffer if p.primary() >= threshold
            ]

    def on_arrival(self, post: MultiPost) -> List[Emission]:
        if not post.labels & self.labels:
            return []
        self._buffer.append(post)
        uncovered = self._uncovered_labels(post)
        if uncovered:
            self._pending.append((post, uncovered))
        threshold = (
            self._pending[0][0].primary() if self._pending
            else post.primary()
        )
        self._prune_buffer(threshold)
        return []

    def next_deadline(self) -> Optional[float]:
        if not self._pending:
            return None
        return self._pending[0][0].primary() + self.tau

    def on_deadline(self, now: float) -> List[Emission]:
        window_start = self._pending[0][0].primary()
        candidates = [
            p for p in self._buffer
            if window_start <= p.primary() <= now
        ]
        emissions: List[Emission] = []
        while any(labels for _, labels in self._pending):
            picked = self._best_candidate(candidates)
            if picked is None:  # pragma: no cover - self-coverage guard
                break
            self._selected.add(picked)
            emissions.append(Emission(post=picked, emitted_at=now))
            for post, labels in self._pending:
                if self.coverage.within(post, picked):
                    labels -= picked.labels
        self._pending = []
        return emissions

    def _best_candidate(
        self, candidates: Sequence[MultiPost]
    ) -> Optional[MultiPost]:
        best: Optional[MultiPost] = None
        best_key: Optional[Tuple[int, float]] = None
        for candidate in candidates:
            gain = 0
            for post, labels in self._pending:
                if not self.coverage.within(post, candidate):
                    continue
                gain += len(labels & candidate.labels)
            if gain == 0:
                continue
            key = (gain, candidate.primary())
            if best_key is None or key > best_key:
                best_key = key
                best = candidate
        return best
