"""Solvers for multi-dimensional MQDP.

All three return the shared :class:`repro.core.solution.Solution`-like
result via a small local type (multi-posts are not 1-D posts, so the core
Solution is not reused).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..observability import facade as _obs
from ..setcover import exact_set_cover, greedy_set_cover
from .model import MultiInstance, MultiPost

Clock = Callable[[], float]

__all__ = ["MultiSolution", "greedy_box", "sweep_box", "exact_box"]


@dataclass(frozen=True)
class MultiSolution:
    """A candidate box-cover of a multi-dimensional instance."""

    algorithm: str
    posts: Tuple[MultiPost, ...]
    elapsed: float = field(default=0.0, compare=False)

    @property
    def size(self) -> int:
        return len(self.posts)

    @property
    def uids(self) -> Tuple[int, ...]:
        return tuple(post.uid for post in self.posts)


def _resolve_clock(clock: Optional[Clock]) -> Clock:
    # None defers to the observability clock (time.perf_counter unless a
    # deterministic one was enabled) — the supervisor's clock= pattern.
    return clock if clock is not None else _obs.clock()


def _finish(algorithm: str, picks: List[MultiPost],
            started: float, clock: Clock) -> MultiSolution:
    unique = {post.uid: post for post in picks}
    ordered = sorted(unique.values(), key=lambda p: (p.primary(), p.uid))
    return MultiSolution(
        algorithm=algorithm,
        posts=tuple(ordered),
        elapsed=clock() - started,
    )


def _family(instance: MultiInstance):
    family = [instance.covered_pairs_by(post) for post in instance.posts]
    return family, instance.universe_pairs()


def greedy_box(instance: MultiInstance,
               strategy: str = "rescan",
               clock: Optional[Clock] = None) -> MultiSolution:
    """GreedySC lifted to box coverage: still ``ln(|P||L|)``-approximate,
    since the transform to set cover is unchanged."""
    clock = _resolve_clock(clock)
    started = clock()
    family, universe = _family(instance)
    chosen = greedy_set_cover(family, universe=universe, strategy=strategy)
    picks = [instance.posts[idx] for idx in chosen]
    return _finish("greedy_box", picks, started, clock)


def exact_box(instance: MultiInstance,
              node_budget: int = 2_000_000,
              clock: Optional[Clock] = None) -> MultiSolution:
    """Minimum box-cover via exact set cover (small instances)."""
    clock = _resolve_clock(clock)
    started = clock()
    family, universe = _family(instance)
    chosen = exact_set_cover(family, universe=universe,
                             node_budget=node_budget)
    picks = [instance.posts[idx] for idx in chosen]
    return _finish("exact_box", picks, started, clock)


def sweep_box(instance: MultiInstance,
              clock: Optional[Clock] = None) -> MultiSolution:
    """The Scan idea lifted to a primary-dimension sweep.

    Per label, repeatedly take the sweep-order-first uncovered post and
    pick, among candidates that box-cover it, the one covering the most
    still-uncovered pairs of this label (ties towards the largest primary
    value, i.e. furthest forward reach).  In one dimension this reduces to
    Scan's optimal greedy; with extra dimensions per-label optimality is
    lost (covering points with unit squares is NP-hard), but the output is
    always a valid cover and each pick is locally maximal.
    """
    clock = _resolve_clock(clock)
    started = clock()
    picks: List[MultiPost] = []
    for label in sorted(instance.labels):
        plist = instance.posting(label)
        uncovered = {post.uid for post in plist}
        for post in plist:
            if post.uid not in uncovered:
                continue
            candidates = [
                candidate
                for candidate in instance.candidates_near(label, post)
                if instance.coverage.within(candidate, post)
            ]
            best = None
            best_key = None
            for candidate in candidates:
                gain = sum(
                    1
                    for other in instance.candidates_near(label, candidate)
                    if other.uid in uncovered
                    and instance.coverage.within(candidate, other)
                )
                key = (gain, candidate.primary())
                if best_key is None or key > best_key:
                    best_key = key
                    best = candidate
            if best is None:  # pragma: no cover - post covers itself
                best = post
            picks.append(best)
            for other in instance.candidates_near(label, best):
                if instance.coverage.within(best, other):
                    uncovered.discard(other.uid)
    return _finish("sweep_box", picks, started, clock)
