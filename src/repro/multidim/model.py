"""Data model for multi-dimensional MQDP.

A :class:`MultiPost` sits at a point in a k-dimensional diversity space
(time x longitude, time x sentiment, ...); coverage is an axis-aligned box
test per shared label.  The structures mirror :mod:`repro.core.instance`
so the 1-D case behaves identically to the paper's formulation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidInstanceError

__all__ = ["MultiPost", "BoxCoverage", "MultiInstance"]


@dataclass(frozen=True)
class MultiPost:
    """A post at a point in k-dimensional diversity space."""

    uid: int
    values: Tuple[float, ...]
    labels: FrozenSet[str]
    text: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(
                self, "values", tuple(float(v) for v in self.values)
            )
        if not isinstance(self.labels, frozenset):
            object.__setattr__(self, "labels", frozenset(self.labels))

    @property
    def dimensions(self) -> int:
        return len(self.values)

    def primary(self) -> float:
        """The first (sweep) dimension's value — time, conventionally."""
        return self.values[0]


class BoxCoverage:
    """Per-dimension radii; covers = within every radius + shared label."""

    def __init__(self, radii: Sequence[float]):
        if not radii:
            raise InvalidInstanceError("need at least one dimension")
        if any(r < 0 for r in radii):
            raise InvalidInstanceError(f"radii must be >= 0, got {radii}")
        self.radii: Tuple[float, ...] = tuple(float(r) for r in radii)

    @property
    def dimensions(self) -> int:
        return len(self.radii)

    def within(self, one: MultiPost, other: MultiPost) -> bool:
        """True when the two posts differ by at most the radius in every
        dimension (the geometric half of coverage)."""
        return all(
            abs(a - b) <= radius
            for a, b, radius in zip(one.values, other.values, self.radii)
        )

    def covers(self, coverer: MultiPost, label: str,
               covered: MultiPost) -> bool:
        return (
            label in coverer.labels
            and label in covered.labels
            and self.within(coverer, covered)
        )


class MultiInstance:
    """An immutable multi-dimensional MQDP instance.

    Posts are sorted by (primary value, uid); per-label posting lists allow
    primary-dimension windowing, with the remaining dimensions checked
    explicitly — the natural index layout when the primary dimension is
    time and the others are bounded (sentiment, geo coordinate).
    """

    def __init__(
        self,
        posts: Iterable[MultiPost],
        radii: Sequence[float],
        labels: Optional[Iterable[str]] = None,
    ):
        self.coverage = BoxCoverage(radii)
        post_list = sorted(posts, key=lambda p: (p.primary(), p.uid))
        seen = set()
        for post in post_list:
            if post.uid in seen:
                raise InvalidInstanceError(f"duplicate uid {post.uid}")
            seen.add(post.uid)
            if not post.labels:
                raise InvalidInstanceError(
                    f"post {post.uid} has an empty label set"
                )
            if post.dimensions != self.coverage.dimensions:
                raise InvalidInstanceError(
                    f"post {post.uid} has {post.dimensions} dimensions, "
                    f"coverage has {self.coverage.dimensions}"
                )
        used = set()
        for post in post_list:
            used |= post.labels
        if labels is None:
            universe = frozenset(used)
        else:
            universe = frozenset(labels)
            missing = used - universe
            if missing:
                raise InvalidInstanceError(
                    "posts reference labels outside the universe: "
                    + ", ".join(sorted(missing))
                )
        self._posts: Tuple[MultiPost, ...] = tuple(post_list)
        self._labels = universe
        self._by_uid = {p.uid: p for p in self._posts}
        self._posting: Dict[str, List[MultiPost]] = {
            a: [] for a in universe
        }
        for post in self._posts:
            for label in post.labels:
                self._posting[label].append(post)
        self._posting_primary: Dict[str, List[float]] = {
            a: [p.primary() for p in plist]
            for a, plist in self._posting.items()
        }

    @property
    def posts(self) -> Tuple[MultiPost, ...]:
        return self._posts

    @property
    def labels(self) -> frozenset:
        return self._labels

    @property
    def radii(self) -> Tuple[float, ...]:
        return self.coverage.radii

    def __len__(self) -> int:
        return len(self._posts)

    def post(self, uid: int) -> MultiPost:
        return self._by_uid[uid]

    def posting(self, label: str) -> List[MultiPost]:
        return self._posting[label]

    def candidates_near(self, label: str,
                        post: MultiPost) -> List[MultiPost]:
        """Label-sharing posts within the primary radius of ``post``,
        ulp-widened like the 1-D windows (the box test is the arbiter)."""
        values = self._posting_primary[label]
        plist = self._posting[label]
        radius = self.coverage.radii[0]
        lo = bisect.bisect_left(values, post.primary() - radius)
        hi = bisect.bisect_right(values, post.primary() + radius)
        lo = max(0, lo - 1)
        hi = min(len(plist), hi + 1)
        return [
            candidate
            for candidate in plist[lo:hi]
            if abs(candidate.primary() - post.primary()) <= radius
        ]

    def covered_pairs_by(self, post: MultiPost) -> set:
        """All ``(uid, label)`` pairs selecting ``post`` would box-cover."""
        pairs = set()
        for label in post.labels:
            for candidate in self.candidates_near(label, post):
                if self.coverage.within(post, candidate):
                    pairs.add((candidate.uid, label))
        return pairs

    def universe_pairs(self) -> set:
        """Every ``(uid, label)`` pair that must be covered."""
        return {
            (post.uid, label)
            for post in self._posts
            for label in post.labels
        }

    def is_cover(self, selected: Iterable[MultiPost]) -> bool:
        """True when ``selected`` box-covers the whole instance."""
        covered = set()
        for post in selected:
            covered |= self.covered_pairs_by(post)
        return self.universe_pairs() <= covered
