"""Multi-dimensional diversification — the paper's Section 9 future work.

The conclusions sketch extending MQDP "to the spatiotemporal space, where
the selected posts need to cover both the time and geospatial dimension".
This package implements that generalisation: a post carries a *vector* of
diversity values (e.g. ``(timestamp, longitude)``), the threshold becomes a
per-dimension radius vector, and ``P_i`` box-covers ``a in P_j`` when they
share the label and differ by at most the radius in *every* dimension.

With one dimension the definitions collapse to the paper's MQDP exactly
(tested), so the solvers here are strict generalisations:

* :func:`~repro.multidim.solvers.greedy_box` — GreedySC lifted to boxes;
* :func:`~repro.multidim.solvers.sweep_box` — the Scan idea lifted to a
  primary-dimension sweep (optimal per label in 1-D; a well-behaved
  heuristic beyond, since interval-covering optimality does not survive
  extra dimensions);
* :func:`~repro.multidim.solvers.exact_box` — exact branch and bound, the
  ground truth for the extension's benchmark.
"""

from .model import BoxCoverage, MultiInstance, MultiPost
from .solvers import exact_box, greedy_box, sweep_box
from .streaming import InstantBoxCover, StreamGreedyBox

__all__ = [
    "MultiPost",
    "MultiInstance",
    "BoxCoverage",
    "greedy_box",
    "sweep_box",
    "exact_box",
    "InstantBoxCover",
    "StreamGreedyBox",
]
