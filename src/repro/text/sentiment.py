"""Lexicon-based sentiment polarity scoring.

Time and sentiment are the paper's two flagship diversity dimensions.  For
the sentiment dimension each post needs a polarity value; a compact
lexicon scorer (positive/negative word lists, negation flipping, intensity
modifiers) is faithful to what 2013-era microblogging pipelines used and
keeps the whole reproduction dependency-free.

Scores live in ``[-1, 1]``: the signed fraction of polar tokens, squashed
so that short all-positive posts do not all collapse onto exactly 1.0
(distinct values matter for a diversity dimension).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ..index.tokenizer import tokenize

__all__ = ["SentimentAnalyzer", "sentiment_score", "POSITIVE_WORDS",
           "NEGATIVE_WORDS"]

POSITIVE_WORDS: FrozenSet[str] = frozenset(
    """
    good great excellent amazing awesome fantastic wonderful love loved
    loves loving best better happy glad delighted thrilled excited
    exciting win wins winning won victory success successful strong
    strongest gain gains gained rally rallies surge surges soared soaring
    record beautiful brilliant outstanding superb impressive remarkable
    positive optimistic hope hopeful hopes promising improve improved
    improves improvement recovery recovering recovered boom booming
    celebrate celebrates celebrated celebration cheer cheers cheering
    support supports supported praise praised praises breakthrough
    triumph thriving safe saved saves rescue rescued relief grateful
    thanks thankful congrats congratulations perfect proud pride
    """.split()
)

NEGATIVE_WORDS: FrozenSet[str] = frozenset(
    """
    bad terrible horrible awful worst worse hate hated hates hating angry
    anger furious outrage outraged sad sadly tragic tragedy disaster
    disastrous fail fails failed failing failure lose loses losing lost
    loss losses crash crashes crashed crashing plunge plunged plunges
    collapse collapsed collapsing crisis fear fears feared scary scared
    panic worried worry worries concern concerned concerns warning warn
    warns threat threats threatened dead death deaths die dies died dying
    kill killed kills killing injured injuries hurt damage damaged
    destroy destroyed destroys destruction corrupt corruption scandal
    fraud guilty wrong broken breaks weak weakest decline declined
    declines drop dropped drops slump recession layoffs shutdown violence
    violent attack attacked attacks war
    """.split()
)

_NEGATIONS: FrozenSet[str] = frozenset(
    ("not", "no", "never", "nobody", "nothing", "neither", "nor", "cannot",
     "cant", "dont", "doesnt", "didnt", "wont", "wouldnt", "isnt", "arent",
     "wasnt", "werent", "hasnt", "havent", "hadnt")
)

_INTENSIFIERS: Dict[str, float] = {
    "very": 1.5, "really": 1.5, "extremely": 2.0, "absolutely": 2.0,
    "totally": 1.5, "so": 1.3, "incredibly": 2.0, "super": 1.5,
}


class SentimentAnalyzer:
    """Configurable lexicon scorer.

    Custom lexicons can be supplied (the tests do, to pin exact values);
    the defaults are the built-in word lists above.
    """

    def __init__(
        self,
        positive: Optional[Iterable[str]] = None,
        negative: Optional[Iterable[str]] = None,
        negation_window: int = 2,
    ):
        self.positive = frozenset(positive) if positive else POSITIVE_WORDS
        self.negative = frozenset(negative) if negative else NEGATIVE_WORDS
        overlap = self.positive & self.negative
        if overlap:
            raise ValueError(
                f"lexicons overlap on: {sorted(overlap)[:5]}"
            )
        self.negation_window = negation_window

    def score(self, text: str) -> float:
        """Polarity in ``[-1, 1]``; 0.0 for neutral or empty text."""
        # Keep stopwords: the negation words are in the stopword list.
        tokens = tokenize(text, keep_stopwords=True)
        signed = 0.0
        polar_count = 0
        for position, token in enumerate(tokens):
            polarity = 0.0
            if token in self.positive:
                polarity = 1.0
            elif token in self.negative:
                polarity = -1.0
            if polarity == 0.0:
                continue
            weight = 1.0
            window = tokens[
                max(0, position - self.negation_window):position
            ]
            for prior in window:
                if prior in _NEGATIONS:
                    polarity = -polarity
                if prior in _INTENSIFIERS:
                    weight *= _INTENSIFIERS[prior]
            signed += polarity * weight
            polar_count += 1
        if polar_count == 0:
            return 0.0
        # Squash: one polar word scores +-0.5, saturating towards +-1.
        raw = signed / (polar_count + 1.0)
        return max(-1.0, min(1.0, raw))


_DEFAULT = SentimentAnalyzer()


def sentiment_score(text: str) -> float:
    """Score with the default lexicons (module-level convenience)."""
    return _DEFAULT.score(text)
