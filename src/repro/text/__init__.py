"""Text substrate: vocabularies and sentiment scoring.

* :mod:`~repro.text.vocab` — the structured vocabulary the synthetic topic
  model and tweet generator draw from (10 broad-topic word pools mirroring
  the paper's 10 manually grouped broad topics, plus filler words);
* :mod:`~repro.text.sentiment` — a lexicon-based polarity scorer used when
  sentiment is the diversity dimension.
"""

from .sentiment import SentimentAnalyzer, sentiment_score
from .vocab import BROAD_TOPICS, FILLER_WORDS, broad_topic_names

__all__ = [
    "BROAD_TOPICS",
    "FILLER_WORDS",
    "broad_topic_names",
    "SentimentAnalyzer",
    "sentiment_score",
]
