"""Structured vocabulary for synthetic news topics and tweets.

The paper trains 300 LDA topics on ~1M news articles and has researchers
group them into 10 broad topics (Section 7.1, Table 1).  We cannot ship
that corpus, so the synthetic topic model draws from these curated pools:
one word pool per broad topic (the same categories a 2013 news crawl
yields) plus a shared filler pool for the non-topical bulk of tweet text.

Pool sizes (~60 words each) are chosen so that 30 topics per broad topic,
40 keywords each, overlap partially within a broad topic but almost never
across broad topics — reproducing the structure that makes the paper's
label sets (drawn within one broad topic) overlap on posts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["BROAD_TOPICS", "FILLER_WORDS", "broad_topic_names"]

BROAD_TOPICS: Dict[str, Tuple[str, ...]] = {
    "politics": (
        "obama", "president", "barack", "michelle", "inauguration", "house",
        "administration", "congress", "presidential", "republican",
        "democrat", "election", "vote", "poll", "party", "political",
        "race", "candidate", "campaign", "electoral", "coalition", "senate",
        "senator", "representative", "bill", "legislation", "veto",
        "filibuster", "caucus", "primary", "ballot", "governor", "mayor",
        "whitehouse", "capitol", "washington", "policy", "reform",
        "immigration", "budget", "debt", "ceiling", "shutdown", "lobbyist",
        "scandal", "hearing", "testimony", "committee", "speaker",
        "minority", "majority", "leader", "whip", "amendment",
        "constitution", "supreme", "court", "justice", "nomination",
        "confirmation", "diplomacy",
    ),
    "sports": (
        "woods", "tiger", "golf", "masters", "championship", "mcilroy",
        "garcia", "pga", "augusta", "rory", "mickelson", "nfl", "super",
        "bowl", "draft", "ravens", "football", "baltimore", "patriots",
        "jets", "quarterback", "giants", "eagles", "nba", "basketball",
        "playoffs", "finals", "heat", "lebron", "spurs", "lakers",
        "baseball", "mlb", "yankees", "soccer", "league", "premier", "goal",
        "striker", "tennis", "wimbledon", "federer", "nadal", "serena",
        "olympics", "medal", "sprint", "marathon", "coach", "referee",
        "stadium", "season", "roster", "trade", "injury", "touchdown",
        "homerun", "pitcher", "batter", "hockey",
    ),
    "business": (
        "goog", "msft", "aapl", "nasdaq", "dow", "stocks", "shares",
        "market", "investor", "earnings", "profit", "revenue", "quarterly",
        "forecast", "economy", "economic", "growth", "recession", "fed",
        "federal", "reserve", "bernanke", "interest", "rate", "inflation",
        "unemployment", "jobs", "payroll", "hiring", "layoffs", "merger",
        "acquisition", "ipo", "valuation", "startup", "venture", "capital",
        "fund", "hedge", "bond", "treasury", "yield", "currency", "dollar",
        "euro", "yen", "trade", "tariff", "export", "import", "oil",
        "crude", "barrel", "gas", "energy", "retail", "consumer",
        "spending", "bank", "lending",
    ),
    "technology": (
        "apple", "iphone", "ipad", "android", "google", "microsoft",
        "windows", "samsung", "galaxy", "tablet", "smartphone", "app",
        "software", "hardware", "chip", "processor", "intel", "cloud",
        "server", "data", "privacy", "security", "hack", "breach",
        "malware", "encryption", "nsa", "surveillance", "internet",
        "broadband", "wireless", "network", "startup", "silicon", "valley",
        "facebook", "twitter", "social", "media", "search", "browser",
        "update", "release", "beta", "developer", "code", "programming",
        "robot", "drone", "patent", "lawsuit", "gadget", "wearable",
        "battery", "screen", "display", "camera", "sensor", "storage",
        "download",
    ),
    "entertainment": (
        "movie", "film", "premiere", "boxoffice", "hollywood", "actor",
        "actress", "director", "oscar", "academy", "award", "nominee",
        "grammy", "album", "single", "chart", "billboard", "concert",
        "tour", "tickets", "singer", "band", "pop", "rock", "hiphop",
        "rapper", "beyonce", "kanye", "taylor", "swift", "bieber", "gaga",
        "celebrity", "gossip", "divorce", "wedding", "television", "series",
        "episode", "season", "finale", "netflix", "hbo", "drama", "comedy",
        "sitcom", "reality", "show", "host", "ratings", "premieres",
        "trailer", "sequel", "franchise", "studio", "script", "casting",
        "redcarpet", "fashion", "designer",
    ),
    "health": (
        "health", "hospital", "doctor", "patient", "disease", "virus",
        "flu", "outbreak", "epidemic", "vaccine", "vaccination", "cancer",
        "tumor", "diabetes", "obesity", "diet", "nutrition", "exercise",
        "fitness", "surgery", "transplant", "drug", "medication",
        "antibiotic", "fda", "approval", "trial", "clinical", "study",
        "researchers", "medicare", "medicaid", "insurance", "coverage",
        "obamacare", "affordable", "care", "act", "mental", "depression",
        "anxiety", "therapy", "treatment", "diagnosis", "symptom",
        "infection", "bacteria", "heart", "stroke", "blood", "pressure",
        "cholesterol", "smoking", "tobacco", "alcohol", "addiction",
        "pregnancy", "birth", "aging", "alzheimer",
    ),
    "science": (
        "nasa", "space", "station", "astronaut", "launch", "rocket",
        "orbit", "satellite", "mars", "rover", "curiosity", "moon",
        "asteroid", "comet", "meteor", "telescope", "hubble", "galaxy",
        "planet", "exoplanet", "physics", "particle", "higgs", "collider",
        "cern", "quantum", "chemistry", "biology", "genome", "dna", "gene",
        "evolution", "species", "fossil", "dinosaur", "archaeology",
        "climate", "warming", "carbon", "emissions", "glacier", "arctic",
        "antarctic", "ocean", "coral", "ecosystem", "conservation",
        "wildlife", "research", "experiment", "laboratory", "discovery",
        "breakthrough", "journal", "peer", "theory", "hypothesis",
        "observation", "measurement", "energy",
    ),
    "world": (
        "syria", "syrian", "damascus", "assad", "rebels", "egypt", "cairo",
        "morsi", "protest", "protesters", "iran", "tehran", "nuclear",
        "sanctions", "israel", "palestinian", "gaza", "peace", "talks",
        "korea", "pyongyang", "seoul", "missile", "china", "beijing",
        "russia", "moscow", "putin", "europe", "brussels", "germany",
        "merkel", "france", "paris", "britain", "london", "parliament",
        "minister", "embassy", "ambassador", "united", "nations",
        "security", "council", "resolution", "refugee", "border", "crisis",
        "conflict", "ceasefire", "troops", "military", "airstrike",
        "insurgent", "taliban", "afghanistan", "kabul", "iraq", "baghdad",
        "diplomat",
    ),
    "crime": (
        "police", "arrest", "arrested", "suspect", "charged", "charges",
        "murder", "homicide", "shooting", "gunman", "victim", "witness",
        "investigation", "detective", "fbi", "robbery", "burglary", "theft",
        "fraud", "trial", "jury", "verdict", "guilty", "sentence",
        "sentenced", "prison", "jail", "parole", "probation", "attorney",
        "prosecutor", "defense", "judge", "courtroom", "evidence",
        "forensic", "dna", "warrant", "custody", "kidnapping", "assault",
        "manhunt", "fugitive", "hostage", "standoff", "bomb", "explosion",
        "terrorism", "terrorist", "plot", "conspiracy", "smuggling",
        "trafficking", "cartel", "gang", "violence", "shooter", "firearm",
        "ammunition", "crime",
    ),
    "weather": (
        "storm", "hurricane", "tornado", "twister", "cyclone", "typhoon",
        "flood", "flooding", "rain", "rainfall", "snow", "snowstorm",
        "blizzard", "ice", "freeze", "frost", "cold", "heat", "heatwave",
        "drought", "wildfire", "fire", "evacuation", "evacuate", "shelter",
        "damage", "destroyed", "debris", "power", "outage", "utility",
        "forecast", "meteorologist", "radar", "warning", "watch",
        "advisory", "emergency", "fema", "disaster", "relief", "recovery",
        "rebuilding", "wind", "gust", "hail", "lightning", "thunder",
        "temperature", "record", "degrees", "humidity", "landfall",
        "surge", "coastal", "inland", "season", "atlantic", "pacific",
    ),
}

# Non-topical bulk of tweet text: conversational filler sampled by the
# generator alongside topical keywords.
FILLER_WORDS: Tuple[str, ...] = (
    "today", "tonight", "morning", "breaking", "news", "report", "reports",
    "live", "video", "photo", "story", "read", "latest", "big",
    "new", "first", "last", "next", "people", "world", "time", "day",
    "week", "year", "really", "think", "know", "want", "need", "look",
    "looks", "feel", "right", "wrong", "never", "always", "still", "well",
    "much", "many", "more", "most", "some", "every", "thing", "things",
    "way", "back", "down", "over", "under", "about", "after", "before",
    "finally", "happening", "thread", "moment", "everyone", "anyone",
    "nobody", "actually", "literally", "basically", "apparently",
)


def broad_topic_names() -> List[str]:
    """The 10 broad-topic names, sorted for determinism."""
    return sorted(BROAD_TOPICS)
