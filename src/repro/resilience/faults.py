"""Deterministic fault injection for streaming tests and benchmarks.

The supervisor exists to survive hostile streams; this module manufactures
them on demand.  A :class:`FaultInjector` takes a clean, time-ordered post
sequence and applies five fault families, each gated by its own
probability and all driven by a single seeded :class:`random.Random` so a
given ``(seed, knobs, input)`` triple always yields the identical faulty
stream — tests can assert exact outcomes and benchmarks are repeatable.

* **drop** — the post never arrives;
* **duplicate** — the post arrives again a few positions later (same uid,
  same payload, exactly what an at-least-once transport produces);
* **delay** — the post keeps its timestamp but is displaced later in the
  arrival sequence, i.e. it shows up out of order;
* **reorder** — two adjacent arrivals swap places (a milder delay);
* **corrupt** — the payload itself is damaged: the value becomes NaN or
  ``±inf``, or the label set is emptied.

Every decision is recorded as a :class:`FaultEvent`, and the injector
exposes the uid sets tests need to reason about ground truth: which posts
were dropped, which were corrupted beyond repair, which merely moved.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.post import Post

__all__ = [
    "CrashSchedule",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "KillPoint",
]

_CORRUPTIONS = ("nan", "inf", "-inf", "empty-labels")


@dataclass(frozen=True)
class FaultEvent:
    """One fault applied to one post."""

    kind: str  # drop | duplicate | delay | reorder | corrupt
    uid: int
    detail: str = ""


@dataclass
class FaultReport:
    """Bookkeeping from one :meth:`FaultInjector.apply` run."""

    events: List[FaultEvent] = field(default_factory=list)
    dropped: Set[int] = field(default_factory=set)
    duplicated: Set[int] = field(default_factory=set)
    displaced: Set[int] = field(default_factory=set)
    corrupted: Set[int] = field(default_factory=set)
    redelivered: Set[int] = field(default_factory=set)

    def record(self, kind: str, uid: int, detail: str = "") -> None:
        self.events.append(FaultEvent(kind=kind, uid=uid, detail=detail))
        bucket = {
            "drop": self.dropped,
            "duplicate": self.duplicated,
            "delay": self.displaced,
            "reorder": self.displaced,
            "corrupt": self.corrupted,
            "redeliver": self.redelivered,
        }[kind]
        bucket.add(uid)


class FaultInjector:
    """Seeded, probabilistic post-stream mangler.

    Parameters
    ----------
    seed:
        Seed for the private RNG; equal seeds give equal fault sequences.
    drop, duplicate, delay, reorder, corrupt:
        Per-post probabilities for each fault family, each in ``[0, 1]``.
    displacement:
        Maximum number of positions a duplicated or delayed post is pushed
        later in the sequence (drawn uniformly from ``1..displacement``).
        A reorder buffer of at least this size can fully repair delay and
        reorder faults.
    redeliver:
        Per-post probability of an at-least-once **redelivery**: the post
        arrives again at the *end* of the stream, exactly as a transport
        that lost an ack re-delivers after its visibility timeout.  The
        redelivery draws happen after all other fault draws, so adding
        redelivery never perturbs the stream an existing seed produced.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        displacement: int = 3,
        redeliver: float = 0.0,
    ):
        for name, p in (
            ("drop", drop), ("duplicate", duplicate), ("delay", delay),
            ("reorder", reorder), ("corrupt", corrupt),
            ("redeliver", redeliver),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        if displacement < 1:
            raise ValueError("displacement must be at least 1")
        self.seed = seed
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.reorder = reorder
        self.corrupt = corrupt
        self.displacement = displacement
        self.redeliver = redeliver
        self.report = FaultReport()

    # -- fault families ---------------------------------------------------

    def _corrupt_post(self, rng: random.Random, post: Post,
                      report: FaultReport) -> Post:
        mode = rng.choice(_CORRUPTIONS)
        report.record("corrupt", post.uid, mode)
        if mode == "empty-labels":
            return Post(uid=post.uid, value=post.value,
                        labels=frozenset(), text=post.text)
        value = {"nan": math.nan, "inf": math.inf,
                 "-inf": -math.inf}[mode]
        return Post(uid=post.uid, value=value, labels=post.labels,
                    text=post.text)

    def _displace(self, stream: List[Post], index: int, offset: int) -> None:
        post = stream.pop(index)
        stream.insert(min(index + offset, len(stream)), post)

    # -- driver -----------------------------------------------------------

    def apply(self, posts: Sequence[Post]) -> List[Post]:
        """Return a faulty copy of ``posts``; details land in ``report``.

        Calling ``apply`` again resets :attr:`report` and replays the same
        RNG sequence from :attr:`seed`, so repeated applications to the
        same input are identical.
        """
        rng = random.Random(self.seed)
        report = FaultReport()
        stream: List[Post] = []
        # Payload faults and insertions first, one rng draw block per post
        # so the decision sequence is independent of list surgery below.
        pending_dupes: List[Tuple[int, Post]] = []
        for index, post in enumerate(posts):
            if rng.random() < self.drop:
                report.record("drop", post.uid)
                continue
            mangled = post
            if rng.random() < self.corrupt:
                mangled = self._corrupt_post(rng, post, report)
            stream.append(mangled)
            if rng.random() < self.duplicate:
                offset = rng.randint(1, self.displacement)
                report.record("duplicate", post.uid, f"+{offset}")
                pending_dupes.append((len(stream) - 1 + offset, mangled))
        for position, post in pending_dupes:
            stream.insert(min(position, len(stream)), post)
        # Ordering faults on the surviving sequence.
        for index in range(len(stream)):
            if rng.random() < self.delay:
                offset = rng.randint(1, self.displacement)
                report.record("delay", stream[index].uid, f"+{offset}")
                self._displace(stream, index, offset)
        for index in range(len(stream) - 1):
            if rng.random() < self.reorder:
                report.record("reorder", stream[index].uid, "swap")
                stream[index], stream[index + 1] = (
                    stream[index + 1], stream[index]
                )
        # Redelivery last, with draws consumed after every other family,
        # so existing (seed, knobs) streams are byte-identical when
        # redeliver stays 0.
        tail: List[Post] = []
        for post in list(stream):
            if rng.random() < self.redeliver:
                report.record("redeliver", post.uid)
                tail.append(post)
        stream.extend(tail)
        self.report = report
        return stream

    def clean_uids(self, posts: Iterable[Post]) -> Set[int]:
        """Uids from ``posts`` that were neither dropped nor corrupted.

        These are the posts a drop-and-quarantine supervisor is expected to
        admit (possibly late, possibly deduplicated) and therefore cover.
        """
        return {
            p.uid for p in posts
            if p.uid not in self.report.dropped
            and p.uid not in self.report.corrupted
        }


class KillPoint(Exception):
    """The simulated ``kill -9``.

    Deliberately **not** a :class:`~repro.errors.ReproError`: library
    code that politely absorbs its own error family must never absorb a
    process death.  Raised by :class:`CrashSchedule` at the scheduled
    site; the test harness catches it, abandons every in-memory object
    (as death would), and exercises recovery from what is on disk.
    """


class CrashSchedule:
    """A seeded kill-point: die at the n-th visit to one fault site.

    The durable ingest machinery (:mod:`repro.ingest`) calls its
    ``fault_hook`` at every instant a real process could die —
    ``wal.append``, ``wal.sync``, ``wal.rotate``, ``apply.before``,
    ``apply.after``, ``commit.before``, ``commit.after``.  A schedule is
    such a hook: it counts visits per site and raises :class:`KillPoint`
    when the chosen ``(site, hit)`` pair comes up.

    **Torn writes.**  At the ``wal.append`` site the schedule can die
    *mid-write*: it persists a strict prefix of the record frame before
    raising, which is exactly the bytes a power cut mid-``write(2)``
    leaves behind.  Recovery must truncate that tail.

    Parameters
    ----------
    site:
        The site name to die at.
    hit:
        Die on this visit (1-based) to ``site``.
    torn_bytes:
        When dying at ``wal.append``: persist this many bytes of the
        frame first (clamped to ``len(frame) - 1`` so the frame is
        always incomplete).  ``None`` dies cleanly before writing.
    """

    SITES: Tuple[str, ...] = (
        "wal.append", "wal.sync", "wal.rotate",
        "apply.before", "apply.after",
        "commit.before", "commit.after",
    )

    def __init__(self, site: str, hit: int = 1, *,
                 torn_bytes: Optional[int] = None):
        if hit < 1:
            raise ValueError(f"hit must be >= 1: {hit}")
        if torn_bytes is not None and torn_bytes < 1:
            raise ValueError(f"torn_bytes must be >= 1: {torn_bytes}")
        self.site = site
        self.hit = hit
        self.torn_bytes = torn_bytes
        self.visits: Dict[str, int] = {}
        self.fired = False

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        *,
        max_hit: int = 4,
        torn_probability: float = 0.5,
    ) -> "CrashSchedule":
        """Draw a schedule from a seed — the randomized crash suite's
        generator.  Equal seeds give equal schedules."""
        rng = random.Random(seed)
        site = rng.choice(list(sites if sites is not None else cls.SITES))
        hit = rng.randint(1, max_hit)
        torn = None
        if site == "wal.append" and rng.random() < torn_probability:
            torn = rng.randint(1, 48)
        return cls(site, hit, torn_bytes=torn)

    def __call__(self, site: str, **context: object) -> None:
        self.visits[site] = self.visits.get(site, 0) + 1
        if self.fired or site != self.site:
            return
        if self.visits[site] != self.hit:
            return
        self.fired = True
        if self.torn_bytes is not None:
            frame = context.get("frame")
            handle = context.get("handle")
            if isinstance(frame, (bytes, bytearray)) \
                    and handle is not None:
                keep = min(self.torn_bytes, len(frame) - 1)
                handle.write(bytes(frame[:keep]))  # type: ignore[union-attr]
                handle.flush()  # type: ignore[union-attr]
        raise KillPoint(
            f"scheduled crash at {site} (visit {self.hit})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        torn = f", torn_bytes={self.torn_bytes}" \
            if self.torn_bytes is not None else ""
        return f"CrashSchedule({self.site!r}, hit={self.hit}{torn})"
