"""Degradation ladders: trade solution quality for bounded latency.

A ladder is an ordered tuple of algorithm names, best quality first.  When
the active rung blows its time budget (or raises), the runtime records a
:class:`DowngradeEvent` and steps down one rung; the bottom rung is the
always-works fallback and is never abandoned.  The paper's own quality
ordering supplies the defaults: ``opt`` > ``greedy_sc`` > ``scan+`` in
batch, ``stream_greedy_sc+`` > ``stream_scan+`` > ``stream_scan`` in
streaming (Sections 4-5 and the Figure 13/14 timing experiments).

:func:`solve_with_ladder` is the batch half, used by
:meth:`repro.pipeline.DiversificationPipeline.digest`; the streaming half
lives inside :class:`~repro.resilience.supervisor.StreamSupervisor`, which
replays its arrival journal into the next rung so no already-arrived post
loses coverage.
"""

from __future__ import annotations

import time as _time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.registry import solve
from ..core.solution import Solution
from ..core.streaming import _STREAM_FACTORIES
from ..errors import ReproError

__all__ = [
    "DowngradeEvent",
    "DEFAULT_BATCH_LADDER",
    "DEFAULT_STREAM_LADDER",
    "solve_with_ladder",
    "validate_stream_ladder",
]

DEFAULT_BATCH_LADDER: Tuple[str, ...] = ("opt", "greedy_sc", "scan+")
DEFAULT_STREAM_LADDER: Tuple[str, ...] = (
    "stream_greedy_sc+", "stream_scan+", "stream_scan",
)


@dataclass(frozen=True)
class DowngradeEvent:
    """One step down a degradation ladder.

    ``trigger`` is ``"budget"`` (the rung finished but took longer than
    allowed) or ``"error"`` (the rung raised); ``at`` is the simulated
    stream time of the downgrade for streaming ladders and ``None`` for
    batch; ``elapsed`` is the wall-clock cost of the abandoned attempt.
    """

    from_algorithm: str
    to_algorithm: str
    trigger: str
    elapsed: float = 0.0
    at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DowngradeEvent":
        """Inverse of :meth:`to_dict`."""
        at = payload.get("at")
        return cls(
            from_algorithm=str(payload["from_algorithm"]),
            to_algorithm=str(payload["to_algorithm"]),
            trigger=str(payload["trigger"]),
            elapsed=float(payload.get("elapsed", 0.0)),
            at=None if at is None else float(at),
        )


def validate_stream_ladder(ladder: Sequence[str]) -> Tuple[str, ...]:
    """Check every rung names a registered streaming algorithm."""
    rungs = tuple(ladder)
    if not rungs:
        raise ReproError("a degradation ladder needs at least one rung")
    unknown = [name for name in rungs if name not in _STREAM_FACTORIES]
    if unknown:
        raise ReproError(
            f"unknown streaming algorithms in ladder: {unknown}; "
            f"choose from {sorted(_STREAM_FACTORIES)}"
        )
    return rungs


def solve_with_ladder(
    instance: Instance,
    ladder: Sequence[str] = DEFAULT_BATCH_LADDER,
    *,
    budget: Optional[float] = None,
    clock: Callable[[], float] = _time.perf_counter,
    start_rung: int = 0,
) -> Tuple[Solution, int, Tuple[DowngradeEvent, ...]]:
    """Solve ``instance``, stepping down ``ladder`` on overrun or error.

    Returns ``(solution, rung, downgrades)`` where ``rung`` indexes the
    ladder entry that produced the accepted solution — callers that want
    sticky degradation (stay down once down) pass it back as
    ``start_rung`` on the next digest.

    A rung's result is *discarded* when it exceeds ``budget`` seconds:
    by then the deadline the budget models has already passed, and
    accepting a late answer would teach the caller nothing about which
    rung it can afford.  Exceptions (e.g.
    :class:`~repro.errors.AlgorithmBudgetExceeded` from the exact DP on a
    too-large instance) downgrade the same way.  The bottom rung is
    always accepted — if *it* raises, there is no ladder left and the
    error propagates.
    """
    rungs = tuple(ladder)
    if not rungs:
        raise ReproError("a degradation ladder needs at least one rung")
    if not 0 <= start_rung < len(rungs):
        raise ReproError(
            f"start_rung {start_rung} outside ladder of {len(rungs)} rungs"
        )
    downgrades = []
    rung = start_rung
    while True:
        name = rungs[rung]
        last = rung == len(rungs) - 1
        started = clock()
        try:
            solution = solve(name, instance)
        except ReproError:
            if last:
                raise
            downgrades.append(DowngradeEvent(
                from_algorithm=name,
                to_algorithm=rungs[rung + 1],
                trigger="error",
                elapsed=clock() - started,
            ))
            rung += 1
            continue
        elapsed = clock() - started
        if budget is not None and elapsed > budget and not last:
            downgrades.append(DowngradeEvent(
                from_algorithm=name,
                to_algorithm=rungs[rung + 1],
                trigger="budget",
                elapsed=elapsed,
            ))
            rung += 1
            continue
        return solution, rung, tuple(downgrades)
