"""The stream supervisor: sanitize, watch, checkpoint, degrade.

:class:`StreamSupervisor` wraps the strict streaming solvers of
:mod:`repro.core.streaming` with the machinery a production consumer needs
when the feed is hostile and the clock is real:

* **Sanitization** — every raw arrival passes through a
  :class:`~repro.resilience.policies.SanitizationPolicy` before the
  algorithm sees it: non-finite values, empty label sets, duplicate uids
  and out-of-order arrivals are raised on, quarantined, or repaired per
  policy, with a bounded reorder buffer restoring mildly shuffled streams.
* **Watchdog + degradation ladder** — each delegated call is timed with an
  injectable clock; a call that overruns ``arrival_budget`` (or raises)
  steps the supervisor down its ladder of algorithms, rebuilding the next
  rung by replaying the arrival journal so no admitted post loses
  coverage.
* **Checkpoint/restore** — :meth:`checkpoint` snapshots the journal,
  buffer, and emission record as a JSON-safe
  :class:`~repro.resilience.checkpoint.Checkpoint`; :meth:`restore`
  rebuilds a supervisor from one by journal replay and verifies the replay
  reproduced the recorded emissions bit-for-bit.
* **Health counters** — arrivals, quarantines, emissions, downgrades,
  checkpoints and friends are tallied on :class:`SupervisorHealth` for the
  observability layer to scrape.

The deterministic core makes all of this cheap: a streaming algorithm's
state is a pure function of its admitted arrival sequence, so the journal
doubles as both the recovery log and the downgrade migration path.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, \
    Set, Tuple, Union

import logging

from ..core.instance import Instance
from ..core.post import Post
from ..core.streaming import _STREAM_FACTORIES
from ..observability import structlog
from ..errors import (
    CheckpointError,
    EmissionInvariantError,
    SanitizationError,
    StreamOrderError,
)
from ..observability import facade as _obs
from ..stream.events import Emission, StreamingAlgorithm
from ..stream.runner import StreamResult
from .checkpoint import Checkpoint
from .ladder import DowngradeEvent, validate_stream_ladder
from .policies import CLAMP, DROP, RAISE, QuarantineRecord, \
    SanitizationPolicy

__all__ = [
    "ResilienceConfig",
    "SupervisorHealth",
    "StreamSupervisor",
    "run_supervised",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Opt-in resilience settings for the high-level pipeline.

    Passing one of these to :class:`repro.pipeline.DiversificationPipeline`
    routes the streaming path through a :class:`StreamSupervisor` and the
    batch path through :func:`~repro.resilience.ladder.solve_with_ladder`.
    ``None`` ladders fall back to the pipeline's configured single
    algorithm, i.e. supervision without degradation.
    """

    policy: SanitizationPolicy = SanitizationPolicy()
    stream_ladder: Optional[Tuple[str, ...]] = None
    batch_ladder: Optional[Tuple[str, ...]] = None
    arrival_budget: Optional[float] = None
    digest_budget: Optional[float] = None
    clock: Callable[[], float] = _time.perf_counter


@dataclass
class SupervisorHealth:
    """Monotone counters describing one supervisor's lifetime."""

    arrivals: int = 0
    admitted: int = 0
    quarantined: int = 0
    repaired: int = 0
    duplicates: int = 0
    reordered: int = 0
    emissions: int = 0
    suppressed: int = 0
    downgrades: int = 0
    checkpoints: int = 0
    restores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class StreamSupervisor:
    """Resilient front-end for the streaming MQDP algorithms.

    Parameters
    ----------
    labels:
        The query universe (labels a post may carry).
    lam, tau:
        Coverage threshold and decision delay, as everywhere else.
    ladder:
        Algorithm names, best quality first; a single name (or 1-tuple)
        disables degradation.  Validated against the streaming registry.
    policy:
        A :class:`SanitizationPolicy`; defaults to drop-and-quarantine
        with no reorder buffer.
    arrival_budget:
        Wall-clock seconds allowed per delegated algorithm call
        (``on_arrival`` / ``on_deadline``); ``None`` disables the
        watchdog.
    clock:
        Monotonic time source for the watchdog — injectable so tests can
        trigger downgrades deterministically.
    """

    def __init__(
        self,
        labels: Iterable[str],
        lam: float,
        tau: float = 0.0,
        *,
        ladder: Union[str, Sequence[str]] = ("stream_scan+",),
        policy: Optional[SanitizationPolicy] = None,
        arrival_budget: Optional[float] = None,
        clock: Callable[[], float] = _time.perf_counter,
    ):
        if isinstance(ladder, str):
            ladder = (ladder,)
        self.ladder: Tuple[str, ...] = validate_stream_ladder(ladder)
        self.labels: Tuple[str, ...] = tuple(sorted(set(labels)))
        self._label_set = frozenset(self.labels)
        self.lam = float(lam)
        self.tau = float(tau)
        self.policy = policy if policy is not None else SanitizationPolicy()
        self.arrival_budget = arrival_budget
        self._clock = clock
        self.health = SupervisorHealth()
        self.quarantine: List[QuarantineRecord] = []
        self.downgrades: List[DowngradeEvent] = []
        self._rung = 0
        self._algorithm: StreamingAlgorithm = self._build(0)
        self._journal: List[Post] = []
        self._journal_uids: Set[int] = set()
        self._buffer: List[Tuple[float, int, Post]] = []
        self._buffer_seq = 0
        self._seen: Set[int] = set()
        self._emitted: Dict[int, float] = {}
        self._emissions: List[Emission] = []
        self._last_value = float("-inf")
        # After a downgrade the active rung cannot know what earlier rungs
        # emitted, so a re-emission of a recorded uid stops being an
        # algorithm bug and becomes expected overlap to suppress.
        self._tolerate_reemission = False

    # -- introspection ----------------------------------------------------

    @property
    def algorithm_name(self) -> str:
        """Name of the currently active ladder rung."""
        return self.ladder[self._rung]

    @property
    def rung(self) -> int:
        return self._rung

    @property
    def journal(self) -> Tuple[Post, ...]:
        """Every admitted post, in admission order."""
        return tuple(self._journal)

    @property
    def emissions(self) -> Tuple[Emission, ...]:
        """Every emission so far, in emission order."""
        return tuple(self._emissions)

    def admitted_instance(self) -> Instance:
        """The admitted posts as a batch instance, for cover verification."""
        return Instance(self._journal, self.lam, labels=self.labels)

    def accepted(self, uid: int) -> bool:
        """True when an arrival with this uid passed sanitization — it is
        either admitted (in the journal) or waiting in the reorder
        buffer.  Quarantined arrivals return False, which is how the
        pipeline knows not to register their SimHash fingerprints."""
        return uid in self._seen

    # -- construction helpers ---------------------------------------------

    def _build(self, rung: int) -> StreamingAlgorithm:
        return _STREAM_FACTORIES[self.ladder[rung]](
            self.labels, self.lam, self.tau
        )

    # -- sanitization ------------------------------------------------------

    def _reject(self, post: Post, reason: str, action: str,
                repaired: Optional[Post] = None) -> None:
        self.quarantine.append(QuarantineRecord(
            post=post, reason=reason, action=action, repaired=repaired,
        ))
        if repaired is None:
            self.health.quarantined += 1
            _obs.count("supervisor.quarantined")
        else:
            self.health.repaired += 1
            _obs.count("supervisor.repaired")
        structlog.emit(
            "supervisor.quarantine" if repaired is None
            else "supervisor.repair",
            level=logging.WARNING,
            uid=post.uid,
            reason=reason,
            action=action,
        )

    def _sanitize_payload(self, post: Post) -> Optional[Post]:
        """Apply value/label/duplicate policies; None means quarantined."""
        if not math.isfinite(post.value):
            action = self.policy.on_malformed_value
            reason = f"non-finite value {post.value!r}"
            if action == RAISE:
                raise SanitizationError(
                    f"post {post.uid}: {reason}"
                )
            if action == DROP:
                self._reject(post, reason, DROP)
                return None
            frontier = (
                self._last_value if math.isfinite(self._last_value) else 0.0
            )
            repaired = Post(uid=post.uid, value=frontier,
                            labels=post.labels, text=post.text)
            self._reject(post, reason, CLAMP, repaired=repaired)
            post = repaired
        known = post.labels & self._label_set
        if not known:
            reason = (
                "empty label set" if not post.labels
                else f"no known labels in {sorted(post.labels)}"
            )
            if self.policy.on_empty_labels == RAISE:
                raise SanitizationError(f"post {post.uid}: {reason}")
            self._reject(post, reason, DROP)
            return None
        if known != post.labels:
            repaired = Post(uid=post.uid, value=post.value,
                            labels=known, text=post.text)
            self._reject(post, "unknown labels projected out", CLAMP,
                         repaired=repaired)
            post = repaired
        if post.uid in self._seen:
            self.health.duplicates += 1
            if self.policy.on_duplicate == RAISE:
                raise SanitizationError(
                    f"post {post.uid} arrived twice"
                )
            self._reject(post, "duplicate uid", DROP)
            return None
        return post

    # -- event flow --------------------------------------------------------

    def ingest(self, post: Post) -> List[Emission]:
        """Feed one raw arrival; returns the emissions it triggered."""
        self.health.arrivals += 1
        _obs.count("supervisor.arrivals")
        clean = self._sanitize_payload(post)
        if clean is None:
            return []
        self._seen.add(clean.uid)
        heapq.heappush(
            self._buffer, (clean.value, self._buffer_seq, clean)
        )
        self._buffer_seq += 1
        out: List[Emission] = []
        while len(self._buffer) > self.policy.reorder_buffer:
            out.extend(self._admit(self._release()))
        return out

    def _release(self) -> Post:
        _, seq, post = heapq.heappop(self._buffer)
        if any(entry[1] < seq for entry in self._buffer):
            self.health.reordered += 1
        return post

    def _admit(self, post: Post) -> List[Emission]:
        if post.value < self._last_value:
            action = self.policy.on_out_of_order
            reason = (
                f"value {post.value} behind admitted frontier "
                f"{self._last_value}"
            )
            if action == RAISE:
                raise StreamOrderError(f"post {post.uid}: {reason}")
            if action == DROP:
                self._reject(post, reason, DROP)
                return []
            repaired = Post(uid=post.uid, value=self._last_value,
                            labels=post.labels, text=post.text)
            self._reject(post, reason, CLAMP, repaired=repaired)
            post = repaired
        out = self._fire_deadlines(post.value)
        self._last_value = post.value
        self._journal.append(post)
        self._journal_uids.add(post.uid)
        self.health.admitted += 1
        if _obs.enabled():
            _obs.count("supervisor.admitted")
            _obs.set_gauge("supervisor.journal_depth", len(self._journal))
        out.extend(self._delegate("on_arrival", post, at=post.value))
        return out

    def _fire_deadlines(self, until: float) -> List[Emission]:
        out: List[Emission] = []
        while True:
            deadline = self._algorithm.next_deadline()
            if deadline is None or deadline >= until:
                return out
            out.extend(self._delegate("on_deadline", deadline, at=deadline))

    def flush(self) -> List[Emission]:
        """Drain the reorder buffer and every pending deadline."""
        out: List[Emission] = []
        while self._buffer:
            out.extend(self._admit(self._release()))
        while True:
            deadline = self._algorithm.next_deadline()
            if deadline is None:
                return out
            out.extend(self._delegate("on_deadline", deadline, at=deadline))

    # -- delegation, watchdog, degradation --------------------------------

    def _delegate(self, method: str, arg, at: float) -> List[Emission]:
        started = self._clock()
        try:
            batch = getattr(self._algorithm, method)(arg)
        except Exception as error:
            if self._rung + 1 >= len(self.ladder):
                raise
            # The journal already contains the arrival that crashed the
            # rung, so the replay below retries it on the next algorithm.
            return self._downgrade(
                "error", at, self._clock() - started, repr(error)
            )
        elapsed = self._clock() - started
        out = self._record(batch)
        if (
            self.arrival_budget is not None
            and elapsed > self.arrival_budget
            and self._rung + 1 < len(self.ladder)
        ):
            out.extend(self._downgrade("budget", at, elapsed))
        return out

    def _record(self, batch: Iterable[Emission]) -> List[Emission]:
        out: List[Emission] = []
        for emission in batch:
            uid = emission.post.uid
            if uid in self._emitted:
                if self._tolerate_reemission:
                    self.health.suppressed += 1
                    continue
                raise EmissionInvariantError(
                    f"post {uid} emitted twice "
                    f"(first at {self._emitted[uid]})"
                )
            if uid not in self._journal_uids:
                raise EmissionInvariantError(
                    f"post {uid} emitted before admission"
                )
            if emission.emitted_at < emission.post.value:
                raise EmissionInvariantError(
                    f"post {uid} emitted before its own timestamp"
                )
            self._emitted[uid] = emission.emitted_at
            self._emissions.append(emission)
            self.health.emissions += 1
            _obs.count("supervisor.emissions")
            out.append(emission)
        return out

    def _downgrade(self, trigger: str, at: float, elapsed: float,
                   detail: str = "") -> List[Emission]:
        previous = self.ladder[self._rung]
        self._rung += 1
        self.downgrades.append(DowngradeEvent(
            from_algorithm=previous,
            to_algorithm=self.ladder[self._rung],
            trigger=trigger,
            elapsed=elapsed,
            at=at,
        ))
        self.health.downgrades += 1
        if _obs.enabled():
            _obs.count("supervisor.downgrades")
            _obs.set_gauge("supervisor.rung", self._rung)
        structlog.emit(
            "supervisor.downgrade",
            level=logging.WARNING,
            from_algorithm=previous,
            to_algorithm=self.ladder[self._rung],
            trigger=trigger,
            elapsed=elapsed,
        )
        self._tolerate_reemission = True
        self._algorithm, replayed = self._replay(self._rung)
        # Posts the new rung selected during replay but the old rung never
        # emitted are emitted now: they are decisions genuinely made at the
        # downgrade point, and dropping them could leave admitted posts
        # uncovered.  Posts both rungs selected stay suppressed.
        carryover: List[Emission] = []
        for emission in replayed:
            uid = emission.post.uid
            if uid in self._emitted:
                self.health.suppressed += 1
                continue
            stamped = Emission(post=emission.post, emitted_at=at)
            self._emitted[uid] = stamped.emitted_at
            self._emissions.append(stamped)
            self.health.emissions += 1
            carryover.append(stamped)
        return carryover

    def _replay(
        self, rung: int
    ) -> Tuple[StreamingAlgorithm, List[Emission]]:
        """Rebuild the rung's algorithm by replaying the journal.

        Pending end-of-journal deadlines are deliberately left unfired —
        the stream continues after a downgrade or restore, and the live
        event flow will fire them at the right simulated times.
        """
        algorithm = self._build(rung)
        emissions: List[Emission] = []
        for post in self._journal:
            while True:
                deadline = algorithm.next_deadline()
                if deadline is None or deadline >= post.value:
                    break
                emissions.extend(algorithm.on_deadline(deadline))
            emissions.extend(algorithm.on_arrival(post))
        return algorithm, emissions

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the supervisor; safe to take between any two events."""
        self.health.checkpoints += 1
        buffered = tuple(entry[2] for entry in sorted(self._buffer))
        return Checkpoint(
            ladder=self.ladder,
            rung=self._rung,
            labels=self.labels,
            lam=self.lam,
            tau=self.tau,
            journal=tuple(self._journal),
            buffered=buffered,
            seen_uids=tuple(sorted(self._seen)),
            last_value=self._last_value,
            emissions=tuple(
                (e.post.uid, e.emitted_at) for e in self._emissions
            ),
            counters=self.health.as_dict(),
        )

    @classmethod
    def restore(
        cls,
        checkpoint: Checkpoint,
        *,
        policy: Optional[SanitizationPolicy] = None,
        arrival_budget: Optional[float] = None,
        clock: Callable[[], float] = _time.perf_counter,
    ) -> "StreamSupervisor":
        """Rebuild a supervisor from a checkpoint by journal replay.

        When the checkpointed run never downgraded, the replayed emission
        sequence must reproduce the recorded one bit-for-bit; any
        divergence raises :class:`~repro.errors.CheckpointError` rather
        than resuming from a state that provably differs from the
        pre-crash one.  (After a downgrade the record spans two
        algorithms and single-rung replay cannot reproduce the prefix, so
        the equivalence check is skipped and recorded uids are simply
        suppressed.)
        """
        supervisor = cls(
            checkpoint.labels,
            checkpoint.lam,
            checkpoint.tau,
            ladder=checkpoint.ladder,
            policy=policy,
            arrival_budget=arrival_budget,
            clock=clock,
        )
        supervisor._rung = checkpoint.rung
        supervisor._journal = list(checkpoint.journal)
        supervisor._journal_uids = {p.uid for p in checkpoint.journal}
        supervisor._seen = set(checkpoint.seen_uids)
        supervisor._last_value = checkpoint.last_value
        for name, value in checkpoint.counters.items():
            if hasattr(supervisor.health, name):
                setattr(supervisor.health, name, value)
        algorithm, replayed = supervisor._replay(checkpoint.rung)
        supervisor._algorithm = algorithm
        if checkpoint.counters.get("downgrades", 0):
            supervisor._tolerate_reemission = True
        else:
            observed = tuple(
                (e.post.uid, e.emitted_at) for e in replayed
            )
            if observed != checkpoint.emissions:
                raise CheckpointError(
                    "journal replay diverged from the recorded emission "
                    f"sequence: replayed {observed!r}, recorded "
                    f"{checkpoint.emissions!r}"
                )
        by_uid = {p.uid: p for p in checkpoint.journal}
        for uid, emitted_at in checkpoint.emissions:
            if uid not in by_uid:
                raise CheckpointError(
                    f"recorded emission of uid {uid} absent from journal"
                )
            supervisor._emitted[uid] = emitted_at
            supervisor._emissions.append(
                Emission(post=by_uid[uid], emitted_at=emitted_at)
            )
        for post in checkpoint.buffered:
            heapq.heappush(
                supervisor._buffer,
                (post.value, supervisor._buffer_seq, post),
            )
            supervisor._buffer_seq += 1
        supervisor.health.restores += 1
        return supervisor


def run_supervised(
    supervisor: StreamSupervisor, posts: Sequence[Post]
) -> StreamResult:
    """Drive ``supervisor`` over ``posts`` — the resilient ``run_stream``.

    Unlike :func:`repro.stream.runner.run_stream` the input need not be
    clean or time-ordered; the supervisor's policy decides what survives.
    The result's algorithm name records the final ladder rung.
    """
    emissions: List[Emission] = []
    tick = _obs.clock()
    with _obs.span(
        "supervisor.run", algorithm=supervisor.algorithm_name
    ) as span:
        start = tick()
        for post in posts:
            emissions.extend(supervisor.ingest(post))
        emissions.extend(supervisor.flush())
        elapsed = tick() - start
        span.set_attribute("emissions", len(emissions))
        span.set_attribute("final_rung", supervisor.rung)
    return StreamResult(
        algorithm=f"supervised:{supervisor.algorithm_name}",
        emissions=tuple(emissions),
        elapsed=elapsed,
    )
