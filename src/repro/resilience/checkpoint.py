"""Checkpoint format for the stream supervisor.

A checkpoint is everything needed to resurrect a crashed consumer at its
exact pre-crash emission state: the supervisor configuration (ladder,
coverage threshold, decision delay), the **arrival journal** — every post
admitted so far, in admission order — plus the reorder-buffer contents, the
duplicate-detection uid set, and the emission record ``(uid, emitted_at)``.

The streaming algorithms are deterministic functions of their admitted
arrival sequence, so the journal *is* the algorithm state: restore builds a
fresh algorithm and replays the journal through the same event loop, then
verifies the replayed emissions match the recorded ones bit-for-bit (see
:meth:`repro.resilience.supervisor.StreamSupervisor.restore`).  Storing the
journal instead of pickled internals keeps the format a plain JSON document
— versionable, inspectable with ``jq``, and safe to load from untrusted
storage.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple, Union

from ..core.post import Post
from ..errors import CheckpointError
from ..ioutil import atomic_write_text

__all__ = ["Checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def _post_to_dict(post: Post) -> Dict[str, Any]:
    return post.to_dict()


def _post_from_dict(payload: Mapping[str, Any]) -> Post:
    try:
        return Post.from_dict(payload)
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed post record: {payload!r}") \
            from error


@dataclass(frozen=True)
class Checkpoint:
    """A serializable snapshot of a :class:`StreamSupervisor`.

    ``emissions`` holds ``(uid, emitted_at)`` pairs in emission order; the
    posts themselves are recoverable from the journal, which contains every
    admitted post.  ``buffered`` lists reorder-buffer residents that have
    arrived but are not yet admitted (and hence are absent from the
    journal).
    """

    ladder: Tuple[str, ...]
    rung: int
    labels: Tuple[str, ...]
    lam: float
    tau: float
    journal: Tuple[Post, ...]
    buffered: Tuple[Post, ...]
    seen_uids: Tuple[int, ...]
    last_value: float
    emissions: Tuple[Tuple[int, float], ...]
    counters: Mapping[str, int]
    version: int = CHECKPOINT_VERSION

    @property
    def algorithm(self) -> str:
        """Name of the rung that was active when the snapshot was taken."""
        return self.ladder[self.rung]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "ladder": list(self.ladder),
            "rung": self.rung,
            "labels": list(self.labels),
            "lam": self.lam,
            "tau": self.tau,
            "journal": [_post_to_dict(p) for p in self.journal],
            "buffered": [_post_to_dict(p) for p in self.buffered],
            "seen_uids": list(self.seen_uids),
            "last_value": repr(self.last_value),
            "emissions": [[uid, at] for uid, at in self.emissions],
            "counters": dict(self.counters),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Checkpoint":
        try:
            version = int(payload["version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version}"
                )
            return cls(
                ladder=tuple(payload["ladder"]),
                rung=int(payload["rung"]),
                labels=tuple(payload["labels"]),
                lam=float(payload["lam"]),
                tau=float(payload["tau"]),
                journal=tuple(
                    _post_from_dict(p) for p in payload["journal"]
                ),
                buffered=tuple(
                    _post_from_dict(p) for p in payload["buffered"]
                ),
                seen_uids=tuple(int(u) for u in payload["seen_uids"]),
                last_value=float(payload["last_value"]),
                emissions=tuple(
                    (int(uid), float(at))
                    for uid, at in payload["emissions"]
                ),
                counters={
                    str(k): int(v)
                    for k, v in payload["counters"].items()
                },
                version=version,
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                "malformed checkpoint payload"
            ) from error

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError("checkpoint is not valid JSON") \
                from error
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint must be a JSON object")
        return cls.from_dict(payload)

    # -- durable files ----------------------------------------------------

    def save(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Write this checkpoint to ``path`` crash-atomically.

        Temp file + fsync + atomic rename (:mod:`repro.ioutil`): a crash
        mid-save leaves either the previous checkpoint or the new one,
        never a truncated, unreadable hybrid.  Plain ``open(...).write``
        can tear — a checkpoint that fails exactly when you need it.
        """
        atomic_write_text(os.fspath(path), self.to_json())

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`.

        Raises :class:`~repro.errors.CheckpointError` for a missing or
        unreadable file, same as for a malformed payload.
        """
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint at {os.fspath(path)!r}: {error}"
            ) from error
        return cls.from_json(text)
