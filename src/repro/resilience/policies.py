"""Input-sanitization policies for the stream supervisor.

Real microblog feeds are dirty: timestamps come back NaN from a broken
parser, a matcher bug yields an empty label set, network retries duplicate
posts, and fan-in from several shards delivers arrivals out of order.  The
core algorithms (:mod:`repro.core.streaming`) are deliberately strict — they
assume clean, time-ordered input — so the cleaning lives here, in one
configurable policy object consumed by
:class:`~repro.resilience.supervisor.StreamSupervisor`.

Each malformation class gets its own knob:

* ``on_malformed_value`` — the post's diversity value is NaN or infinite;
* ``on_empty_labels`` — the post matches no query at all;
* ``on_duplicate`` — a uid the supervisor has already seen arrives again;
* ``on_out_of_order`` — a post regresses behind the admitted frontier even
  after the bounded reorder buffer had its chance to fix it.

The actions are ``"raise"`` (refuse the stream loudly), ``"drop"``
(quarantine the post and keep going) and — where a repair is meaningful —
``"clamp"`` (rewrite the offending value to the nearest legal one and admit
the repaired post).  Every non-``raise`` decision is recorded as a
:class:`QuarantineRecord` so no data loss is ever silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.post import Post
from ..errors import ReproError

__all__ = [
    "SanitizationPolicy",
    "QuarantineRecord",
    "RAISE",
    "DROP",
    "CLAMP",
]

RAISE = "raise"
DROP = "drop"
CLAMP = "clamp"

_VALUE_ACTIONS = (RAISE, DROP, CLAMP)
_LABEL_ACTIONS = (RAISE, DROP)
_ORDER_ACTIONS = (RAISE, DROP, CLAMP)
_DUPLICATE_ACTIONS = (RAISE, DROP)


@dataclass(frozen=True)
class QuarantineRecord:
    """One post the supervisor refused to pass through unmodified.

    ``action`` is what the policy did (``"drop"`` or ``"clamp"``);
    ``repaired`` carries the admitted replacement when the action was a
    clamp, and ``None`` when the post was dropped outright.
    """

    post: Post
    reason: str
    action: str
    repaired: Optional[Post] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuarantineRecord(uid={self.post.uid}, reason={self.reason!r}, "
            f"action={self.action!r})"
        )


@dataclass(frozen=True)
class SanitizationPolicy:
    """What the supervisor does with each class of malformed arrival.

    Parameters
    ----------
    on_malformed_value:
        ``"raise"``, ``"drop"`` or ``"clamp"``.  A clamp rewrites a
        non-finite value to the admitted frontier (the last admitted value,
        or ``0.0`` on an empty stream), which keeps the stream monotone.
    on_empty_labels:
        ``"raise"`` or ``"drop"``.  There is no meaningful repair for a
        post that matches no query — it simply is not part of the problem.
    on_duplicate:
        ``"raise"`` or ``"drop"``.  Admitting a duplicate uid would make
        the emission invariants unsatisfiable, so it is never an option.
    on_out_of_order:
        ``"raise"``, ``"drop"`` or ``"clamp"``.  Applies only to posts
        that regress behind the admitted frontier *after* the reorder
        buffer; a clamp lifts the value up to the frontier.
    reorder_buffer:
        Number of arrivals held back in a min-heap before admission.  A
        post displaced by at most ``reorder_buffer`` positions is restored
        to its correct place with no quarantine at all; ``0`` disables
        buffering (every regression hits ``on_out_of_order`` directly).
        Note the buffer trades latency for order: an arrival is only
        admitted once ``reorder_buffer`` later posts have arrived (or the
        stream is flushed).
    """

    on_malformed_value: str = DROP
    on_empty_labels: str = DROP
    on_duplicate: str = DROP
    on_out_of_order: str = DROP
    reorder_buffer: int = 0

    def __post_init__(self) -> None:
        checks = (
            ("on_malformed_value", self.on_malformed_value, _VALUE_ACTIONS),
            ("on_empty_labels", self.on_empty_labels, _LABEL_ACTIONS),
            ("on_duplicate", self.on_duplicate, _DUPLICATE_ACTIONS),
            ("on_out_of_order", self.on_out_of_order, _ORDER_ACTIONS),
        )
        for name, value, allowed in checks:
            if value not in allowed:
                raise ReproError(
                    f"{name} must be one of {allowed}, got {value!r}"
                )
        if self.reorder_buffer < 0:
            raise ReproError("reorder_buffer must be non-negative")

    @classmethod
    def strict(cls) -> "SanitizationPolicy":
        """Refuse every malformation — the legacy fail-fast behaviour."""
        return cls(
            on_malformed_value=RAISE,
            on_empty_labels=RAISE,
            on_duplicate=RAISE,
            on_out_of_order=RAISE,
            reorder_buffer=0,
        )

    @classmethod
    def lenient(cls, reorder_buffer: int = 8) -> "SanitizationPolicy":
        """Repair what can be repaired, quarantine the rest, never raise."""
        return cls(
            on_malformed_value=CLAMP,
            on_empty_labels=DROP,
            on_duplicate=DROP,
            on_out_of_order=CLAMP,
            reorder_buffer=reorder_buffer,
        )
