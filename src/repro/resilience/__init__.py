"""Resilient streaming runtime: survive the stream, don't assert on it.

The core packages assume clean input and infinite patience; this package
assumes neither.  It provides:

* :class:`~repro.resilience.supervisor.StreamSupervisor` — wraps any
  registered streaming algorithm with input sanitization
  (:class:`~repro.resilience.policies.SanitizationPolicy` + quarantine
  log), a watchdog-driven degradation ladder, checkpoint/restore, and
  health counters; :func:`~repro.resilience.supervisor.run_supervised` is
  the matching drop-in for :func:`repro.stream.runner.run_stream`.
* :class:`~repro.resilience.checkpoint.Checkpoint` — the JSON-safe
  snapshot format (arrival journal + emission record), restored by
  deterministic replay.
* :func:`~repro.resilience.ladder.solve_with_ladder` — the batch half of
  graceful degradation, used by the pipeline's supervised digest.
* :class:`~repro.resilience.faults.FaultInjector` — a seeded harness that
  drops, duplicates, delays, reorders, corrupts and redelivers posts so
  tests and benchmarks can exercise all of the above deterministically;
  :class:`~repro.resilience.faults.CrashSchedule` extends it to process
  death, raising :class:`~repro.resilience.faults.KillPoint` (optionally
  after a torn partial write) at a seeded durable-ingest fault site.

See ``docs/robustness.md`` for the guided tour.
"""

from .checkpoint import CHECKPOINT_VERSION, Checkpoint
from .faults import (
    CrashSchedule,
    FaultEvent,
    FaultInjector,
    FaultReport,
    KillPoint,
)
from .ladder import (
    DEFAULT_BATCH_LADDER,
    DEFAULT_STREAM_LADDER,
    DowngradeEvent,
    solve_with_ladder,
    validate_stream_ladder,
)
from .policies import QuarantineRecord, SanitizationPolicy
from .supervisor import (
    ResilienceConfig,
    StreamSupervisor,
    SupervisorHealth,
    run_supervised,
)

__all__ = [
    "Checkpoint",
    "CHECKPOINT_VERSION",
    "CrashSchedule",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "KillPoint",
    "DowngradeEvent",
    "DEFAULT_BATCH_LADDER",
    "DEFAULT_STREAM_LADDER",
    "solve_with_ladder",
    "validate_stream_ladder",
    "QuarantineRecord",
    "ResilienceConfig",
    "SanitizationPolicy",
    "StreamSupervisor",
    "SupervisorHealth",
    "run_supervised",
]
