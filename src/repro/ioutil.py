"""Crash-safe filesystem primitives shared by the durability layers.

Both the checkpoint writer (:mod:`repro.resilience.checkpoint`) and the
ingest write-ahead log (:mod:`repro.ingest`) need the same guarantee: a
file either holds the complete previous content or the complete new
content, never a torn prefix.  POSIX gives exactly one tool with that
property — ``rename(2)`` within a filesystem — so every durable write
here follows the classic recipe:

1. write the payload to a uniquely-named temporary file *in the target
   directory* (rename is only atomic within one filesystem);
2. flush and ``fsync`` the temp file so the bytes are on the platter
   before the name is;
3. ``os.replace`` the temp file over the target;
4. ``fsync`` the directory so the rename itself survives a power cut.

A crash before step 3 leaves a stray ``*.tmp`` file and an intact
target; a crash after leaves the new target.  There is no point in
between at which a reader can observe a truncated file.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union

__all__ = ["atomic_write_text", "atomic_write_bytes", "fsync_directory"]

PathLike = Union[str, "os.PathLike[str]"]


def fsync_directory(directory: PathLike) -> None:
    """Flush a directory's entry table to disk (best effort).

    Needed after creating, renaming or removing files so the *names*
    are as durable as the bytes.  Platforms whose directory handles
    cannot be fsynced (Windows) silently skip — rename durability is
    then the filesystem's promise, which is the best available there.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: PathLike, payload: bytes, *, durable: bool = True
) -> None:
    """Atomically replace ``path`` with ``payload``.

    ``durable=False`` skips the fsyncs (for tests and throwaway data);
    the write is still atomic with respect to concurrent readers, just
    not guaranteed to survive power loss.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp",
        dir=directory,
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(temp_path, target)
    except BaseException:
        # The temp file must not survive a failed write: a later
        # directory scan would mistake it for data.
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(directory)


def atomic_write_text(
    path: PathLike, text: str, *, durable: bool = True,
    encoding: str = "utf-8",
) -> None:
    """Atomically replace ``path`` with ``text`` (see
    :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)
