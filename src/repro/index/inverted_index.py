"""An in-memory inverted index over timestamped documents.

Stands in for the Apache Lucene index of the paper's architecture
(Section 7.1 — "The tweets inverted index ... was implemented using Apache
Lucene"; indexing itself is explicitly out of the paper's scope).  It
supports exactly what the MQDP pipeline needs:

* incremental document addition (documents may arrive out of order);
* per-term postings sorted by timestamp;
* boolean OR / AND search restricted to a time range — the "issue a search
  query against an inverted index" input path of Figure 1.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from .tokenizer import tokenize

__all__ = ["Document", "InvertedIndex"]


@dataclass(frozen=True)
class Document:
    """A stored document: id, timestamp, raw text."""

    doc_id: int
    timestamp: float
    text: str


class _Postings:
    """A term's postings: parallel (timestamp, doc_id) arrays kept sorted."""

    __slots__ = ("timestamps", "doc_ids")

    def __init__(self) -> None:
        self.timestamps: List[float] = []
        self.doc_ids: List[int] = []

    def add(self, timestamp: float, doc_id: int) -> None:
        # Stable insertion point keeps equal-timestamp docs in add order.
        idx = bisect.bisect_right(self.timestamps, timestamp)
        self.timestamps.insert(idx, timestamp)
        self.doc_ids.insert(idx, doc_id)

    def in_range(self, start: float, end: float) -> List[int]:
        lo = bisect.bisect_left(self.timestamps, start)
        hi = bisect.bisect_right(self.timestamps, end)
        return self.doc_ids[lo:hi]

    def __len__(self) -> int:
        return len(self.doc_ids)


class InvertedIndex:
    """Term -> time-sorted postings, with range-restricted boolean search."""

    def __init__(self) -> None:
        self._postings: Dict[str, _Postings] = {}
        self._documents: Dict[int, Document] = {}

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def add(self, doc_id: int, timestamp: float, text: str) -> Document:
        """Index one document; doc ids must be unique."""
        if doc_id in self._documents:
            raise ValueError(f"duplicate document id {doc_id}")
        document = Document(doc_id=doc_id, timestamp=timestamp, text=text)
        self._documents[doc_id] = document
        for term in set(tokenize(text)):
            postings = self._postings.get(term)
            if postings is None:
                postings = self._postings[term] = _Postings()
            postings.add(timestamp, doc_id)
        return document

    def document(self, doc_id: int) -> Document:
        """Fetch a stored document by id."""
        return self._documents[doc_id]

    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        postings = self._postings.get(term.lower())
        return len(postings) if postings is not None else 0

    def search(
        self,
        keywords: Iterable[str],
        start: float = float("-inf"),
        end: float = float("inf"),
        mode: str = "or",
    ) -> List[Document]:
        """Boolean search restricted to ``[start, end]``.

        ``mode="or"`` returns documents containing *any* keyword — the
        paper's topic-matching semantics; ``mode="and"`` requires all.
        Results are sorted by (timestamp, doc_id).
        """
        keyword_list = [k.lower() for k in keywords]
        if mode not in ("or", "and"):
            raise ValueError(f"unknown mode {mode!r}")
        hit_sets: List[Set[int]] = []
        for keyword in keyword_list:
            postings = self._postings.get(keyword)
            hits = set(postings.in_range(start, end)) if postings else set()
            hit_sets.append(hits)
        if not hit_sets:
            return []
        if mode == "or":
            merged: Set[int] = set()
            for hits in hit_sets:
                merged |= hits
        else:
            merged = set(hit_sets[0])
            for hits in hit_sets[1:]:
                merged &= hits
        documents = [self._documents[doc_id] for doc_id in merged]
        documents.sort(key=lambda d: (d.timestamp, d.doc_id))
        return documents
