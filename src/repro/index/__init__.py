"""Indexing and matching substrate.

The paper's system architecture (Figure 1) feeds the diversification
algorithms from either an inverted index over microblogging posts (built
with Apache Lucene in the paper) or a live matching module on the stream.
This package is our pure-Python stand-in:

* :mod:`~repro.index.tokenizer` — lower-casing, punctuation-stripping,
  hashtag-aware tokenisation with a stopword list;
* :mod:`~repro.index.inverted_index` — term -> time-sorted posting lists
  with boolean and time-range search;
* :mod:`~repro.index.query` — topic queries (labels backed by keyword
  sets) and the post/label matching module;
* :mod:`~repro.index.simhash` — SimHash near-duplicate detection [17],
  the preprocessing step the paper applies before diversification.
"""

from .inverted_index import Document, InvertedIndex
from .query import LabelMatcher, TopicQuery
from .scoring import BM25Scorer
from .simhash import SimHashIndex, hamming_distance, simhash
from .tokenizer import STOPWORDS, tokenize

__all__ = [
    "tokenize",
    "STOPWORDS",
    "Document",
    "InvertedIndex",
    "TopicQuery",
    "LabelMatcher",
    "BM25Scorer",
    "simhash",
    "hamming_distance",
    "SimHashIndex",
]
