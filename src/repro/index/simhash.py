"""SimHash near-duplicate detection (Manku, Jain, Das Sarma — [17]).

The paper removes near-duplicate posts before diversification ("we
eliminate near-duplicate posts using existing duplicate detection methods
like SimHash").  This module implements the full pipeline:

* :func:`simhash` — the 64-bit similarity-preserving fingerprint over
  token features;
* :func:`hamming_distance` — bit distance between fingerprints;
* :class:`SimHashIndex` — banded lookup: fingerprints are split into
  ``bands`` equal slices; candidates share at least one identical slice
  (guaranteed to catch every pair within ``bands - 1`` differing bits),
  then candidates are confirmed with an exact Hamming check.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .tokenizer import tokenize

__all__ = ["simhash", "hamming_distance", "SimHashIndex"]

_BITS = 64
_MASK = (1 << _BITS) - 1


def _feature_hash(token: str) -> int:
    """A stable 64-bit hash (Python's builtin hash is salted per process)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def simhash(text: str, weights: Optional[Dict[str, float]] = None) -> int:
    """Compute the 64-bit SimHash fingerprint of ``text``.

    Each token contributes its (optionally weighted) hash bits to a signed
    accumulator per bit position; the fingerprint's bit is 1 where the
    accumulator is positive.  Stopwords are kept — duplicates share their
    function words too, and dropping them makes short posts collide.
    """
    accumulator = [0.0] * _BITS
    tokens = tokenize(text, keep_stopwords=True)
    for token in tokens:
        weight = weights.get(token, 1.0) if weights else 1.0
        hashed = _feature_hash(token)
        for bit in range(_BITS):
            if hashed & (1 << bit):
                accumulator[bit] += weight
            else:
                accumulator[bit] -= weight
    fingerprint = 0
    for bit in range(_BITS):
        if accumulator[bit] > 0:
            fingerprint |= 1 << bit
    return fingerprint


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two fingerprints."""
    return bin((a ^ b) & _MASK).count("1")


class SimHashIndex:
    """Banded SimHash lookup for streaming near-duplicate elimination.

    Parameters
    ----------
    max_distance:
        Two fingerprints within this Hamming distance are duplicates.
    bands:
        Number of fingerprint slices used for candidate lookup.  With
        ``bands = max_distance + 1`` every true duplicate pair shares at
        least one identical band (pigeonhole), so recall is exact.
    """

    def __init__(self, max_distance: int = 3, bands: Optional[int] = None):
        if not 0 <= max_distance < _BITS:
            raise ValueError(f"max_distance out of range: {max_distance}")
        self.max_distance = max_distance
        self.bands = bands if bands is not None else max_distance + 1
        if self.bands < 1 or self.bands > _BITS:
            raise ValueError(f"bands out of range: {self.bands}")
        self._band_bits = _BITS // self.bands
        self._tables: List[Dict[int, List[int]]] = [
            {} for _ in range(self.bands)
        ]
        self._fingerprints: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._fingerprints)

    def _band_keys(self, fingerprint: int) -> List[int]:
        keys = []
        for band in range(self.bands):
            shift = band * self._band_bits
            width = (
                _BITS - shift
                if band == self.bands - 1
                else self._band_bits
            )
            keys.append((fingerprint >> shift) & ((1 << width) - 1))
        return keys

    def query(self, fingerprint: int) -> List[int]:
        """Item ids whose fingerprints are within ``max_distance``."""
        seen: Set[int] = set()
        matches: List[int] = []
        for band, key in enumerate(self._band_keys(fingerprint)):
            for item_id in self._tables[band].get(key, ()):
                if item_id in seen:
                    continue
                seen.add(item_id)
                if hamming_distance(
                    fingerprint, self._fingerprints[item_id]
                ) <= self.max_distance:
                    matches.append(item_id)
        return matches

    def add(self, item_id: int, fingerprint: int) -> None:
        """Register a fingerprint under ``item_id``."""
        if item_id in self._fingerprints:
            raise ValueError(f"duplicate item id {item_id}")
        self._fingerprints[item_id] = fingerprint
        for band, key in enumerate(self._band_keys(fingerprint)):
            self._tables[band].setdefault(key, []).append(item_id)

    def deduplicate(
        self, items: Iterable[Tuple[int, str]]
    ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Stream ``(item_id, text)`` pairs; return survivors and drops.

        Returns ``(kept_ids, dropped)`` where ``dropped`` holds
        ``(duplicate_id, first_seen_id)`` pairs.  The first occurrence of a
        near-duplicate cluster always survives, matching the paper's
        pre-filtering step.
        """
        kept: List[int] = []
        dropped: List[Tuple[int, int]] = []
        for item_id, text in items:
            fingerprint = simhash(text)
            matches = self.query(fingerprint)
            if matches:
                dropped.append((item_id, matches[0]))
                continue
            self.add(item_id, fingerprint)
            kept.append(item_id)
        return kept, dropped
