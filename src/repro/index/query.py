"""Topic queries and the post/label matching module.

In the paper, a user's information need is a set of labels (queries); each
label is a news topic represented by its top-40 LDA keywords, and a post
matches a topic when it "contains at least one keyword of the topic"
(Section 7.1).  :class:`TopicQuery` carries one label;
:class:`LabelMatcher` resolves a post's label set in one tokenizer pass via
a keyword -> labels dictionary, which is what makes stream-rate matching
feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.post import Post
from .inverted_index import Document, InvertedIndex
from .tokenizer import tokenize

__all__ = ["TopicQuery", "LabelMatcher"]


@dataclass(frozen=True)
class TopicQuery:
    """One label: a named topic backed by a keyword set.

    ``weights`` (keyword -> LDA weight) are optional and only used for
    display / topic inspection; matching is binary on keyword containment,
    as in the paper.
    """

    label: str
    keywords: FrozenSet[str]
    weights: Optional[Tuple[Tuple[str, float], ...]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError(f"topic {self.label!r} has no keywords")
        lowered = frozenset(k.lower() for k in self.keywords)
        object.__setattr__(self, "keywords", lowered)

    def matches(self, text: str) -> bool:
        """True when the text contains at least one topic keyword."""
        return any(token in self.keywords for token in tokenize(text))

    def top_keywords(self, count: int = 10) -> List[str]:
        """Highest-weight keywords (falls back to sorted order)."""
        if self.weights is None:
            return sorted(self.keywords)[:count]
        ranked = sorted(self.weights, key=lambda kw: -kw[1])
        return [keyword for keyword, _ in ranked[:count]]


class LabelMatcher:
    """Resolve the label set of each post in a single tokenisation pass."""

    def __init__(self, queries: Iterable[TopicQuery]):
        self.queries: Tuple[TopicQuery, ...] = tuple(queries)
        labels = [q.label for q in self.queries]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate labels in query set")
        self._keyword_to_labels: Dict[str, Set[str]] = {}
        for query in self.queries:
            for keyword in query.keywords:
                self._keyword_to_labels.setdefault(keyword, set()).add(
                    query.label
                )

    @property
    def labels(self) -> FrozenSet[str]:
        """The label universe this matcher resolves against."""
        return frozenset(q.label for q in self.queries)

    def match(self, text: str) -> FrozenSet[str]:
        """Labels whose topics the text matches (possibly empty)."""
        matched: Set[str] = set()
        for token in tokenize(text):
            hits = self._keyword_to_labels.get(token)
            if hits:
                matched |= hits
        return frozenset(matched)

    def to_posts(
        self, documents: Iterable[Document]
    ) -> List[Post]:
        """Convert matching documents into MQDP posts.

        Documents matching no label are filtered out — they are simply not
        part of the problem.  The post's diversity value is the document
        timestamp (the time dimension); swap in another extractor for other
        dimensions via :meth:`to_posts_with_value`.
        """
        return self.to_posts_with_value(
            documents, value_of=lambda document: document.timestamp
        )

    def to_posts_with_value(
        self, documents: Iterable[Document], value_of
    ) -> List[Post]:
        """Like :meth:`to_posts` with a custom diversity-value extractor
        (e.g. a sentiment scorer for the sentiment dimension)."""
        posts: List[Post] = []
        for document in documents:
            labels = self.match(document.text)
            if not labels:
                continue
            posts.append(
                Post(
                    uid=document.doc_id,
                    value=float(value_of(document)),
                    labels=labels,
                    text=document.text,
                )
            )
        return posts

    def search_posts(
        self,
        index: InvertedIndex,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> List[Post]:
        """The Figure 1 index path: search every topic's keywords over the
        index, merge, and label the hits."""
        keywords: Set[str] = set()
        for query in self.queries:
            keywords |= query.keywords
        documents = index.search(keywords, start=start, end=end, mode="or")
        return self.to_posts(documents)
