"""BM25 ranked retrieval over the inverted index.

The paper's architecture issues keyword queries against a Lucene index;
Lucene ranks.  Boolean matching is all MQDP strictly needs, but a
realistic deployment shows users the *top* posts too (e.g. to pick the
display representative among near-ties), so the substrate carries the
standard Okapi BM25 scorer:

    score(q, d) = sum_t idf(t) * tf(t,d) * (k1 + 1)
                           / (tf(t,d) + k1 * (1 - b + b * |d| / avgdl))

with the non-negative idf variant ``log(1 + (N - df + 0.5)/(df + 0.5))``.
The scorer wraps an existing :class:`~repro.index.inverted_index
.InvertedIndex` and lazily caches term frequencies and document lengths.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from .inverted_index import Document, InvertedIndex
from .tokenizer import tokenize

__all__ = ["BM25Scorer"]


class BM25Scorer:
    """Okapi BM25 over an :class:`InvertedIndex`.

    Parameters
    ----------
    index:
        The index to score against.  Documents added to the index after
        the scorer's first use are picked up lazily (statistics refresh
        when the index size changes).
    k1, b:
        The usual BM25 knobs: term-frequency saturation and length
        normalisation.  Defaults are the standard 1.2 / 0.75.
    """

    def __init__(self, index: InvertedIndex, k1: float = 1.2,
                 b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.index = index
        self.k1 = float(k1)
        self.b = float(b)
        self._tf: Dict[int, Counter] = {}
        self._lengths: Dict[int, int] = {}
        self._indexed_size = -1
        self._avgdl = 0.0

    # -- statistics -------------------------------------------------------------

    def _refresh(self) -> None:
        if self._indexed_size == len(self.index):
            return
        # A document may have been added since the last refresh: (re)build
        # the per-document stats we have not seen yet.
        for doc_id in self._missing_doc_ids():
            document = self.index.document(doc_id)
            tokens = tokenize(document.text)
            self._tf[doc_id] = Counter(tokens)
            self._lengths[doc_id] = len(tokens)
        total = sum(self._lengths.values())
        self._avgdl = total / len(self._lengths) if self._lengths else 0.0
        self._indexed_size = len(self.index)

    def _missing_doc_ids(self) -> List[int]:
        # Same-package access to the document store: the scorer is part of
        # the index subsystem and only needs id enumeration.
        return [
            doc_id
            for doc_id in self.index._documents  # noqa: SLF001
            if doc_id not in self._tf
        ]

    def idf(self, term: str) -> float:
        """Non-negative BM25 idf of a term."""
        self._refresh()
        n = len(self.index)
        df = self.index.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    # -- scoring ---------------------------------------------------------------

    def score(self, query: Iterable[str], doc_id: int) -> float:
        """BM25 score of one document for a bag of query terms."""
        self._refresh()
        tf = self._tf.get(doc_id)
        if tf is None:
            raise KeyError(f"unknown document id {doc_id}")
        length = self._lengths[doc_id]
        norm = 1.0 - self.b
        if self._avgdl > 0:
            norm = 1.0 - self.b + self.b * (length / self._avgdl)
        total = 0.0
        for term in set(t.lower() for t in query):
            frequency = tf.get(term, 0)
            if frequency == 0:
                continue
            total += (
                self.idf(term)
                * frequency * (self.k1 + 1.0)
                / (frequency + self.k1 * norm)
            )
        return total

    def search(
        self,
        query: Iterable[str],
        k: int = 10,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> List[Tuple[Document, float]]:
        """Top-``k`` documents for the query within a time range.

        Returns ``(document, score)`` pairs, best first; ties break by
        (timestamp, doc id) so results are deterministic.
        """
        self._refresh()
        terms = [t.lower() for t in query]
        candidates = self.index.search(terms, start=start, end=end,
                                       mode="or")
        scored = [
            (document, self.score(terms, document.doc_id))
            for document in candidates
        ]
        scored.sort(
            key=lambda pair: (-pair[1], pair[0].timestamp, pair[0].doc_id)
        )
        return scored[:k]
