"""Tokenisation for microblogging text.

Deliberately simple — the paper's matching rule is "the post contains at
least one keyword of the topic", so all the tokenizer must guarantee is a
stable, lower-cased vocabulary.  Hashtags keep their word ('#nba' matches
keyword 'nba'), @-mentions are preserved as user tokens, URLs are dropped.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List

__all__ = ["tokenize", "STOPWORDS"]

# A compact English stopword list: function words that would otherwise make
# every post match every topic through incidental keyword overlap.
STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an and are as at be but by for from has have he her his i in is it its
    me my of on or our she so that the their them they this to was we were
    what when which who will with you your not no if then than too very can
    just do does did done am been being rt via
    """.split()
)

_URL = re.compile(r"https?://\S+|www\.\S+")
_TOKEN = re.compile(r"[#@]?[a-z0-9']+")


def tokenize(text: str, keep_stopwords: bool = False) -> List[str]:
    """Split text into normalised tokens.

    * lower-cases and removes URLs;
    * ``#hashtag`` yields ``hashtag`` (hashtags are just topic keywords in
      the paper's examples), ``@user`` stays distinct as ``@user``;
    * stopwords are dropped unless ``keep_stopwords`` is set (SimHash keeps
      them: near-duplicate detection benefits from full shingles).
    """
    text = _URL.sub(" ", text.lower())
    tokens: List[str] = []
    for match in _TOKEN.finditer(text):
        token = match.group()
        if token.startswith("#"):
            token = token[1:]
        if not token:
            continue
        if not keep_stopwords and token in STOPWORDS:
            continue
        tokens.append(token)
    return tokens
