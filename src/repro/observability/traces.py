"""Durable trace pipeline: sampling, bounded buffering, JSONL sink.

PR 5 gave every response a trace_id and PR 9's router re-parents worker
spans into the request trace via :meth:`Tracer.adopt` — and then the
assembled tree evaporates when the process exits.  This module is the
persistence half:

* :class:`SamplingPolicy` — head-based probabilistic sampling (a
  deterministic hash of the trace_id, so every component of a request
  makes the same decision without coordination) plus *always-keep*
  overrides for error/degraded/shed responses and responses slower
  than a threshold;
* :class:`TraceBuffer` — a bounded in-memory ring of the most recent
  kept traces (the ``introspect()``-visible working set), with an
  honest ``dropped`` counter when it overflows;
* :class:`TraceSink` — a rotating JSONL writer (size-bounded segments,
  bounded segment count) that persists assembled span trees;
* :class:`TracePipeline` — the glue the router calls once per request:
  decide, assemble, buffer, persist.

A request that loses the head-sampling coin flip records no spans at
all (the cheap 90 % at 10 % sampling); if it then turns out to be an
error or slow, the always-keep rule still persists a *skeleton* record
(trace_id, status, latency, no tree) so the incident is in the log
even though its spans were never collected — the honest limit of
head-based sampling, documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, FrozenSet, List, Optional

__all__ = [
    "SamplingPolicy",
    "TraceBuffer",
    "TracePipeline",
    "TraceSink",
    "head_sample",
]

# statuses a policy keeps regardless of the probabilistic decision
DEFAULT_KEEP_STATUSES: FrozenSet[str] = frozenset(
    {"error", "degraded", "shed"}
)

# trace ids are 32 hex chars (uuid4); 8 of them give a uniform 32-bit
# draw, plenty of resolution for sampling rates down to ~1e-9
_HASH_SPAN = float(0x100000000)


def head_sample(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling decision for ``trace_id``.

    Every participant hashing the same trace_id reaches the same
    verdict, which is what lets the service skip span creation
    entirely for unsampled requests without asking anyone.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    try:
        draw = int(trace_id[:8], 16) / _HASH_SPAN
    except (ValueError, TypeError):
        return True
    return draw < rate


@dataclass(frozen=True)
class SamplingPolicy:
    """Head-based probabilistic sampling with always-keep overrides."""

    rate: float = 0.1
    slow_threshold_s: Optional[float] = None
    keep_statuses: FrozenSet[str] = field(
        default_factory=lambda: DEFAULT_KEEP_STATUSES
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"rate must be in [0, 1], got {self.rate}"
            )
        if self.slow_threshold_s is not None \
                and self.slow_threshold_s <= 0:
            raise ValueError(
                "slow_threshold_s must be > 0 when set, got "
                f"{self.slow_threshold_s}"
            )

    def sampled(self, trace_id: str) -> bool:
        """The head decision alone (made before the request runs)."""
        return head_sample(trace_id, self.rate)

    def decide(
        self,
        trace_id: str,
        status: str,
        latency_s: float,
    ) -> Optional[str]:
        """Why this finished request should be kept, or ``None``."""
        if status in self.keep_statuses:
            return "status"
        if self.slow_threshold_s is not None \
                and latency_s >= self.slow_threshold_s:
            return "slow"
        if self.sampled(trace_id):
            return "sampled"
        return None


class TraceBuffer:
    """Bounded ring of the most recently kept trace records."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.kept = 0
        self.dropped = 0
        self._records: Deque[Dict[str, Any]] = deque()
        self._lock = threading.Lock()

    def append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            self.kept += 1
            if len(self._records) > self.capacity:
                self._records.popleft()
                self.dropped += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)


class TraceSink:
    """Rotating JSONL persistence for assembled trace records.

    Writes one JSON object per line to ``path``; when the active
    segment would exceed ``max_bytes`` it rotates to ``path.1`` (older
    segments shifting to ``.2`` … ``.max_segments``, the oldest
    deleted).  Rotation is rename-based, so a reader never sees a
    torn segment.
    """

    def __init__(
        self,
        path: str,
        *,
        max_bytes: int = 4 * 1024 * 1024,
        max_segments: int = 4,
    ):
        if max_bytes < 1024:
            raise ValueError(
                f"max_bytes must be >= 1024, got {max_bytes}"
            )
        if max_segments < 1:
            raise ValueError(
                f"max_segments must be >= 1, got {max_segments}"
            )
        self.path = str(path)
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self.written = 0
        self.rotations = 0
        self._lock = threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            if self._handle.tell() + len(line) + 1 > self.max_bytes \
                    and self._handle.tell() > 0:
                self._rotate()
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1

    def _rotate(self) -> None:
        # caller holds the lock
        self._handle.close()
        oldest = f"{self.path}.{self.max_segments}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_segments - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    def segments(self) -> List[str]:
        """Existing segment paths, newest first."""
        out = [self.path]
        for index in range(1, self.max_segments + 1):
            candidate = f"{self.path}.{index}"
            if os.path.exists(candidate):
                out.append(candidate)
        return out

    def read_records(self) -> List[Dict[str, Any]]:
        """Every persisted record, oldest first (test/debug helper)."""
        records: List[Dict[str, Any]] = []
        for segment in reversed(self.segments()):
            if not os.path.exists(segment):
                continue
            with open(segment, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        records.append(json.loads(line))
        return records

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class TracePipeline:
    """Decide → assemble → buffer → persist, once per finished request.

    The owner (the cluster router, or any caller holding a
    :class:`~repro.observability.tracing.Tracer`) calls :meth:`offer`
    after each response.  ``tracer=None`` signals the request was not
    head-sampled and carries no spans; always-keep reasons still
    persist a skeleton record so errors and slow requests are never
    invisible.
    """

    def __init__(
        self,
        *,
        policy: Optional[SamplingPolicy] = None,
        sink: Optional[TraceSink] = None,
        buffer_capacity: int = 256,
    ):
        self.policy = policy if policy is not None else SamplingPolicy()
        self.sink = sink
        self.buffer = TraceBuffer(buffer_capacity)
        self.offered = 0
        self.skipped = 0
        self.skeletons = 0
        self.assembly_failures = 0

    def offer(
        self,
        *,
        trace_id: str,
        status: str,
        latency_s: float,
        tracer: Optional[Any] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Offer one finished request; returns the kept record or
        ``None`` when the policy discards it."""
        self.offered += 1
        reason = self.policy.decide(trace_id, status, latency_s)
        if reason is None:
            self.skipped += 1
            return None
        record: Dict[str, Any] = {
            "trace_id": trace_id,
            "status": status,
            "latency_s": latency_s,
            "reason": reason,
            "tree": None,
        }
        if attributes:
            record["attributes"] = dict(attributes)
        if tracer is not None:
            try:
                record["tree"] = tracer.assemble(trace_id)
            except Exception:
                self.assembly_failures += 1
        if record["tree"] is None:
            self.skeletons += 1
        self.buffer.append(record)
        if self.sink is not None:
            self.sink.write(record)
        return record

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "offered": self.offered,
            "kept": self.buffer.kept,
            "skipped": self.skipped,
            "skeletons": self.skeletons,
            "assembly_failures": self.assembly_failures,
            "buffered": len(self.buffer),
            "buffer_dropped": self.buffer.dropped,
            "rate": self.policy.rate,
            "slow_threshold_s": self.policy.slow_threshold_s,
        }
        if self.sink is not None:
            out["sink"] = {
                "path": self.sink.path,
                "written": self.sink.written,
                "rotations": self.sink.rotations,
            }
        return out

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
