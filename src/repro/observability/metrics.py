"""The metrics registry: counters, gauges, histograms.

The unit of cost in this codebase is not wall-clock alone.  Succinct
coverage-oracle accounting (see PAPERS.md) argues for counting the *work
units* a solver performs — candidate pairs enumerated, residual-set
updates, posting-list window advances — alongside its elapsed time, so a
perf regression is attributable to an algorithmic change rather than to
machine noise.  This module provides the primitive instruments; the hot
paths publish into them through :mod:`repro.observability.facade`, which
costs nothing when observability is disabled.

Everything here is deliberately dependency-free and deterministic: the
registry takes an injectable ``clock`` (the supervisor's ``clock=``
pattern) so tests can pin timings, and instruments are plain attribute
holders — no background threads.

Thread-safety: the solvers are single-threaded per call, but the serving
layer (:mod:`repro.service`) publishes into one shared registry from
concurrent executor threads, so every mutation is guarded.  Instrument
updates take a per-instrument lock (CPython's ``+=`` on an attribute is
*not* atomic — it compiles to a load/add/store triple that can interleave
under preemption), and the registry's get-or-create path takes a registry
lock so two threads racing to create the same name always converge on one
instrument.  Reads of a single counter/gauge value stay lock-free (an
attribute load is atomic); ``snapshot``/``counters`` lock only the
instrument table iteration, so they are consistent per-instrument, not
across instruments — fine for monitoring, which tolerates a tick of skew.
The hammer test (``tests/observability/test_threadsafety.py``) pins the
exact-total guarantees.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Geometric-ish latency buckets (seconds): generous coverage from
# microseconds to minutes without per-metric tuning.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)


class Counter:
    """A monotone counter; ``inc`` with a negative amount is rejected."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (queue depth, rung index, buffer size)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket cumulative histogram with count/sum/min/max.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest, mirroring the Prometheus histogram model so the text exporter
    is a straight transcription.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} buckets must be sorted")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for idx, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[idx] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """Name-keyed instrument store with an injectable clock.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create; asking for
    an existing name with a different instrument kind raises, which
    catches name collisions at the instrumentation site rather than at
    export time.
    """

    def __init__(self, clock: Callable[[], float] = _time.perf_counter):
        self.clock = clock
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    # -- introspection ----------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def counters(self) -> Dict[str, int]:
        """Counter values only — the work-unit view the benches record."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {
            name: instrument.value
            for name, instrument in items
            if isinstance(instrument, Counter)
        }

    def snapshot(self) -> Dict[str, dict]:
        """Every instrument as a JSON-safe dict, keyed by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: Dict[str, dict] = {}
        for name, instrument in items:
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                hist = instrument
                with hist._lock:
                    out[name] = {
                        "type": "histogram",
                        "count": hist.count,
                        "sum": hist.total,
                        "min": hist.min,
                        "max": hist.max,
                        "mean": (
                            hist.total / hist.count if hist.count else None
                        ),
                        "buckets": [
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                hist.buckets, hist.bucket_counts
                            )
                        ] + [
                            {"le": "+Inf", "count": hist.bucket_counts[-1]}
                        ],
                    }
        return out
