"""Prometheus exposition lint — the CI gate for scrape output.

Usage::

    python -m repro.observability.promlint FILE [FILE ...]
    python -m repro.observability.promlint -          # read stdin
    python -m repro.observability.promlint --self-check

``--self-check`` exercises the repo's own producers: it runs a tiny
instrumented workload and a synthetic SLO monitor, renders both text
expositions, and round-trips them through
:func:`~repro.observability.exporters.parse_prometheus`.  A formatting
regression in either producer fails the build here instead of a
deployment's scraper.

Exit status: 0 when every input parses, 1 on the first lint error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .exporters import PromFormatError, parse_prometheus

__all__ = ["lint_text", "main"]


def lint_text(text: str, origin: str = "<input>") -> int:
    """Lint one exposition; returns the sample count.

    Raises :class:`PromFormatError` (annotated with ``origin``) on the
    first malformed line.
    """
    try:
        samples = parse_prometheus(text)
    except PromFormatError as exc:
        raise PromFormatError(f"{origin}: {exc}") from None
    return len(samples)


def _self_check() -> List[str]:
    """Render and lint every exposition this repo produces."""
    from .. import observability
    from ..core.instance import Instance
    from ..core.post import Post
    from ..core.scan import scan
    from .slo import SLOMonitor

    reports: List[str] = []
    posts = [
        Post(uid=i, value=float(i), labels=frozenset({"a", "b"}))
        for i in range(6)
    ]
    with observability.session() as bundle:
        scan(Instance(posts=posts, lam=2.0))
    text = observability.to_prometheus(bundle)
    reports.append(
        f"metrics exposition: {lint_text(text, 'to_prometheus')} samples"
    )

    slo = SLOMonitor()
    slo.record("acme", "scan", latency_s=0.01, status="ok")
    slo.record("acme", "scan", latency_s=0.05, status="shed")
    slo.record("beta", "greedy_sc", latency_s=0.02,
               status="degraded", cached=True)
    text = slo.to_prometheus()
    reports.append(
        f"slo exposition: {lint_text(text, 'SLOMonitor.to_prometheus')} "
        "samples"
    )

    # the federated page: two services scraped through a collector,
    # anomaly series included — per-node series must keep their
    # node= labels distinct (the duplicate-series lint) and label
    # values must escape cleanly (one node name is deliberately nasty)
    import asyncio

    from ..index.query import TopicQuery
    from ..service import DiversificationService, ServiceConfig
    from .anomaly import AnomalyEngine
    from .collector import Collector

    queries = [TopicQuery(label="q0", keywords=("alpha",)),
               TopicQuery(label="q1", keywords=("beta",))]
    services = {
        name: DiversificationService(queries, ServiceConfig())
        for name in ("node-a", 'node"b\\weird')
    }
    engine = AnomalyEngine()
    collector = Collector.for_services(services, engine=engine)
    asyncio.run(collector.collect_once())
    text = collector.to_prometheus()
    reports.append(
        "federated exposition: "
        f"{lint_text(text, 'Collector.to_prometheus')} samples"
    )
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.promlint",
        description="Lint Prometheus text exposition files.",
    )
    parser.add_argument(
        "files", nargs="*",
        help="exposition files to lint ('-' for stdin)",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="lint the expositions this repo's own exporters produce",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.self_check:
        parser.error("nothing to lint: pass files, '-', or --self-check")
    try:
        if args.self_check:
            for line in _self_check():
                print(f"OK {line}")
        for name in args.files:
            if name == "-":
                count = lint_text(sys.stdin.read(), "<stdin>")
            else:
                with open(name, "r", encoding="utf-8") as handle:
                    count = lint_text(handle.read(), name)
            print(f"OK {name}: {count} samples")
    except PromFormatError as exc:
        print(f"LINT ERROR {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
