"""Per-tenant SLO monitoring: latency quantiles, error budgets, burn rates.

The serving tier's RED counters (PR 2/4) aggregate across everyone; an
operator asking *"is tenant acme within its objective right now?"* needs
per-(tenant, algorithm) accounting over a sliding window.  This module
keeps exactly that — raw ``(timestamp, latency, status)`` samples in a
bounded deque per key — and derives the standard SRE views on demand:

* **latency quantiles** — p50/p95/p99 over the slow window, computed by
  nearest-rank on the retained samples (exact for the windows we keep,
  no sketch error to reason about at this scale);
* **error budget** — with availability objective ``objective`` (e.g.
  0.99), the budget is the ``1 - objective`` failure allowance; shed and
  error responses spend it, ok/degraded responses do not (a degraded
  digest is still a served, valid cover — it spends the *latency*
  budget, not the availability one, and is reported separately);
* **multi-window burn rate** — ``error_rate / (1 - objective)`` over a
  fast and a slow window.  Burn 1.0 means "spending exactly the
  allowance"; the classic page condition is a high burn on *both*
  windows (fast catches the spike, slow proves it is not a blip).

The monitor is plain synchronous state behind a lock: the service calls
:meth:`record` on every response, tests and the ``introspect()``
endpoint call :meth:`snapshot`.  It is always-on service state (like the
request counters), deliberately *not* behind the observability facade —
SLO accounting is a service feature, not a debug instrument; its cost is
one deque append per request.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["SLOMonitor", "quantile"]

# statuses that spend the availability error budget
FAILURE_STATUSES = frozenset({"shed", "error"})


def quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class _Series:
    """Samples for one (tenant, algorithm) key."""

    __slots__ = ("samples", "total", "failures")

    def __init__(self, max_samples: int):
        # (timestamp, latency_s, status, cached)
        self.samples: Deque[Tuple[float, float, str, bool]] = deque(
            maxlen=max_samples
        )
        self.total = 0      # lifetime, survives window trims
        self.failures = 0


class SLOMonitor:
    """Sliding-window SLO accounting per (tenant, algorithm).

    Parameters
    ----------
    objective:
        Availability objective in (0, 1); 0.99 allows a 1% failure rate.
    windows:
        ``(fast, slow)`` burn-rate windows in clock seconds.  Latency
        quantiles and budget use the slow window.
    max_samples:
        Retained samples per key — bounds memory under sustained load;
        old samples age out by count here and by time at snapshot.
    clock:
        Injectable monotonic time source so tests pin the windows.
    """

    def __init__(
        self,
        *,
        objective: float = 0.99,
        windows: Tuple[float, float] = (300.0, 3600.0),
        max_samples: int = 4096,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if not 0.0 < objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {objective}"
            )
        fast, slow = windows
        if not 0 < fast <= slow:
            raise ValueError(
                f"windows must satisfy 0 < fast <= slow, got {windows}"
            )
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self.objective = objective
        self.windows = (float(fast), float(slow))
        self.max_samples = max_samples
        self._clock = clock
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, str], _Series] = {}

    # -- feeding -----------------------------------------------------------

    def record(
        self,
        tenant: str,
        algorithm: str,
        *,
        latency_s: float,
        status: str,
        cached: bool = False,
    ) -> None:
        """Account one response.  Called on every serve/hit/degrade/shed."""
        now = self._clock()
        key = (tenant, algorithm)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(self.max_samples)
            series.samples.append((now, latency_s, status, cached))
            series.total += 1
            if status in FAILURE_STATUSES:
                series.failures += 1

    # -- views -------------------------------------------------------------

    def _window_stats(
        self,
        samples: List[Tuple[float, float, str, bool]],
        now: float,
        window: float,
    ) -> Dict[str, Any]:
        recent = [s for s in samples if now - s[0] <= window]
        requests = len(recent)
        errors = sum(1 for s in recent if s[2] in FAILURE_STATUSES)
        error_rate = errors / requests if requests else 0.0
        return {
            "window_s": window,
            "requests": requests,
            "errors": errors,
            "error_rate": error_rate,
            "burn_rate": error_rate / (1.0 - self.objective),
        }

    def snapshot(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Every (tenant, algorithm) series as a JSON-safe record.

        Sorted by (tenant, algorithm) so exports are deterministic.
        """
        if now is None:
            now = self._clock()
        fast, slow = self.windows
        with self._lock:
            items = sorted(
                (key, list(series.samples), series.total, series.failures)
                for key, series in self._series.items()
            )
        out: List[Dict[str, Any]] = []
        for (tenant, algorithm), samples, total, failures in items:
            in_slow = [s for s in samples if now - s[0] <= slow]
            statuses: Dict[str, int] = {}
            for _, _, status, _ in in_slow:
                statuses[status] = statuses.get(status, 0) + 1
            served = sorted(
                lat for _, lat, status, _ in in_slow
                if status not in FAILURE_STATUSES
            )
            latency = {
                "count": len(served),
                "p50": quantile(served, 0.50) if served else None,
                "p95": quantile(served, 0.95) if served else None,
                "p99": quantile(served, 0.99) if served else None,
            }
            fast_stats = self._window_stats(samples, now, fast)
            slow_stats = self._window_stats(samples, now, slow)
            out.append({
                "tenant": tenant,
                "algorithm": algorithm,
                "objective": self.objective,
                "lifetime": {"requests": total, "failures": failures},
                "statuses": statuses,
                "cache_hits": sum(1 for s in in_slow if s[3]),
                "latency": latency,
                "burn": {"fast": fast_stats, "slow": slow_stats},
                "error_budget_remaining": max(
                    0.0, 1.0 - slow_stats["burn_rate"]
                ),
            })
        return out

    def to_prometheus(self, now: Optional[float] = None) -> str:
        """The snapshot in Prometheus text exposition format 0.0.4.

        Labelled series, e.g.::

            service_slo_latency_seconds{tenant="acme",algorithm="scan",quantile="0.5"} 0.01
            service_slo_burn_rate{tenant="acme",algorithm="scan",window="fast"} 0.0
        """
        lines: List[str] = []

        def emit(metric: str, labels: Dict[str, str], value: Any) -> None:
            if value is None:
                return
            label_text = ",".join(
                f'{k}="{v}"' for k, v in labels.items()
            )
            lines.append(f"{metric}{{{label_text}}} {float(value)}")

        lines.append(
            "# HELP service_slo_requests_total requests per tenant/algorithm"
        )
        lines.append("# TYPE service_slo_requests_total counter")
        snapshot = self.snapshot(now)
        for record in snapshot:
            base = {
                "tenant": record["tenant"],
                "algorithm": record["algorithm"],
            }
            emit("service_slo_requests_total", base,
                 record["lifetime"]["requests"])
            emit("service_slo_failures_total", base,
                 record["lifetime"]["failures"])
            for q in ("p50", "p95", "p99"):
                emit(
                    "service_slo_latency_seconds",
                    dict(base, quantile=f"0.{q[1:]}"),
                    record["latency"][q],
                )
            for window in ("fast", "slow"):
                emit("service_slo_burn_rate", dict(base, window=window),
                     record["burn"][window]["burn_rate"])
            emit("service_slo_error_budget_remaining", base,
                 record["error_budget_remaining"])
        return "\n".join(lines) + "\n"
