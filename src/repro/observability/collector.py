"""Cluster-wide metrics federation: scrape ledgers, fleet merge, export.

PR 9 made the serving tier a multi-node cluster, but every metrics
registry stayed per-process: the operator of a 5-node ``LocalCluster``
had five disjoint namespaces and no fleet p99.  This module is the
pull side of the fix:

* a :class:`ScrapeLedger` wraps one
  :class:`~repro.observability.metrics.MetricsRegistry` and answers
  **versioned** scrapes — a scraper presents the last version it saw
  (its *cursor*) and receives counters/histogram buckets as **deltas**
  since that version, or a full cumulative snapshot (``reset``) when
  the cursor is unknown (first scrape, ledger restart, or a cursor that
  aged out of the retained history).  Deltas make the scrape payload
  proportional to what *changed*, and the reset path makes a missed
  scrape safe rather than silently wrong;
* a :class:`FleetStore` re-accumulates those deltas per node into
  cumulative series and merges them fleet-wide: **counters sum**,
  **gauges stay per-node**, **histograms merge bucket-wise** (same
  bounds, counts add — exact, so fleet quantiles interpolated from the
  merged buckets equal a whole-fleet recompute, which
  ``tests/observability/test_collector.py`` pins property-style);
* a :class:`Collector` drives the scrape cycle over any set of targets
  (cluster workers via the ``scrape`` op, or local services directly),
  feeds the per-cycle fleet state to an optional
  :class:`~repro.observability.anomaly.AnomalyEngine`, and renders the
  one federated Prometheus page (``node=<id>`` labelled per-node
  series plus ``fleet_*`` aggregate families) that
  ``parse_prometheus`` lints in CI.

Everything is deterministic and clock-injectable; nothing here starts
threads — the router (or a bench loop) owns the interval.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, List, Mapping, \
    Optional, Sequence, Tuple, Union

from .metrics import MetricsRegistry

__all__ = [
    "Collector",
    "FleetStore",
    "ScrapeLedger",
    "escape_label_value",
    "merge_histograms",
    "quantile_from_buckets",
]


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: ``\\``, ``"`` and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
) -> Optional[float]:
    """Interpolated quantile of a fixed-bucket histogram.

    ``counts`` is per-bucket (not cumulative), one entry per bound plus
    the trailing overflow bucket — the layout
    :class:`~repro.observability.metrics.Histogram.bucket_counts` uses.
    Linear interpolation within the winning bucket, the
    ``histogram_quantile`` convention; observations past the last
    finite bound clamp to it (the honest answer a bounded histogram
    can give).  Returns ``None`` on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        before = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            fraction = (rank - before) / count if count else 0.0
            return lower + (float(bound) - lower) * min(1.0, fraction)
        lower = float(bound)
    return float(bounds[-1]) if bounds else None


def merge_histograms(
    entries: Sequence[Mapping[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Bucket-wise merge of cumulative histogram snapshot entries.

    Every entry must share bucket bounds (the registry's fixed-bucket
    design guarantees it for one metric name); counts and sums add,
    min/max fold.  Returns ``None`` when nothing merges.
    """
    merged: Optional[Dict[str, Any]] = None
    for entry in entries:
        if entry.get("type") != "histogram":
            continue
        buckets = entry.get("buckets") or []
        if merged is None:
            merged = {
                "type": "histogram",
                "count": int(entry.get("count", 0)),
                "sum": float(entry.get("sum", 0.0)),
                "min": entry.get("min"),
                "max": entry.get("max"),
                "buckets": [dict(b) for b in buckets],
            }
            continue
        bounds = [b["le"] for b in merged["buckets"]]
        if [b["le"] for b in buckets] != bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        merged["count"] += int(entry.get("count", 0))
        merged["sum"] += float(entry.get("sum", 0.0))
        for mine, theirs in zip(merged["buckets"], buckets):
            mine["count"] += int(theirs.get("count", 0))
        for key, fold in (("min", min), ("max", max)):
            theirs_v = entry.get(key)
            if theirs_v is None:
                continue
            merged[key] = (
                theirs_v if merged[key] is None
                else fold(merged[key], theirs_v)
            )
    if merged is not None:
        merged["mean"] = (
            merged["sum"] / merged["count"] if merged["count"] else None
        )
    return merged


class ScrapeLedger:
    """Versioned delta scrapes over one :class:`MetricsRegistry`.

    Each :meth:`scrape` bumps the version and retains the cumulative
    snapshot it answered with; a follow-up scrape presenting that
    version as its *cursor* receives only what changed since.  The
    retained history is bounded (``history`` versions), so a scraper
    that falls too far behind gets a full snapshot with ``reset=True``
    instead of a delta against a base the ledger no longer holds —
    stale cursors degrade to correctness, never to double counting.
    """

    def __init__(self, registry: MetricsRegistry, *, history: int = 4):
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.registry = registry
        self.history = history
        self.version = 0
        self.scrapes = 0
        self.resets = 0
        self._snapshots: "OrderedDict[int, Dict[str, dict]]" = \
            OrderedDict()

    @staticmethod
    def _delta(
        base: Mapping[str, dict], current: Mapping[str, dict]
    ) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for name, entry in current.items():
            prior = base.get(name)
            kind = entry.get("type")
            if kind == "counter":
                before = prior["value"] if prior else 0
                delta = entry["value"] - before
                if delta:
                    out[name] = {"type": "counter", "value": delta}
            elif kind == "gauge":
                # gauges are point-in-time: always ship the current value
                out[name] = {"type": "gauge", "value": entry["value"]}
            else:
                prior_count = prior["count"] if prior else 0
                if entry["count"] == prior_count:
                    continue
                prior_buckets = prior["buckets"] if prior else None
                buckets = []
                for idx, bucket in enumerate(entry["buckets"]):
                    before = (
                        prior_buckets[idx]["count"]
                        if prior_buckets else 0
                    )
                    buckets.append({
                        "le": bucket["le"],
                        "count": bucket["count"] - before,
                    })
                out[name] = {
                    "type": "histogram",
                    "count": entry["count"] - prior_count,
                    "sum": entry["sum"] - (prior["sum"] if prior else 0.0),
                    "min": entry.get("min"),
                    "max": entry.get("max"),
                    "buckets": buckets,
                }
        return out

    def scrape(self, cursor: Optional[int] = None) -> Dict[str, Any]:
        """One scrape: ``{"version", "reset", "metrics"}``.

        ``reset=True`` means ``metrics`` is the full cumulative
        snapshot (replace, don't add); otherwise it is the delta since
        the presented ``cursor``.
        """
        current = self.registry.snapshot()
        self.version += 1
        self.scrapes += 1
        base = (
            self._snapshots.get(cursor) if cursor is not None else None
        )
        self._snapshots[self.version] = current
        while len(self._snapshots) > self.history:
            self._snapshots.popitem(last=False)
        if base is None:
            self.resets += 1
            return {
                "version": self.version,
                "reset": True,
                "metrics": current,
            }
        return {
            "version": self.version,
            "reset": False,
            "metrics": self._delta(base, current),
        }


class _NodeSeries:
    """One node's re-accumulated cumulative metrics plus scrape health."""

    __slots__ = ("metrics", "version", "scrapes", "failures",
                 "consecutive_failures", "last_cycle", "slo", "service")

    def __init__(self) -> None:
        self.metrics: Dict[str, dict] = {}
        self.version: Optional[int] = None
        self.scrapes = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.last_cycle: Optional[int] = None
        self.slo: Dict[str, Any] = {}
        self.service: Dict[str, Any] = {}


class FleetStore:
    """Per-node cumulative series rebuilt from versioned scrapes."""

    def __init__(self) -> None:
        self._nodes: Dict[str, _NodeSeries] = {}

    def _series(self, node: str) -> _NodeSeries:
        series = self._nodes.get(node)
        if series is None:
            series = self._nodes[node] = _NodeSeries()
        return series

    def ingest(self, node: str, payload: Mapping[str, Any],
               *, cycle: int = 0) -> None:
        """Apply one scrape payload (reset snapshot or delta)."""
        series = self._series(node)
        series.version = payload.get("version")
        series.scrapes += 1
        series.consecutive_failures = 0
        series.last_cycle = cycle
        series.slo = dict(payload.get("slo") or {})
        series.service = dict(payload.get("service") or {})
        metrics = payload.get("metrics") or {}
        if payload.get("reset"):
            series.metrics = {
                name: _copy_entry(entry)
                for name, entry in metrics.items()
            }
            return
        for name, entry in metrics.items():
            kind = entry.get("type")
            known = series.metrics.get(name)
            if known is None or known.get("type") != kind:
                series.metrics[name] = _copy_entry(entry)
                continue
            if kind == "counter":
                known["value"] += entry["value"]
            elif kind == "gauge":
                known["value"] = entry["value"]
            else:
                known["count"] += int(entry.get("count", 0))
                known["sum"] += float(entry.get("sum", 0.0))
                known["min"] = entry.get("min")
                known["max"] = entry.get("max")
                theirs = entry.get("buckets") or []
                if [b["le"] for b in theirs] != \
                        [b["le"] for b in known["buckets"]]:
                    series.metrics[name] = _copy_entry(entry)
                    continue
                for mine, bucket in zip(known["buckets"], theirs):
                    mine["count"] += int(bucket.get("count", 0))
                known["mean"] = (
                    known["sum"] / known["count"]
                    if known["count"] else None
                )

    def note_failure(self, node: str) -> None:
        series = self._series(node)
        series.failures += 1
        series.consecutive_failures += 1

    # -- views -------------------------------------------------------------

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def node_metrics(self, node: str) -> Dict[str, dict]:
        series = self._nodes.get(node)
        return dict(series.metrics) if series else {}

    def node_health(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: {
                "version": series.version,
                "scrapes": series.scrapes,
                "failures": series.failures,
                "consecutive_failures": series.consecutive_failures,
                "last_cycle": series.last_cycle,
            }
            for name, series in sorted(self._nodes.items())
        }

    def node_states(self) -> Dict[str, Dict[str, Any]]:
        """Per-node auxiliary scrape state (SLO burn + service block)."""
        return {
            name: {
                "slo": dict(series.slo),
                "service": dict(series.service),
                "consecutive_failures": series.consecutive_failures,
            }
            for name, series in sorted(self._nodes.items())
        }

    def fleet_counters(self) -> Dict[str, int]:
        """Counters summed across every node."""
        totals: Dict[str, int] = {}
        for series in self._nodes.values():
            for name, entry in series.metrics.items():
                if entry.get("type") == "counter":
                    totals[name] = totals.get(name, 0) + entry["value"]
        return dict(sorted(totals.items()))

    def fleet_histogram(self, name: str) -> Optional[Dict[str, Any]]:
        """One metric's histograms merged bucket-wise across nodes."""
        entries = [
            series.metrics[name]
            for series in self._nodes.values()
            if name in series.metrics
        ]
        return merge_histograms(entries) if entries else None

    def fleet_quantiles(
        self, name: str, quantiles: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, Optional[float]]:
        merged = self.fleet_histogram(name)
        out: Dict[str, Optional[float]] = {"count": 0}
        if merged is None:
            out.update({f"p{int(q * 100)}": None for q in quantiles})
            return out
        bounds = [
            b["le"] for b in merged["buckets"] if b["le"] != "+Inf"
        ]
        counts = [b["count"] for b in merged["buckets"]]
        out["count"] = merged["count"]
        for q in quantiles:
            out[f"p{int(q * 100)}"] = quantile_from_buckets(
                bounds, counts, q
            )
        return out


def _copy_entry(entry: Mapping[str, Any]) -> dict:
    out = dict(entry)
    if "buckets" in out:
        out["buckets"] = [dict(b) for b in out["buckets"]]
    return out


ScrapeFn = Callable[
    [str, Optional[int]],
    Union[Dict[str, Any], Awaitable[Dict[str, Any]]],
]

# the fleet latency histogram the SLO quantiles read; every
# DiversificationService publishes it through its telemetry registry
LATENCY_METRIC = "service.latency_s"


class Collector:
    """The scrape cycle: pull every node, merge, evaluate, export.

    Parameters
    ----------
    nodes:
        Callable returning the node names to scrape this cycle (the
        router passes its live membership; a standalone deployment a
        static list).
    scrape:
        ``scrape(node, cursor)`` returning the node's scrape payload;
        sync or async (the router's is async over the ``scrape`` op).
    interval:
        The intended scrape period in seconds — recorded for the fleet
        block and used by whoever owns the background loop.
    engine:
        Optional :class:`~repro.observability.anomaly.AnomalyEngine`
        evaluated after each cycle's merge.
    fleet_state:
        Optional callable contributing extra state to the engine's
        input (the router supplies ``dark_labels`` from its ring +
        membership view).
    """

    def __init__(
        self,
        *,
        nodes: Callable[[], Sequence[str]],
        scrape: ScrapeFn,
        interval: float = 1.0,
        engine: Optional[Any] = None,
        fleet_state: Optional[Callable[[], Dict[str, Any]]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.nodes = nodes
        self.scrape = scrape
        self.interval = interval
        self.engine = engine
        self.fleet_state = fleet_state
        self.store = FleetStore()
        self.cycles = 0
        self.scrape_failures = 0
        self._cursors: Dict[str, Optional[int]] = {}

    @classmethod
    def for_services(
        cls,
        services: Mapping[str, Any],
        **kwargs: Any,
    ) -> "Collector":
        """A collector over in-process services (no cluster needed):
        each target must expose ``scrape(cursor)`` — which every
        :class:`~repro.service.service.DiversificationService` does."""
        targets = dict(services)

        def scrape(node: str, cursor: Optional[int]) -> Dict[str, Any]:
            payload = targets[node].scrape(cursor)
            payload.setdefault("node", node)
            return payload

        return cls(
            nodes=lambda: sorted(targets), scrape=scrape, **kwargs
        )

    async def collect_once(self) -> Dict[str, Any]:
        """One full cycle: scrape, merge, evaluate.  Returns the cycle
        summary (scraped/failed nodes and any active alerts)."""
        self.cycles += 1
        scraped: List[str] = []
        failed: List[str] = []
        for node in list(self.nodes()):
            try:
                result = self.scrape(node, self._cursors.get(node))
                if inspect.isawaitable(result):
                    result = await result
            except Exception:
                self.scrape_failures += 1
                self.store.note_failure(node)
                self._cursors.pop(node, None)
                failed.append(node)
                continue
            self._cursors[node] = result.get("version")
            self.store.ingest(node, result, cycle=self.cycles)
            scraped.append(node)
        alerts: List[Any] = []
        if self.engine is not None:
            alerts = self.engine.evaluate(self._engine_state())
        return {
            "cycle": self.cycles,
            "scraped": scraped,
            "failed": failed,
            "alerts": [alert.as_dict() for alert in alerts],
        }

    def _engine_state(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {
            "cycle": self.cycles,
            "latency": self.store.fleet_quantiles(LATENCY_METRIC),
            "nodes": self.store.node_states(),
        }
        if self.fleet_state is not None:
            state.update(self.fleet_state())
        return state

    # -- views -------------------------------------------------------------

    def fleet(self) -> Dict[str, Any]:
        """The ``fleet`` block ``health()``/``introspect()`` surface."""
        slo_max = {"fast_burn": 0.0, "slow_burn": 0.0}
        for node_state in self.store.node_states().values():
            slo = node_state["slo"]
            slo_max["fast_burn"] = max(
                slo_max["fast_burn"], slo.get("max_fast_burn", 0.0)
            )
            slo_max["slow_burn"] = max(
                slo_max["slow_burn"], slo.get("max_slow_burn", 0.0)
            )
        return {
            "cycles": self.cycles,
            "interval_s": self.interval,
            "scrape_failures": self.scrape_failures,
            "nodes": self.store.node_health(),
            "counters": self.store.fleet_counters(),
            "latency": self.store.fleet_quantiles(LATENCY_METRIC),
            "slo": slo_max,
            "alerts_active": (
                len(self.engine.active) if self.engine is not None
                else 0
            ),
        }

    def to_prometheus(self) -> str:
        """The one federated page: per-node series under ``node=<id>``
        labels, fleet aggregates under ``fleet_*`` families, and (with
        an engine attached) the ``repro_alerts`` series."""
        from .exporters import _prom_name, _prom_value

        lines: List[str] = []
        typed: set = set()

        def declare(family: str, kind: str) -> None:
            if family not in typed:
                typed.add(family)
                lines.append(f"# TYPE {family} {kind}")

        for node in self.store.nodes():
            label = f'node="{escape_label_value(node)}"'
            for name, entry in sorted(
                self.store.node_metrics(node).items()
            ):
                prom = _prom_name(name)
                kind = entry.get("type")
                if kind == "counter":
                    declare(f"{prom}_total", "counter")
                    lines.append(
                        f"{prom}_total{{{label}}} {entry['value']}"
                    )
                elif kind == "gauge":
                    declare(prom, "gauge")
                    lines.append(
                        f"{prom}{{{label}}} "
                        f"{_prom_value(entry['value'])}"
                    )
                else:
                    declare(prom, "histogram")
                    cumulative = 0
                    for bucket in entry["buckets"]:
                        cumulative += bucket["count"]
                        le = (
                            "+Inf" if bucket["le"] == "+Inf"
                            else _prom_value(bucket["le"])
                        )
                        lines.append(
                            f'{prom}_bucket{{{label},le="{le}"}} '
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{prom}_sum{{{label}}} "
                        f"{_prom_value(entry['sum'])}"
                    )
                    lines.append(
                        f"{prom}_count{{{label}}} {entry['count']}"
                    )
        for name, total in self.store.fleet_counters().items():
            family = f"fleet_{_prom_name(name)}_total"
            declare(family, "counter")
            lines.append(f"{family} {total}")
        merged = self.store.fleet_histogram(LATENCY_METRIC)
        if merged is not None:
            family = f"fleet_{_prom_name(LATENCY_METRIC)}"
            declare(family, "histogram")
            cumulative = 0
            for bucket in merged["buckets"]:
                cumulative += bucket["count"]
                le = (
                    "+Inf" if bucket["le"] == "+Inf"
                    else _prom_value(bucket["le"])
                )
                lines.append(
                    f'{family}_bucket{{le="{le}"}} {cumulative}'
                )
            lines.append(
                f"{family}_sum {_prom_value(merged['sum'])}"
            )
            lines.append(f"{family}_count {merged['count']}")
            quantiles = self.store.fleet_quantiles(LATENCY_METRIC)
            declare("fleet_slo_latency_seconds", "gauge")
            for key in ("p50", "p95", "p99"):
                value = quantiles.get(key)
                if value is None:
                    continue
                q = f"0.{key[1:]}"
                lines.append(
                    f'fleet_slo_latency_seconds{{quantile="{q}"}} '
                    f"{_prom_value(value)}"
                )
        if self.engine is not None:
            lines.extend(self.engine.to_prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")
