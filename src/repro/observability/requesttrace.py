"""Request-scoped tracing across executor boundaries.

The engine's parallel solvers push shard tasks through a
:class:`~repro.engine.executors.ShardExecutor` — a thread pool, a
process pool, or an in-process loop.  Two things break naive tracing
there:

* **threads** do not inherit the submitting task's span stack, so a
  span opened on a pool thread parents on nothing;
* **processes** do not even share the tracer — spans opened inside a
  ``ProcessPoolExecutor`` worker live in that worker's (usually
  disabled) facade and are dropped on the floor.

:func:`traced_run` fixes both with one wrapper.  It captures the
caller's :class:`~repro.observability.tracing.TraceContext`, ships it
with every task (as a plain dict — it must survive pickling), and runs
each task through :func:`_traced_task`:

* where the parent's facade is visible (serial/thread executors, or a
  process pool's ≤1-task in-process fallback), the context is activated
  and the shard span lands directly in the shared tracer;
* in a process worker the facade is off, so the shard records into a
  **local, throwaway tracer** and returns its finished spans alongside
  the result; the parent then :meth:`~repro.observability.tracing.
  Tracer.adopt`\\ s them — fresh ids, internal parent links remapped,
  roots grafted onto the submitting span — so the request's assembled
  tree includes the work its shards did in other processes.

Disabled, :func:`traced_run` is a single ``enabled()`` check and a plain
``executor.run`` — nothing is wrapped, nothing is pickled beyond the
task itself, and the ≤5% overhead gate keeps holding.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Sequence

from . import facade as _facade
from .tracing import Span, TraceContext, Tracer, mint_trace_id

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "mint_trace_id",
    "traced_run",
]


def _traced_task(
    fn: Callable,
    name: str,
    ctx_payload: Dict[str, Any],
    index: int,
    task: tuple,
):
    """Run one shard task under a span; module-level so process pools can
    pickle it by reference.

    Returns ``(result, exported_spans)`` where ``exported_spans`` is
    ``None`` when the span already landed in the caller's tracer (same
    process) and a list of span dicts when it was recorded in a worker
    process and must be adopted by the caller.
    """
    bundle = _facade.active()
    same_process = ctx_payload.get("pid") == os.getpid()
    if bundle is not None and same_process:
        # Same process as the submitter: attach to the shared tracer.
        ctx = TraceContext.from_dict(ctx_payload)
        with bundle.tracer.activate(ctx):
            with bundle.tracer.span(name, shard=index):
                return fn(*task), None
    # Worker process.  The facade may *look* enabled here — forked
    # workers inherit the parent's module globals — but recording into
    # that inherited tracer writes to a copy the submitter never sees
    # (the historical span-loss bug).  The PID check routes every
    # foreign process here: record into a local, throwaway tracer and
    # export the finished spans with the result.  The local spans form
    # a self-contained forest (roots have parent_id=None), which is
    # exactly what ``Tracer.adopt`` grafts.
    local = Tracer()
    with local.span(name, shard=index):
        result = fn(*task)
    return result, local.as_dicts()


def traced_run(
    executor,
    fn: Callable,
    tasks: Sequence[tuple],
    *,
    name: str,
) -> List:
    """``executor.run(fn, tasks)`` with one span per shard task.

    Spans parent onto the caller's current trace position (typically the
    enclosing ``solver.*`` span) regardless of which executor — or which
    process — the task lands in.  With observability disabled this is a
    straight pass-through.
    """
    if not _facade.enabled():
        return executor.run(fn, tasks)
    tracer = _facade.active().tracer
    ctx = tracer.current_context() or TraceContext(trace_id=None)
    payload = dict(ctx.to_dict(), pid=os.getpid())
    wrapped = [
        (fn, name, payload, index, task)
        for index, task in enumerate(tasks)
    ]
    outputs = executor.run(_traced_task, wrapped)
    results: List = []
    adopted_spans = 0
    for result, exported in outputs:
        if exported:
            tracer.adopt(
                exported, parent_id=ctx.span_id, trace_id=ctx.trace_id
            )
            adopted_spans += len(exported)
        results.append(result)
    if adopted_spans:
        _facade.count("trace.spans_adopted", adopted_spans)
    return results
