"""Diff two ``BENCH_*.json`` trajectory artifacts and gate regressions.

CI uploads a bench artifact per suite but nothing *compares* runs — a
2x wall-time regression sails through as long as the document is
well-formed.  This CLI closes the loop::

    python -m repro.observability.benchdiff \
        --current BENCH_service.json --baseline prev/BENCH_service.json \
        --fail-over 1.5 --gate warm_digest=1.05

Solver entries are matched by ``solver`` name (first occurrence wins on
duplicates — later entries of repeated names are reported as unmatched)
and compared on ``wall_time_s``.  ``--fail-over R`` fails the run when
any matched solver's current/baseline ratio exceeds ``R``;
``--gate NAME=R`` overrides the threshold for one solver.  With no
``--fail-over`` and no gates the diff is informational and always exits
0.  ``--self-check`` runs the detector against synthetic documents (a
planted 2x regression must fail, an improvement must pass) so the CI
job proves the gate can actually fire before trusting it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from .bench import BenchSchemaError, BenchTrajectory, validate_bench

__all__ = ["diff_documents", "main"]


def _index_solvers(document: Dict[str, Any]) -> Dict[str, dict]:
    index: Dict[str, dict] = {}
    for entry in document.get("solvers", []):
        index.setdefault(entry["solver"], entry)
    return index


def diff_documents(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    fail_over: Optional[float] = None,
    gates: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Compare two validated BENCH documents.

    Returns ``{"rows": [...], "unmatched": [...], "failures": [...]}``
    where each row carries the solver name, both wall times, the ratio,
    the applicable threshold (or ``None``) and a ``regressed`` flag.
    """
    gates = dict(gates or {})
    current_index = _index_solvers(current)
    baseline_index = _index_solvers(baseline)
    rows: List[Dict[str, Any]] = []
    failures: List[str] = []
    for name in sorted(current_index):
        entry = current_index[name]
        base = baseline_index.get(name)
        if base is None:
            continue
        base_wall = float(base["wall_time_s"])
        cur_wall = float(entry["wall_time_s"])
        ratio = (
            cur_wall / base_wall if base_wall > 0
            else (1.0 if cur_wall == 0 else float("inf"))
        )
        threshold = gates.get(name, fail_over)
        regressed = threshold is not None and ratio > threshold
        rows.append({
            "solver": name,
            "baseline_s": base_wall,
            "current_s": cur_wall,
            "ratio": ratio,
            "threshold": threshold,
            "regressed": regressed,
        })
        if regressed:
            failures.append(
                f"{name}: {cur_wall:.6f}s vs {base_wall:.6f}s "
                f"({ratio:.2f}x > {threshold:.2f}x allowed)"
            )
    unmatched = sorted(
        set(current_index) ^ set(baseline_index)
    )
    for name in gates:
        if name not in current_index or name not in baseline_index:
            failures.append(
                f"{name}: gated solver missing from "
                f"{'current' if name not in current_index else 'baseline'}"
                " document"
            )
    return {"rows": rows, "unmatched": unmatched,
            "failures": failures}


def _parse_gate(text: str) -> Sequence[Any]:
    name, _, ratio = text.partition("=")
    if not name or not ratio:
        raise argparse.ArgumentTypeError(
            f"gate must look like NAME=RATIO, got {text!r}"
        )
    try:
        value = float(ratio)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"gate ratio must be a number, got {ratio!r}"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"gate ratio must be > 0, got {value}"
        )
    return (name, value)


def _synthetic(suite: str, walls: Dict[str, float]) -> Dict[str, Any]:
    trajectory = BenchTrajectory(suite, now=0.0)
    for solver, wall in walls.items():
        trajectory.record_solver(
            solver,
            wall_time_s=wall,
            solution_size=4,
            instance={"posts": 100, "labels": 3},
            counters={"scan.posts": 100},
        )
    return trajectory.to_dict()


def _self_check() -> int:
    baseline = _synthetic(
        "selfcheck", {"warm_digest": 0.010, "cold_solve": 0.100}
    )
    regressed = _synthetic(
        "selfcheck", {"warm_digest": 0.020, "cold_solve": 0.090}
    )
    report = diff_documents(
        regressed, baseline, gates={"warm_digest": 1.05}
    )
    if not report["failures"]:
        print(
            "SELF-CHECK FAILED: planted 2x regression not detected",
            file=sys.stderr,
        )
        return 1
    improved = _synthetic(
        "selfcheck", {"warm_digest": 0.009, "cold_solve": 0.080}
    )
    report = diff_documents(
        improved, baseline,
        fail_over=1.5, gates={"warm_digest": 1.05},
    )
    if report["failures"]:
        print(
            "SELF-CHECK FAILED: improvement flagged as regression: "
            f"{report['failures']}",
            file=sys.stderr,
        )
        return 1
    missing = diff_documents(
        _synthetic("selfcheck", {"cold_solve": 0.080}), baseline,
        gates={"warm_digest": 1.05},
    )
    if not missing["failures"]:
        print(
            "SELF-CHECK FAILED: missing gated solver not detected",
            file=sys.stderr,
        )
        return 1
    print(
        "benchdiff self-check OK: regression detected, improvement "
        "passed, missing gated solver detected"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.benchdiff",
        description=(
            "Diff two BENCH_*.json artifacts and fail on configured "
            "wall-time regressions."
        ),
    )
    parser.add_argument("--current", metavar="PATH",
                        help="the artifact from this run")
    parser.add_argument("--baseline", metavar="PATH",
                        help="the previous trajectory entry")
    parser.add_argument(
        "--fail-over", type=float, metavar="RATIO", default=None,
        help="fail when any matched solver regresses past RATIO",
    )
    parser.add_argument(
        "--gate", type=_parse_gate, action="append", default=[],
        metavar="NAME=RATIO",
        help="per-solver threshold override (repeatable)",
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="verify the detector on synthetic documents and exit",
    )
    args = parser.parse_args(argv)
    if args.self_check:
        return _self_check()
    if not args.current or not args.baseline:
        parser.error(
            "--current and --baseline are required "
            "(or use --self-check)"
        )
    try:
        current = validate_bench(args.current)
        baseline = validate_bench(args.baseline)
    except BenchSchemaError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    report = diff_documents(
        current, baseline,
        fail_over=args.fail_over, gates=dict(args.gate),
    )
    for row in report["rows"]:
        marker = "REGRESSED" if row["regressed"] else "ok"
        limit = (
            f" (limit {row['threshold']:.2f}x)"
            if row["threshold"] is not None else ""
        )
        print(
            f"{marker:9s} {row['solver']}: "
            f"{row['baseline_s']:.6f}s -> {row['current_s']:.6f}s "
            f"({row['ratio']:.2f}x{limit})"
        )
    for name in report["unmatched"]:
        print(f"unmatched {name}")
    if report["failures"]:
        print(
            f"benchdiff: {len(report['failures'])} regression(s):",
            file=sys.stderr,
        )
        for failure in report["failures"]:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    sys.exit(main())
