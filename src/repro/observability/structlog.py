"""Structured event logging: JSON lines over stdlib ``logging``.

The serving stack used to have silent paths — a shed request, a stale
cache publish, a quarantined arrival left no record an operator could
correlate with anything.  This module gives every such event one JSON
object on one line, carrying the three correlation keys the rest of the
observability layer speaks: **trace_id**, **tenant**, **epoch**.

Design constraints:

* **stdlib logging underneath.**  Events flow through the
  ``repro.events`` logger, so deployments route them with ordinary
  handler/level configuration, and nothing here fights an existing
  logging setup.  :class:`JsonLinesHandler` is the provided sink;
  :func:`configure` attaches one.
* **near-zero cost when nobody listens.**  :func:`emit` checks
  ``logger.isEnabledFor(level)`` first; with the default WARNING
  threshold the routine INFO events (one per request) cost one integer
  comparison.  Hot inner loops still use the facade counters — events
  are for *discrete, explainable occurrences*, not per-iteration data.
* **trace correlation by default.**  When no ``trace_id`` is passed and
  a tracer is active, the event picks up the calling task's current
  trace context, so events land in the same trace the spans do.

Schema (one JSON object per line)::

    {"event": "service.shed", "level": "WARNING", "ts": 1700000000.0,
     "trace_id": "9f…", "tenant": "acme", "epoch": 7, …event fields…}

``ts`` is wall-clock (``record.created``); everything else is the
emitting call's keyword fields, JSON-coerced with ``default=repr`` so a
stray un-serialisable value degrades to its repr instead of killing the
log line.
"""

from __future__ import annotations

import json
import logging
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from . import facade as _facade

__all__ = [
    "LOGGER_NAME",
    "JsonLinesHandler",
    "capture",
    "configure",
    "emit",
    "event_payload",
]

LOGGER_NAME = "repro.events"

_STRUCT_ATTR = "structured_event"


def event_payload(record: logging.LogRecord) -> Dict[str, Any]:
    """The structured payload of one log record (ts/level filled in)."""
    payload = dict(getattr(record, _STRUCT_ATTR, None) or
                   {"event": record.getMessage()})
    payload.setdefault("level", record.levelname)
    payload.setdefault("ts", record.created)
    return payload


class JsonLinesHandler(logging.Handler):
    """Writes one JSON object per line to a text stream."""

    def __init__(self, stream=None, level: int = logging.NOTSET):
        super().__init__(level=level)
        import sys

        self.stream = stream if stream is not None else sys.stderr

    def emit(self, record: logging.LogRecord) -> None:
        try:
            line = json.dumps(
                event_payload(record), sort_keys=True, default=repr
            )
            self.stream.write(line + "\n")
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


class _ListHandler(logging.Handler):
    """Collects structured payloads in memory (tests)."""

    def __init__(self, sink: List[Dict[str, Any]]):
        super().__init__(level=logging.DEBUG)
        self.sink = sink

    def emit(self, record: logging.LogRecord) -> None:
        self.sink.append(event_payload(record))


def configure(
    stream=None, level: int = logging.INFO
) -> JsonLinesHandler:
    """Attach a :class:`JsonLinesHandler` to the events logger.

    Returns the handler so callers can detach it
    (``logging.getLogger(LOGGER_NAME).removeHandler(handler)``).
    """
    logger = logging.getLogger(LOGGER_NAME)
    handler = JsonLinesHandler(stream=stream)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler


@contextmanager
def capture(
    level: int = logging.DEBUG,
) -> Iterator[List[Dict[str, Any]]]:
    """Collect every event emitted in the block (for tests).

    Yields the list the payloads are appended to, in emission order.
    """
    logger = logging.getLogger(LOGGER_NAME)
    sink: List[Dict[str, Any]] = []
    handler = _ListHandler(sink)
    previous_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(level)
    try:
        yield sink
    finally:
        logger.removeHandler(handler)
        logger.setLevel(previous_level)


def emit(
    event: str,
    *,
    level: int = logging.INFO,
    trace_id: Optional[str] = None,
    tenant: Optional[str] = None,
    epoch: Optional[int] = None,
    **fields: Any,
) -> None:
    """Emit one structured event.

    ``trace_id`` defaults to the calling task's active trace (when a
    tracer is running), so events emitted under a request span correlate
    without every call-site threading the id through.
    """
    logger = logging.getLogger(LOGGER_NAME)
    if not logger.isEnabledFor(level):
        return
    if trace_id is None:
        ctx = _facade.current_context()
        if ctx is not None:
            trace_id = ctx.trace_id
            if tenant is None and ctx.tenant:
                tenant = ctx.tenant
    payload: Dict[str, Any] = {
        "event": event,
        "trace_id": trace_id,
        "tenant": tenant,
        "epoch": epoch,
    }
    payload.update(fields)
    logger.log(level, "%s", event, extra={_STRUCT_ATTR: payload})
