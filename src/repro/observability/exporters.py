"""Exporters: JSON snapshots and Prometheus text exposition.

Two consumers, two formats:

* :func:`to_json` / :func:`write_json` — the full bundle (metrics and
  spans) as one JSON document, for the bench trajectory and offline
  analysis;
* :func:`to_prometheus` — the metrics as Prometheus text exposition
  format 0.0.4, for scraping a long-running deployment.  Dotted metric
  names become underscore-separated (``scan.window_advances`` →
  ``scan_window_advances``), counters get the ``_total`` suffix, and
  histograms emit the standard ``_bucket`` / ``_sum`` / ``_count``
  series with cumulative ``le`` labels.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import List, Union

from .facade import Observability
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_json", "write_json", "to_prometheus"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    cleaned = _INVALID.sub("_", name.replace(".", "_"))
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_json(bundle: Observability, *, indent: int = 2) -> str:
    """The whole bundle — metrics snapshot plus finished spans."""
    return json.dumps(
        {
            "metrics": bundle.registry.snapshot(),
            "spans": bundle.tracer.as_dicts(),
        },
        indent=indent,
        sort_keys=True,
    )


def write_json(bundle: Observability, path: Union[str, "os.PathLike"],
               *, indent: int = 2) -> None:
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write(to_json(bundle, indent=indent))
        handle.write("\n")


def to_prometheus(
    source: Union[Observability, MetricsRegistry]
) -> str:
    """Prometheus text exposition of every registered instrument."""
    registry = (
        source.registry if isinstance(source, Observability) else source
    )
    lines: List[str] = []
    for name in registry.names():
        instrument = registry._instruments[name]
        prom = _prom_name(name)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {instrument.value}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(
                instrument.buckets, instrument.bucket_counts
            ):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += instrument.bucket_counts[-1]
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_prom_value(instrument.total)}")
            lines.append(f"{prom}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")
