"""Exporters: JSON snapshots, trace trees, and Prometheus exposition.

Consumers and formats:

* :func:`to_json` / :func:`write_json` — the full bundle (metrics and
  spans) as one JSON document, for the bench trajectory and offline
  analysis;
* :func:`trace_to_json` — one assembled request trace (the
  :meth:`~repro.observability.tracing.Tracer.assemble` tree) as JSON,
  for explaining a single served response;
* :func:`to_prometheus` — the metrics as Prometheus text exposition
  format 0.0.4, for scraping a long-running deployment.  Dotted metric
  names become underscore-separated (``scan.window_advances`` →
  ``scan_window_advances``), counters get the ``_total`` suffix, and
  histograms emit the standard ``_bucket`` / ``_sum`` / ``_count``
  series with cumulative ``le`` labels;
* :func:`parse_prometheus` — the inverse direction, used as a *lint*:
  CI round-trips every exposition this repo produces through the
  parser, so a malformed scrape fails the build instead of the
  deployment's Prometheus.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Any, Dict, List, Union

from .facade import Observability
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Tracer

__all__ = [
    "PromFormatError",
    "parse_prometheus",
    "to_json",
    "to_prometheus",
    "trace_to_json",
    "write_json",
]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    cleaned = _INVALID.sub("_", name.replace(".", "_"))
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_json(bundle: Observability, *, indent: int = 2) -> str:
    """The whole bundle — metrics snapshot plus finished spans."""
    return json.dumps(
        {
            "metrics": bundle.registry.snapshot(),
            "spans": bundle.tracer.as_dicts(),
        },
        indent=indent,
        sort_keys=True,
    )


def write_json(bundle: Observability, path: Union[str, "os.PathLike"],
               *, indent: int = 2) -> None:
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        handle.write(to_json(bundle, indent=indent))
        handle.write("\n")


def to_prometheus(
    source: Union[Observability, MetricsRegistry]
) -> str:
    """Prometheus text exposition of every registered instrument."""
    registry = (
        source.registry if isinstance(source, Observability) else source
    )
    lines: List[str] = []
    for name in registry.names():
        instrument = registry._instruments[name]
        prom = _prom_name(name)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {instrument.value}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(
                instrument.buckets, instrument.bucket_counts
            ):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += instrument.bucket_counts[-1]
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_prom_value(instrument.total)}")
            lines.append(f"{prom}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def trace_to_json(
    tracer: Tracer, trace_id: str, *, indent: int = 2
) -> str:
    """One assembled trace — the span tree plus linked traces — as JSON."""
    return json.dumps(
        tracer.assemble(trace_id), indent=indent, sort_keys=True
    )


# ---------------------------------------------------------------------------
# Prometheus exposition linting (parse side)
# ---------------------------------------------------------------------------

class PromFormatError(ValueError):
    """A line that is not valid Prometheus text exposition 0.0.4."""


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^({_METRIC_NAME})(?:\{{(.*)\}})?\s+(\S+)(?:\s+(-?\d+))?$"
)
_LABEL = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)
_COMMENT = re.compile(
    rf"^#\s+(HELP|TYPE)\s+({_METRIC_NAME})(?:\s+(.*))?$"
)
_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"}
)


def _unescape_label_value(raw: str, line_no: int) -> str:
    """Decode a label value, rejecting any escape that is not one of
    the three the exposition format defines (``\\\\``, ``\\"``,
    ``\\n``).  A sequential scan, so ``\\\\n`` decodes to a backslash
    followed by a literal ``n`` — replace-chains get this wrong."""
    out: List[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char != "\\":
            out.append(char)
            index += 1
            continue
        if index + 1 >= len(raw):
            raise PromFormatError(
                f"line {line_no}: dangling escape in label value "
                f"{raw!r}"
            )
        escape = raw[index + 1]
        if escape == "\\":
            out.append("\\")
        elif escape == '"':
            out.append('"')
        elif escape == "n":
            out.append("\n")
        else:
            raise PromFormatError(
                f"line {line_no}: illegal escape '\\{escape}' in "
                f"label value {raw!r}"
            )
        index += 2
    return "".join(out)


def _parse_labels(text: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for match in _LABEL.finditer(text):
        labels[match.group(1)] = _unescape_label_value(
            match.group(2), line_no
        )
    # everything between labels must be commas (possibly a trailing one)
    leftover = _LABEL.sub("", text).replace(",", "").strip()
    if leftover:
        raise PromFormatError(
            f"line {line_no}: malformed label set {{{text}}}"
        )
    return labels


def _parse_value(token: str, line_no: int) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise PromFormatError(
            f"line {line_no}: invalid sample value {token!r}"
        ) from None


def parse_prometheus(text: str) -> List[Dict[str, Any]]:
    """Parse a text exposition; raises :class:`PromFormatError` on junk.

    Returns one record per sample line:
    ``{"name", "labels", "value", "type"}`` — ``type`` is the declared
    ``# TYPE`` for the sample's metric family (``None`` if undeclared).
    This is the repo's scrape *lint*: anything :func:`to_prometheus`,
    ``SLOMonitor.to_prometheus`` or the cluster collector's federated
    page emits must round-trip through here.

    Two whole-page checks guard the federated exposition: a repeated
    series — same metric name *and* same label set, the classic bug
    when per-node series lose their ``node`` label in a merge — is an
    error, and label values may only use the three legal escapes
    (``\\\\``, ``\\"``, ``\\n``).
    """
    samples: List[Dict[str, Any]] = []
    types: Dict[str, str] = {}
    seen: set = set()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = _COMMENT.match(line)
            if match is None:
                # bare comments are legal; HELP/TYPE must be well-formed
                if line.split()[0] == "#" and len(line.split()) >= 2 \
                        and line.split()[1] in ("HELP", "TYPE"):
                    raise PromFormatError(
                        f"line {line_no}: malformed {line.split()[1]} "
                        f"comment: {raw!r}"
                    )
                continue
            kind, metric, rest = match.groups()
            if kind == "TYPE":
                if rest not in _TYPES:
                    raise PromFormatError(
                        f"line {line_no}: unknown metric type {rest!r}"
                    )
                types[metric] = rest
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise PromFormatError(
                f"line {line_no}: not a valid sample line: {raw!r}"
            )
        name, label_text, value_token, _timestamp = match.groups()
        labels = (
            {} if label_text is None
            else _parse_labels(label_text, line_no)
        )
        series = (name, tuple(sorted(labels.items())))
        if series in seen:
            label_repr = ",".join(
                f'{key}="{value}"' for key, value in series[1]
            )
            raise PromFormatError(
                f"line {line_no}: duplicate series "
                f"{name}{{{label_repr}}}"
            )
        seen.add(series)
        family = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        samples.append({
            "name": name,
            "labels": labels,
            "value": _parse_value(value_token, line_no),
            "type": types.get(family, types.get(name)),
        })
    return samples
