"""The zero-overhead-when-disabled instrumentation facade.

The hot paths (Scan's posting-list walk, the greedy rounds, the stream
event loop) must pay *nothing* for observability when nobody asked for
it.  The contract:

* Observability is **off by default**.  One module-level reference,
  ``_ACTIVE``, is ``None`` while off; every facade helper checks it first
  and returns immediately, so a disabled ``count()`` is one global load
  and one ``is None`` test.
* Solvers publish at **call granularity** — work units are accumulated in
  local integers inside the loops (or derived arithmetically) and handed
  to the registry once per solver call, never per iteration.  Paths where
  even a local accumulator would show up (Scan's inner loop) switch to an
  instrumented twin only when observability is on; the disabled code path
  is byte-for-byte the uninstrumented one, which
  ``benchmarks/test_observability_overhead.py`` enforces (≤5% delta).
* :func:`enable` / :func:`disable` swap the whole bundle atomically;
  :func:`session` scopes it for tests and benches.

The bundle pairs a :class:`~repro.observability.metrics.MetricsRegistry`
with a :class:`~repro.observability.tracing.Tracer` sharing one clock, so
counters, histograms and spans line up on the same timeline.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from .metrics import MetricsRegistry
from .tracing import TraceContext, Tracer

__all__ = [
    "Observability",
    "enable",
    "disable",
    "session",
    "active",
    "enabled",
    "clock",
    "count",
    "observe",
    "set_gauge",
    "span",
    "activate",
    "current_context",
]


class Observability:
    """A metrics registry and a tracer sharing one injectable clock."""

    __slots__ = ("registry", "tracer", "clock")

    def __init__(self, clock: Callable[[], float] = _time.perf_counter):
        self.clock = clock
        self.registry = MetricsRegistry(clock=clock)
        self.tracer = Tracer(clock=clock)


_ACTIVE: Optional[Observability] = None


def enable(
    bundle: Optional[Observability] = None,
    *,
    clock: Callable[[], float] = _time.perf_counter,
) -> Observability:
    """Turn instrumentation on; returns the active bundle.

    Pass an existing :class:`Observability` to resume accumulating into
    it, or a ``clock`` to build a fresh deterministic one.
    """
    global _ACTIVE
    _ACTIVE = bundle if bundle is not None else Observability(clock=clock)
    return _ACTIVE


def disable() -> Optional[Observability]:
    """Turn instrumentation off; returns the bundle that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


@contextmanager
def session(
    bundle: Optional[Observability] = None,
    *,
    clock: Callable[[], float] = _time.perf_counter,
) -> Iterator[Observability]:
    """Scoped :func:`enable`; restores the previous state on exit."""
    global _ACTIVE
    previous = _ACTIVE
    active_bundle = enable(bundle, clock=clock)
    try:
        yield active_bundle
    finally:
        _ACTIVE = previous


def active() -> Optional[Observability]:
    """The active bundle, or ``None`` when observability is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def clock() -> Callable[[], float]:
    """The active clock — the injectable one when enabled, else
    ``time.perf_counter``.  Timing call-sites route through this so one
    ``enable(clock=fake)`` makes every recorded duration deterministic.
    """
    return _ACTIVE.clock if _ACTIVE is not None else _time.perf_counter


def count(name: str, amount: int = 1) -> None:
    """Increment a counter iff observability is enabled."""
    if _ACTIVE is not None:
        _ACTIVE.registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation iff observability is enabled."""
    if _ACTIVE is not None:
        _ACTIVE.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge iff observability is enabled."""
    if _ACTIVE is not None:
        _ACTIVE.registry.gauge(name).set(value)


class _NullSpan:
    """Inert span stand-in returned while observability is off."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


@contextmanager
def _null_span() -> Iterator[_NullSpan]:
    yield _NULL_SPAN


def span(name: str, **attributes):
    """A tracer span when enabled, an inert context manager when not."""
    if _ACTIVE is not None:
        return _ACTIVE.tracer.span(name, **attributes)
    return _null_span()


def activate(context: Optional[TraceContext]):
    """``Tracer.activate`` when enabled, an inert context manager when
    not — worker call-sites re-attach to their request's trace without
    branching."""
    if _ACTIVE is not None:
        return _ACTIVE.tracer.activate(context)
    return _null_span()


def current_context(tenant: str = "") -> Optional[TraceContext]:
    """The calling task/thread's trace position, or ``None`` when
    observability is off (or nothing is traced)."""
    if _ACTIVE is not None:
        return _ACTIVE.tracer.current_context(tenant)
    return None
