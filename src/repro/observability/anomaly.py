"""Rule-based anomaly detection over each collector cycle.

The :class:`~repro.observability.collector.Collector` hands
:meth:`AnomalyEngine.evaluate` one state dict per cycle (fleet latency
quantiles, per-node SLO burn + service blocks, and router-contributed
extras such as ``dark_labels``); the engine runs its configured rules,
keeps the set of *active* alerts across cycles, and reports every
transition as a structlog event (``obs.alert_raised`` /
``obs.alert_cleared``), a ``repro_alerts`` Prometheus series on the
federated page, and the ``alerts`` block in router ``introspect()``.

Rules (all thresholds are constructor knobs):

``p99_regression``
    Fleet p99 exceeds ``p99_ratio ×`` the trailing-baseline median of
    the last ``baseline_cycles`` observed p99s, with at least
    ``min_samples`` observations behind the current quantile.
``error_budget_fast_burn``
    Any node's fast-window burn rate is at or above ``fast_burn`` —
    14.4 by default, the classic 2 %-budget-in-one-hour multiplier.
``dark_shard``
    The router reports labels whose every replica is down — requests
    for them are already coming back ``degraded``.
``queue_watermark_saturation``
    A node's pending queue is at or above ``queue_ratio`` of its hard
    admission watermark (sheds are imminent).
``view_ledger_drift``
    A node reports poisoned materialized views, or its stale-read
    count grew by more than ``stale_reads_per_cycle`` in one cycle.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from . import structlog

__all__ = ["Alert", "AnomalyEngine", "RULES"]

RULES = (
    "p99_regression",
    "error_budget_fast_burn",
    "dark_shard",
    "queue_watermark_saturation",
    "view_ledger_drift",
)

WARNING = "warning"
CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One active anomaly finding."""

    rule: str
    severity: str
    message: str
    subject: str = ""  # node name, label, or "" for fleet-wide
    value: float = 0.0
    since_cycle: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "value": self.value,
            "since_cycle": self.since_cycle,
        }

    @property
    def key(self) -> Tuple[str, str]:
        return (self.rule, self.subject)


@dataclass
class AnomalyEngine:
    """Evaluates the rule set each cycle and tracks alert lifecycle."""

    p99_ratio: float = 2.0
    baseline_cycles: int = 10
    min_samples: int = 20
    fast_burn: float = 14.4
    queue_ratio: float = 0.8
    stale_reads_per_cycle: int = 10

    active: Dict[Tuple[str, str], Alert] = field(default_factory=dict)
    raised_total: Dict[str, int] = field(default_factory=dict)
    cleared_total: Dict[str, int] = field(default_factory=dict)
    evaluations: int = 0

    def __post_init__(self) -> None:
        if self.p99_ratio <= 1.0:
            raise ValueError(
                f"p99_ratio must be > 1, got {self.p99_ratio}"
            )
        if self.baseline_cycles < 1:
            raise ValueError(
                "baseline_cycles must be >= 1, got "
                f"{self.baseline_cycles}"
            )
        self._p99_history: Deque[float] = deque(
            maxlen=self.baseline_cycles
        )
        self._stale_reads: Dict[str, int] = {}

    # -- rules -------------------------------------------------------------

    def _rule_p99_regression(
        self, state: Mapping[str, Any], cycle: int
    ) -> List[Alert]:
        latency = state.get("latency") or {}
        p99 = latency.get("p99")
        count = latency.get("count", 0)
        alerts: List[Alert] = []
        if p99 is not None and count >= self.min_samples \
                and len(self._p99_history) >= 3:
            ordered = sorted(self._p99_history)
            baseline = ordered[len(ordered) // 2]
            if baseline > 0 and p99 > self.p99_ratio * baseline:
                alerts.append(Alert(
                    rule="p99_regression",
                    severity=WARNING,
                    message=(
                        f"fleet p99 {p99:.6f}s is "
                        f"{p99 / baseline:.1f}x the trailing "
                        f"baseline {baseline:.6f}s"
                    ),
                    value=p99,
                    since_cycle=cycle,
                ))
        if p99 is not None:
            self._p99_history.append(p99)
        return alerts

    def _rule_fast_burn(
        self, state: Mapping[str, Any], cycle: int
    ) -> List[Alert]:
        alerts: List[Alert] = []
        for node, node_state in (state.get("nodes") or {}).items():
            burn = (node_state.get("slo") or {}).get(
                "max_fast_burn", 0.0
            )
            if burn >= self.fast_burn:
                alerts.append(Alert(
                    rule="error_budget_fast_burn",
                    severity=CRITICAL,
                    message=(
                        f"node {node} burning error budget at "
                        f"{burn:.1f}x (threshold {self.fast_burn})"
                    ),
                    subject=node,
                    value=burn,
                    since_cycle=cycle,
                ))
        return alerts

    def _rule_dark_shard(
        self, state: Mapping[str, Any], cycle: int
    ) -> List[Alert]:
        labels = state.get("dark_labels") or []
        if not labels:
            return []
        return [Alert(
            rule="dark_shard",
            severity=CRITICAL,
            message=(
                f"{len(labels)} label(s) have no live replica: "
                f"{', '.join(sorted(labels)[:5])}"
            ),
            subject=",".join(sorted(labels)),
            value=float(len(labels)),
            since_cycle=cycle,
        )]

    def _rule_queue_saturation(
        self, state: Mapping[str, Any], cycle: int
    ) -> List[Alert]:
        alerts: List[Alert] = []
        for node, node_state in (state.get("nodes") or {}).items():
            service = node_state.get("service") or {}
            pending = service.get("pending")
            hard = service.get("hard_watermark")
            if not pending or not hard:
                continue
            ratio = pending / hard
            if ratio >= self.queue_ratio:
                alerts.append(Alert(
                    rule="queue_watermark_saturation",
                    severity=WARNING,
                    message=(
                        f"node {node} queue at {pending}/{hard} "
                        f"({ratio:.0%} of hard watermark)"
                    ),
                    subject=node,
                    value=ratio,
                    since_cycle=cycle,
                ))
        return alerts

    def _rule_view_drift(
        self, state: Mapping[str, Any], cycle: int
    ) -> List[Alert]:
        alerts: List[Alert] = []
        for node, node_state in (state.get("nodes") or {}).items():
            service = node_state.get("service") or {}
            poisoned = service.get("views_poisoned", 0)
            stale = service.get("view_stale_reads")
            if poisoned:
                alerts.append(Alert(
                    rule="view_ledger_drift",
                    severity=CRITICAL,
                    message=(
                        f"node {node} reports {poisoned} poisoned "
                        "view(s)"
                    ),
                    subject=node,
                    value=float(poisoned),
                    since_cycle=cycle,
                ))
                continue
            if stale is not None:
                prior = self._stale_reads.get(node)
                self._stale_reads[node] = stale
                if prior is not None and \
                        stale - prior > self.stale_reads_per_cycle:
                    alerts.append(Alert(
                        rule="view_ledger_drift",
                        severity=WARNING,
                        message=(
                            f"node {node} stale view reads grew by "
                            f"{stale - prior} in one cycle"
                        ),
                        subject=node,
                        value=float(stale - prior),
                        since_cycle=cycle,
                    ))
        return alerts

    # -- lifecycle ---------------------------------------------------------

    def evaluate(self, state: Mapping[str, Any]) -> List[Alert]:
        """Run every rule; returns the full active-alert list."""
        self.evaluations += 1
        cycle = int(state.get("cycle", self.evaluations))
        found: List[Alert] = []
        found.extend(self._rule_p99_regression(state, cycle))
        found.extend(self._rule_fast_burn(state, cycle))
        found.extend(self._rule_dark_shard(state, cycle))
        found.extend(self._rule_queue_saturation(state, cycle))
        found.extend(self._rule_view_drift(state, cycle))

        next_active: Dict[Tuple[str, str], Alert] = {}
        for alert in found:
            known = self.active.get(alert.key)
            if known is not None:
                # keep the original since_cycle; refresh the payload
                alert = Alert(
                    rule=alert.rule,
                    severity=alert.severity,
                    message=alert.message,
                    subject=alert.subject,
                    value=alert.value,
                    since_cycle=known.since_cycle,
                )
            else:
                self.raised_total[alert.rule] = \
                    self.raised_total.get(alert.rule, 0) + 1
                structlog.emit(
                    "obs.alert_raised",
                    level=logging.WARNING,
                    rule=alert.rule,
                    severity=alert.severity,
                    subject=alert.subject,
                    value=alert.value,
                    message=alert.message,
                )
            next_active[alert.key] = alert
        for key, alert in self.active.items():
            if key not in next_active:
                self.cleared_total[alert.rule] = \
                    self.cleared_total.get(alert.rule, 0) + 1
                structlog.emit(
                    "obs.alert_cleared",
                    rule=alert.rule,
                    severity=alert.severity,
                    subject=alert.subject,
                )
        self.active = next_active
        return self.alerts()

    def alerts(self) -> List[Alert]:
        """Active alerts, most severe first, stable within severity."""
        rank = {CRITICAL: 0, WARNING: 1}
        return sorted(
            self.active.values(),
            key=lambda a: (rank.get(a.severity, 2), a.rule, a.subject),
        )

    def snapshot(self) -> Dict[str, Any]:
        """The ``alerts`` block for ``introspect()``."""
        return {
            "active": [alert.as_dict() for alert in self.alerts()],
            "raised_total": dict(sorted(self.raised_total.items())),
            "cleared_total": dict(sorted(self.cleared_total.items())),
            "evaluations": self.evaluations,
            "rules": list(RULES),
        }

    def to_prometheus_lines(self) -> List[str]:
        """The ``repro_alerts`` series for the federated page."""
        from .collector import escape_label_value

        lines = ["# TYPE repro_alerts gauge"]
        for alert in self.alerts():
            subject = escape_label_value(alert.subject)
            severity = escape_label_value(alert.severity)
            lines.append(
                f'repro_alerts{{rule="{alert.rule}",'
                f'severity="{severity}",subject="{subject}"}} 1'
            )
        lines.append("# TYPE repro_alerts_active gauge")
        lines.append(f"repro_alerts_active {len(self.active)}")
        lines.append("# TYPE repro_alerts_raised_total counter")
        for rule in RULES:
            lines.append(
                f'repro_alerts_raised_total{{rule="{rule}"}} '
                f"{self.raised_total.get(rule, 0)}"
            )
        return lines
