"""Continuous profiling: a thread-based wall-clock sampling profiler.

A daemon thread wakes ``hz`` times per second, snapshots every live
thread's stack via ``sys._current_frames()``, and appends folded stacks
to a bounded ring.  Nothing is instrumented and no trace hooks are
installed, so the profiled code pays only the GIL hand-off while the
sampler formats frames — at the default 100 Hz this is well under a
percent on the service workloads (``BENCH_observability.json`` carries
the measured figure).

Exports:

* :meth:`Profiler.collapsed` — folded ``a;b;c count`` lines, the
  flamegraph.pl / speedscope-import format;
* :meth:`Profiler.speedscope` — a ``sampled``-type speedscope JSON
  document (https://www.speedscope.app/file-format-schema.json);
* :meth:`Profiler.capture` / the cluster ``profile`` op — a bounded
  N-second capture from a live worker;
* :meth:`Profiler.snapshot_recent` — the trailing window a service
  attaches to auditor-flagged slow solves.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Profiler"]

# hard ceilings so a hostile `profile` op payload cannot wedge a worker
MAX_CAPTURE_SECONDS = 30.0
MAX_HZ = 1000


def _format_frame(frame: Any) -> str:
    code = frame.f_code
    return (
        f"{code.co_name} "
        f"({os.path.basename(code.co_filename)}:{frame.f_lineno})"
    )


def _fold_stack(frame: Any, limit: int) -> Tuple[str, ...]:
    stack: List[str] = []
    current = frame
    while current is not None and len(stack) < limit:
        stack.append(_format_frame(current))
        current = current.f_back
    stack.reverse()  # root first, flamegraph convention
    return tuple(stack)


class Profiler:
    """Low-overhead wall-clock sampling profiler.

    ``start()`` spawns a daemon sampler thread; ``stop()`` joins it.
    Samples live in a bounded ring (``max_samples``), with an
    ``overflowed`` counter when old samples fall off — continuous
    profiling keeps the *recent* window, by design.
    """

    def __init__(
        self,
        *,
        hz: int = 100,
        max_samples: int = 20000,
        max_depth: int = 64,
        clock=time.monotonic,
    ):
        if not 1 <= hz <= MAX_HZ:
            raise ValueError(
                f"hz must be in [1, {MAX_HZ}], got {hz}"
            )
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self.hz = hz
        self.max_samples = max_samples
        self.max_depth = max_depth
        self.clock = clock
        self.sample_count = 0
        self.overflowed = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._samples: Deque[Tuple[float, Tuple[str, ...]]] = deque()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, hz: Optional[int] = None) -> "Profiler":
        if self.running:
            return self
        if hz is not None:
            if not 1 <= hz <= MAX_HZ:
                raise ValueError(
                    f"hz must be in [1, {MAX_HZ}], got {hz}"
                )
            self.hz = hz
        self._stop.clear()
        self.started_at = self.clock()
        self.stopped_at = None
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        self.stopped_at = self.clock()

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run(self) -> None:
        period = 1.0 / self.hz
        own_id = threading.get_ident()
        while not self._stop.wait(period):
            now = self.clock()
            frames = sys._current_frames()
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    self._samples.append(
                        (now, _fold_stack(frame, self.max_depth))
                    )
                    self.sample_count += 1
                    if len(self._samples) > self.max_samples:
                        self._samples.popleft()
                        self.overflowed += 1

    # -- exports -----------------------------------------------------------

    def _window(
        self, window_s: Optional[float]
    ) -> List[Tuple[float, Tuple[str, ...]]]:
        with self._lock:
            samples = list(self._samples)
        if window_s is None or not samples:
            return samples
        cutoff = samples[-1][0] - window_s
        return [item for item in samples if item[0] >= cutoff]

    def collapsed(self, *, window_s: Optional[float] = None) -> str:
        """Folded-stack text: one ``frame;frame;frame count`` line per
        distinct stack, sorted by descending count."""
        tally: Counter = Counter(
            ";".join(stack)
            for _, stack in self._window(window_s)
            if stack
        )
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                tally.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(
        self, *, name: str = "repro", window_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """A ``sampled``-type speedscope document for the window."""
        samples = self._window(window_s)
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []
        profile_samples: List[List[int]] = []
        weights: List[float] = []
        period = 1.0 / self.hz
        for _, stack in samples:
            indexed: List[int] = []
            for entry in stack:
                idx = frame_index.get(entry)
                if idx is None:
                    idx = frame_index[entry] = len(frames)
                    frames.append({"name": entry})
                indexed.append(idx)
            profile_samples.append(indexed)
            weights.append(period)
        start = samples[0][0] if samples else 0.0
        end = samples[-1][0] if samples else 0.0
        return {
            "$schema": (
                "https://www.speedscope.app/file-format-schema.json"
            ),
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": start,
                    "endValue": end,
                    "samples": profile_samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro.observability.profiling",
        }

    def snapshot_recent(
        self, window_s: float = 1.0
    ) -> Dict[str, Any]:
        """The trailing window as an attachable record (slow-solve
        capture): sample count plus collapsed stacks."""
        samples = self._window(window_s)
        return {
            "window_s": window_s,
            "samples": len(samples),
            "hz": self.hz,
            "collapsed": self.collapsed(window_s=window_s),
        }

    def capture(self, seconds: float, *, hz: Optional[int] = None) -> Dict[str, Any]:
        """Blocking bounded capture (the sync path under the cluster
        ``profile`` op's async wrapper)."""
        seconds = min(float(seconds), MAX_CAPTURE_SECONDS)
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        self.start(hz)
        try:
            time.sleep(seconds)
        finally:
            self.stop()
        return {
            "seconds": seconds,
            "hz": self.hz,
            "samples": self.sample_count,
            "overflowed": self.overflowed,
            "collapsed": self.collapsed(),
            "speedscope": self.speedscope(),
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": self.sample_count,
            "buffered": len(self._samples),
            "overflowed": self.overflowed,
            "started_at": self.started_at,
            "stopped_at": self.stopped_at,
        }
