"""Versioned bench-trajectory emission (the ``BENCH_*.json`` artifacts).

Every bench run writes one JSON document recording, per solver, the wall
time, the work counters the observability layer collected, and the
solution size against a description of the instance solved — the three
axes a perf trajectory needs (Abboud et al.'s lower bounds make the
quality axis non-optional: a "speedup" that inflates solution sizes is a
regression).  Future PRs diff these artifacts to show their effect.

The document is versioned through ``schema`` / ``schema_version`` so a
reader can reject artifacts it does not understand, and
:func:`validate_bench` is the single arbiter of well-formedness — the CI
smoke job runs it (``python -m repro.observability.bench --validate``)
and fails the build when emission breaks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time as _time
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchTrajectory",
    "validate_bench",
    "BenchSchemaError",
]

BENCH_SCHEMA = "repro.bench"
BENCH_SCHEMA_VERSION = 1

_REQUIRED_SOLVER_FIELDS = ("solver", "wall_time_s", "solution_size",
                           "instance", "counters")


class BenchSchemaError(ValueError):
    """A BENCH document failed validation."""


class BenchTrajectory:
    """Accumulates bench entries and writes the versioned artifact.

    Parameters
    ----------
    suite:
        Artifact name stem; ``"throughput"`` yields
        ``BENCH_throughput.json``.
    now:
        Injectable wall-clock (epoch seconds) for the ``created_unix``
        stamp; defaults to :func:`time.time`.
    """

    def __init__(self, suite: str,
                 now: Optional[float] = None):
        self.suite = suite
        self.created_unix = float(_time.time() if now is None else now)
        self.solvers: List[dict] = []
        self.figures: Dict[str, List[dict]] = {}

    def record_solver(
        self,
        solver: str,
        *,
        wall_time_s: float,
        solution_size: int,
        instance: Dict[str, Union[int, float, str, None]],
        counters: Optional[Dict[str, int]] = None,
        **extra: Union[int, float, str, None],
    ) -> dict:
        """Record one solver run; returns the entry appended."""
        entry = {
            "solver": solver,
            "wall_time_s": float(wall_time_s),
            "solution_size": int(solution_size),
            "instance": dict(instance),
            "counters": dict(counters or {}),
        }
        entry.update(extra)
        self.solvers.append(entry)
        return entry

    def record_figure(self, title: str, rows: Sequence[dict]) -> None:
        """Attach a figure bench's raw rows (fig13-15 timing tables)."""
        self.figures[title] = [dict(row) for row in rows]

    def to_dict(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "schema_version": BENCH_SCHEMA_VERSION,
            "suite": self.suite,
            "created_unix": self.created_unix,
            "solvers": list(self.solvers),
            "figures": dict(self.figures),
        }

    def write(self, path: Union[str, "os.PathLike"]) -> dict:
        """Validate and write the artifact; returns the document."""
        document = self.to_dict()
        validate_bench(document)
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return document


def validate_bench(source: Union[dict, str, "os.PathLike"]) -> dict:
    """Check a BENCH document (or a path to one); returns it parsed.

    Raises :class:`BenchSchemaError` describing the first problem found.
    """
    if isinstance(source, dict):
        document = source
    else:
        try:
            with open(os.fspath(source), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            raise BenchSchemaError(f"no BENCH artifact at {source!r}")
        except json.JSONDecodeError as error:
            raise BenchSchemaError(
                f"BENCH artifact {source!r} is not JSON: {error}"
            )
    if not isinstance(document, dict):
        raise BenchSchemaError("BENCH document must be a JSON object")
    if document.get("schema") != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"unknown schema {document.get('schema')!r}; "
            f"expected {BENCH_SCHEMA!r}"
        )
    if document.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise BenchSchemaError(
            f"unsupported schema_version "
            f"{document.get('schema_version')!r}; "
            f"this reader understands {BENCH_SCHEMA_VERSION}"
        )
    solvers = document.get("solvers")
    if not isinstance(solvers, list) or not solvers:
        raise BenchSchemaError(
            "BENCH document records no solver entries — emission is broken"
        )
    for position, entry in enumerate(solvers):
        if not isinstance(entry, dict):
            raise BenchSchemaError(f"solvers[{position}] is not an object")
        for field in _REQUIRED_SOLVER_FIELDS:
            if field not in entry:
                raise BenchSchemaError(
                    f"solvers[{position}] missing {field!r}"
                )
        if entry["wall_time_s"] < 0:
            raise BenchSchemaError(
                f"solvers[{position}] has negative wall_time_s"
            )
        if entry["solution_size"] < 0:
            raise BenchSchemaError(
                f"solvers[{position}] has negative solution_size"
            )
        if not isinstance(entry["counters"], dict):
            raise BenchSchemaError(
                f"solvers[{position}].counters is not an object"
            )
        if not isinstance(entry["instance"], dict):
            raise BenchSchemaError(
                f"solvers[{position}].instance is not an object"
            )
    if not isinstance(document.get("figures", {}), dict):
        raise BenchSchemaError("figures must be an object")
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.bench",
        description="Validate a BENCH_*.json bench-trajectory artifact.",
    )
    parser.add_argument("--validate", metavar="PATH", required=True,
                        help="path to the artifact to check")
    args = parser.parse_args(argv)
    try:
        document = validate_bench(args.validate)
    except BenchSchemaError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(
        f"OK: {args.validate} — schema {document['schema']}/"
        f"{document['schema_version']}, {len(document['solvers'])} solver "
        f"entries, {len(document.get('figures', {}))} figure tables"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    sys.exit(main())
