"""Observability: metrics, tracing, exporters, bench trajectories.

The measurement substrate for the perf roadmap.  Four pieces:

* :mod:`~repro.observability.metrics` — counters, gauges and histograms
  in a :class:`MetricsRegistry` with an injectable clock;
* :mod:`~repro.observability.tracing` — span-based :class:`Tracer`;
* :mod:`~repro.observability.facade` — the zero-overhead-when-disabled
  switch the instrumented hot paths call through (off by default;
  ``enable()`` / ``session()`` to turn on);
* :mod:`~repro.observability.exporters` / ``bench`` — JSON and
  Prometheus text output, and the versioned ``BENCH_*.json`` artifacts
  the benchmark suite emits.

Typical use::

    from repro import observability
    from repro.core.scan import scan

    with observability.session() as obs:
        solution = scan(instance)
    print(obs.registry.counters())   # {'scan.picks': ..., ...}

See ``docs/observability.md`` for the metric catalogue and artifact
schema.
"""

from .anomaly import Alert, AnomalyEngine, RULES
from .bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    BenchTrajectory,
    validate_bench,
)
from . import structlog
from .collector import (
    Collector,
    FleetStore,
    ScrapeLedger,
    escape_label_value,
    merge_histograms,
    quantile_from_buckets,
)
from .exporters import (
    PromFormatError,
    parse_prometheus,
    to_json,
    to_prometheus,
    trace_to_json,
    write_json,
)
from .facade import (
    Observability,
    activate,
    active,
    clock,
    count,
    current_context,
    disable,
    enable,
    enabled,
    observe,
    session,
    set_gauge,
    span,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiling import Profiler
from .requesttrace import traced_run
from .slo import SLOMonitor
from .traces import (
    SamplingPolicy,
    TraceBuffer,
    TracePipeline,
    TraceSink,
    head_sample,
)
from .tracing import Span, TraceContext, Tracer, mint_trace_id

__all__ = [
    "Alert",
    "AnomalyEngine",
    "RULES",
    "Collector",
    "FleetStore",
    "ScrapeLedger",
    "escape_label_value",
    "merge_histograms",
    "quantile_from_buckets",
    "Profiler",
    "SamplingPolicy",
    "TraceBuffer",
    "TracePipeline",
    "TraceSink",
    "head_sample",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "BenchTrajectory",
    "validate_bench",
    "PromFormatError",
    "parse_prometheus",
    "to_json",
    "to_prometheus",
    "trace_to_json",
    "write_json",
    "Observability",
    "activate",
    "active",
    "clock",
    "count",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "observe",
    "session",
    "set_gauge",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOMonitor",
    "Span",
    "TraceContext",
    "Tracer",
    "mint_trace_id",
    "structlog",
    "traced_run",
]
