"""Span-based tracing with an injectable clock.

A :class:`Span` is one timed region (a digest, a solver call, a stream
run); spans nest, and the :class:`Tracer` keeps the finished ones in
completion order for the exporters.  The clock is injectable so tests can
assert exact durations.

Thread-safety: the serving layer opens spans from concurrent executor
threads, so the open-span stack is **thread-local** — nesting is tracked
per thread (a span's parent is the innermost open span *on the same
thread*, which is the only parentage that is ever well-defined), while
span-id allocation and the shared ``finished`` list are guarded by a
lock.  A tracer therefore never interleaves two threads' nesting chains,
and ``as_dicts`` sees each finished span exactly once.
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = ["Span", "Tracer"]

Attr = Union[str, int, float, bool, None]


@dataclass
class Span:
    """One timed region.  ``ended`` is None while the span is open."""

    name: str
    started: float
    span_id: int
    parent_id: Optional[int] = None
    ended: Optional[float] = None
    attributes: Dict[str, Attr] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.started

    def set_attribute(self, key: str, value: Attr) -> None:
        self.attributes[key] = value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Collects spans; nesting is tracked through a per-thread stack of
    open spans."""

    def __init__(self, clock: Callable[[], float] = _time.perf_counter):
        self.clock = clock
        self.finished: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1

    def _stack_for_thread(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def depth(self) -> int:
        """Nesting depth of the *calling thread's* open spans."""
        return len(self._stack_for_thread())

    @contextmanager
    def span(self, name: str, **attributes: Attr) -> Iterator[Span]:
        """Open a span; it closes (and is recorded) on context exit.

        The span is recorded even when the body raises — a crashed solver
        still shows up in the trace, flagged with an ``error`` attribute.
        """
        stack = self._stack_for_thread()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name=name,
            started=self.clock(),
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            attributes=dict(attributes),
        )
        stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.attributes.setdefault("error", repr(error))
            raise
        finally:
            span.ended = self.clock()
            stack.pop()
            with self._lock:
                self.finished.append(span)

    def as_dicts(self) -> List[dict]:
        with self._lock:
            finished = list(self.finished)
        return [span.as_dict() for span in finished]
