"""Span-based tracing with an injectable clock.

A :class:`Span` is one timed region (a digest, a solver call, a stream
run); spans nest, and the :class:`Tracer` keeps the finished ones in
completion order for the exporters.  Like the metrics registry this is
single-threaded by design — one tracer per pipeline — and the clock is
injectable so tests can assert exact durations.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = ["Span", "Tracer"]

Attr = Union[str, int, float, bool, None]


@dataclass
class Span:
    """One timed region.  ``ended`` is None while the span is open."""

    name: str
    started: float
    span_id: int
    parent_id: Optional[int] = None
    ended: Optional[float] = None
    attributes: Dict[str, Attr] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.started

    def set_attribute(self, key: str, value: Attr) -> None:
        self.attributes[key] = value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Collects spans; nesting is tracked through a stack of open spans."""

    def __init__(self, clock: Callable[[], float] = _time.perf_counter):
        self.clock = clock
        self.finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attributes: Attr) -> Iterator[Span]:
        """Open a span; it closes (and is recorded) on context exit.

        The span is recorded even when the body raises — a crashed solver
        still shows up in the trace, flagged with an ``error`` attribute.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            started=self.clock(),
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.attributes.setdefault("error", repr(error))
            raise
        finally:
            span.ended = self.clock()
            self._stack.pop()
            self.finished.append(span)

    def as_dicts(self) -> List[dict]:
        return [span.as_dict() for span in self.finished]
