"""Span-based tracing with an injectable clock and trace contexts.

A :class:`Span` is one timed region (a digest, a solver call, a stream
run); spans nest, and the :class:`Tracer` keeps the finished ones for
the exporters.  The clock is injectable so tests can assert exact
durations.

Request-scoped tracing (PR 5) adds three ideas on top of plain nesting:

* a :class:`TraceContext` — ``(trace_id, span_id, tenant)`` — names one
  request's trace and the span new work should hang under.  Contexts are
  explicit values, so they can cross executor boundaries (thread pools,
  process pools, micro-batch closures) that implicit stacks cannot;
* :meth:`Tracer.activate` installs a context as the *remote parent* for
  spans opened where no local span is open — this is how a solver job
  running on a pool thread parents its spans into the request that
  submitted it;
* :meth:`Tracer.adopt` grafts spans recorded *elsewhere* (a process-pool
  shard worker's local tracer) into this tracer, re-identifying them so
  a request's span tree includes the work its shards did in other
  processes, and :meth:`Tracer.assemble` renders any trace as that tree.

Concurrency: nesting state lives in per-tracer :mod:`contextvars`
variables rather than thread-locals.  Threads behave as before (each
pool thread sees its own empty stack), and **asyncio tasks do too** —
each task gets a copy of its creator's context, so a request span held
open across an ``await`` can never become the accidental parent of a
concurrent request's spans.  The stacks themselves are immutable tuples
(set, not mutated), which is what makes the per-task copies sound.
Span-id allocation and the shared ``finished`` ring are guarded by a
lock, so ``as_dicts`` sees each finished span exactly once.

Retention is bounded: ``finished`` is a ring holding the most recent
``max_finished`` spans (default :data:`DEFAULT_MAX_FINISHED`), with a
``dropped_spans`` counter when old spans fall off — an always-on tracer
on a long-lived worker keeps a working set, not an unbounded log.
Exports that assemble *recent* traces are unaffected; pass
``max_finished=None`` for the old unbounded behaviour.
"""

from __future__ import annotations

import contextvars
import threading
import time as _time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, Iterator, List, \
    Mapping, Optional, Sequence, Union

__all__ = ["DEFAULT_MAX_FINISHED", "Span", "TraceContext", "Tracer",
           "mint_trace_id"]

# Generous enough that every in-repo export/assembly pattern (the
# threadsafety suite finishes 3200 spans; a request tree is dozens)
# fits with headroom, small enough that a week-long worker stays flat.
DEFAULT_MAX_FINISHED = 16384

Attr = Union[str, int, float, bool, None]


def mint_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4, no dashes)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """Names one trace and the span new work should parent under.

    ``span_id`` is the *remote parent*: spans opened while this context
    is active (and no local span is open) point at it.  ``tenant`` rides
    along for per-session accounting and structured-log correlation.
    ``trace_id`` may be ``None`` for parent-only contexts — engine work
    traced outside any request still parents correctly, it just belongs
    to no named trace.
    """

    trace_id: Optional[str]
    span_id: Optional[int] = None
    tenant: str = ""

    @staticmethod
    def mint(tenant: str = "") -> "TraceContext":
        """A fresh root context (no parent span yet)."""
        return TraceContext(trace_id=mint_trace_id(), tenant=tenant)

    def at(self, span_id: Optional[int]) -> "TraceContext":
        """The same trace, re-rooted at ``span_id``."""
        return replace(self, span_id=span_id)

    # -- wire format (crosses process boundaries) --------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=payload.get("trace_id"),
            span_id=payload.get("span_id"),
            tenant=str(payload.get("tenant", "")),
        )


@dataclass
class Span:
    """One timed region.  ``ended`` is None while the span is open."""

    name: str
    started: float
    span_id: int
    parent_id: Optional[int] = None
    ended: Optional[float] = None
    trace_id: Optional[str] = None
    attributes: Dict[str, Attr] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.started

    def set_attribute(self, key: str, value: Attr) -> None:
        self.attributes[key] = value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        """Inverse of :meth:`as_dict`.

        Round-trips still-open spans too: ``ended``/``duration`` stay
        ``None`` (duration is derived, so it is accepted and ignored).
        """
        ended = payload.get("ended")
        return cls(
            name=str(payload["name"]),
            started=float(payload["started"]),
            span_id=int(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            ended=None if ended is None else float(ended),
            trace_id=payload.get("trace_id"),
            attributes=dict(payload.get("attributes", {})),
        )


class Tracer:
    """Collects spans; nesting is tracked through per-task/thread stacks."""

    def __init__(
        self,
        clock: Callable[[], float] = _time.perf_counter,
        *,
        max_finished: Optional[int] = DEFAULT_MAX_FINISHED,
    ):
        if max_finished is not None and max_finished < 1:
            raise ValueError(
                f"max_finished must be >= 1 or None, got {max_finished}"
            )
        self.clock = clock
        self.max_finished = max_finished
        self.finished: Deque[Span] = deque()
        self.dropped_spans = 0
        self._lock = threading.Lock()
        self._next_id = 1
        self._open: Dict[int, Span] = {}
        # Immutable tuples: every asyncio task / thread sees its own
        # snapshot, so nesting never crosses concurrency domains.
        self._stack_var: "contextvars.ContextVar[tuple]" = \
            contextvars.ContextVar(f"repro_spans_{id(self)}", default=())
        self._context_var: "contextvars.ContextVar[tuple]" = \
            contextvars.ContextVar(f"repro_traces_{id(self)}", default=())

    @property
    def depth(self) -> int:
        """Nesting depth of the *calling task/thread's* open spans."""
        return len(self._stack_var.get())

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _trim_finished_locked(self) -> None:
        # caller holds the lock; the ring keeps the newest spans
        if self.max_finished is None:
            return
        overflow = len(self.finished) - self.max_finished
        if overflow > 0:
            for _ in range(overflow):
                self.finished.popleft()
            self.dropped_spans += overflow

    # -- context activation ------------------------------------------------

    @contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Install ``context`` as the remote parent for this task/thread.

        Spans opened with no local parent inherit the context's trace id
        and point at its ``span_id``.  ``None`` is accepted and inert, so
        call-sites need no conditional.
        """
        if context is None:
            yield
            return
        token = self._context_var.set(
            self._context_var.get() + (context,)
        )
        try:
            yield
        finally:
            self._context_var.reset(token)

    def current_context(self, tenant: str = "") -> Optional[TraceContext]:
        """The innermost trace position of the calling task/thread.

        The innermost *open span* wins (new work belongs under it); with
        no open span, the innermost :meth:`activate` context; else None.
        """
        contexts = self._context_var.get()
        if not tenant and contexts:
            # an open span narrows the position but the activated
            # request context still knows whose request this is
            tenant = contexts[-1].tenant
        stack = self._stack_var.get()
        if stack:
            top = stack[-1]
            return TraceContext(
                trace_id=top.trace_id, span_id=top.span_id,
                tenant=tenant,
            )
        if contexts:
            context = contexts[-1]
            return replace(context, tenant=tenant) if tenant else context
        return None

    # -- spans -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: Attr) -> Iterator[Span]:
        """Open a span; it closes (and is recorded) on context exit.

        The span is recorded even when the body raises — a crashed solver
        still shows up in the trace, flagged with an ``error`` attribute.
        """
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            trace_id = parent.trace_id
        else:
            contexts = self._context_var.get()
            context = contexts[-1] if contexts else None
            parent_id = context.span_id if context else None
            trace_id = context.trace_id if context else None
        span = Span(
            name=name,
            started=self.clock(),
            span_id=self._allocate_id(),
            parent_id=parent_id,
            trace_id=trace_id,
            attributes=dict(attributes),
        )
        token = self._stack_var.set(stack + (span,))
        with self._lock:
            self._open[span.span_id] = span
        try:
            yield span
        except BaseException as error:
            span.attributes.setdefault("error", repr(error))
            raise
        finally:
            span.ended = self.clock()
            self._stack_var.reset(token)
            with self._lock:
                self._open.pop(span.span_id, None)
                self.finished.append(span)
                self._trim_finished_locked()

    # -- adoption (cross-process re-parenting) -----------------------------

    def adopt(
        self,
        span_dicts: Sequence[Mapping[str, Any]],
        *,
        parent_id: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> List[Span]:
        """Graft foreign spans (worker-side ``as_dicts`` output) in.

        Every adopted span gets a fresh id from this tracer's allocator
        (worker-local ids would collide with ours); parent links *within*
        the adopted set are remapped through the same renaming, and spans
        whose parents are not part of the set — the worker's roots — are
        re-parented onto ``parent_id``.  ``trace_id`` (when given)
        overrides the foreign trace id so the whole graft lands in the
        caller's trace.  Returns the adopted spans in their new identity.
        """
        spans = [Span.from_dict(d) for d in span_dicts]
        mapping: Dict[int, int] = {}
        for span in sorted(spans, key=lambda s: s.span_id):
            mapping[span.span_id] = self._allocate_id()
        adopted: List[Span] = []
        for span in sorted(spans, key=lambda s: s.span_id):
            old_parent = span.parent_id
            span.span_id = mapping[span.span_id]
            if old_parent in mapping:
                span.parent_id = mapping[old_parent]
            else:
                span.parent_id = parent_id
            if trace_id is not None:
                span.trace_id = trace_id
            adopted.append(span)
        with self._lock:
            self.finished.extend(adopted)
            self._trim_finished_locked()
        return adopted

    # -- introspection -----------------------------------------------------

    def as_dicts(self) -> List[dict]:
        """Finished spans, in deterministic (allocation-id) order.

        Completion order is racy under concurrency — two executor threads
        finishing "simultaneously" append in whichever order the lock
        admits them — so exports sort by span id, which is allocated once
        and totally ordered.
        """
        with self._lock:
            finished = list(self.finished)
        finished.sort(key=lambda span: span.span_id)
        return [span.as_dict() for span in finished]

    def open_spans(self) -> List[dict]:
        """Snapshot of currently-open spans (for debug endpoints)."""
        with self._lock:
            spans = sorted(self._open.values(), key=lambda s: s.span_id)
            return [span.as_dict() for span in spans]

    def spans_for(self, trace_id: str) -> List[dict]:
        """Every span (finished or still open) of one trace, by id."""
        with self._lock:
            spans = list(self.finished) + list(self._open.values())
        spans = [s for s in spans if s.trace_id == trace_id]
        spans.sort(key=lambda span: span.span_id)
        return [span.as_dict() for span in spans]

    def assemble(
        self, trace_id: str, *, follow_links: bool = True
    ) -> dict:
        """One trace as a span tree.

        Returns ``{"trace_id", "spans", "roots"}`` where each root is a
        span dict with a ``children`` list (recursively).  Spans whose
        ``parent_id`` does not resolve within the trace (the request
        root, or a graft point that lives in another trace) become
        roots.  When ``follow_links`` is set, a span carrying
        ``link_trace_id`` attributes — a coalesced follower or cache hit
        pointing at the trace that actually computed its digest — gets
        that trace assembled under a ``linked`` key (one level deep, so
        link cycles cannot recurse).
        """
        dicts = self.spans_for(trace_id)
        nodes = {d["span_id"]: dict(d, children=[]) for d in dicts}
        roots: List[dict] = []
        for node in nodes.values():
            parent = node["parent_id"]
            if parent in nodes and parent != node["span_id"]:
                nodes[parent]["children"].append(node)
            else:
                roots.append(node)
        if follow_links:
            for node in nodes.values():
                linked = node["attributes"].get("link_trace_id")
                if linked and linked != trace_id:
                    node["linked"] = self.assemble(
                        linked, follow_links=False
                    )
        return {
            "trace_id": trace_id,
            "spans": len(nodes),
            "roots": roots,
        }
