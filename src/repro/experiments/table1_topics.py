"""Table 1 — example topics with their highest-weight keywords.

The paper's Table 1 shows two topics from each of two broad topics
(Sports, Politics) with their top keywords.  This driver trains the
synthetic topic model, applies the ambiguity filter, and reports the same
shape of table.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..topics.lda_sim import SyntheticTopicModel
from ..topics.profiles import discard_ambiguous

DESCRIPTION = "Table 1: example topics with their highest-weight keywords"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {}


def run(
    seed: int = 0,
    broads: tuple = ("sports", "politics"),
    topics_per_broad: int = 2,
    keywords_shown: int = 10,
) -> List[Dict[str, object]]:
    """Train the model and sample example topics per broad topic."""
    rng = random.Random(seed)
    model = discard_ambiguous(rng, SyntheticTopicModel.train(rng))
    groups = model.by_broad()
    rows: List[Dict[str, object]] = []
    for broad in broads:
        candidates = groups.get(broad, [])
        for topic in candidates[:topics_per_broad]:
            rows.append(
                {
                    "broad_topic": broad,
                    "topic": topic.label,
                    "keywords": " ".join(
                        topic.top_keywords(keywords_shown)
                    ),
                }
            )
    return rows
