"""Figure 14 — streaming execution time per post versus lambda (fixed tau).

Paper setup: one day of tweets, tau = 300 s, ``|L|`` in {2, 5, 20}.
Expected shapes: StreamScan/StreamScan+ flat in lambda; the greedy pair
speeds up with larger lambda (fewer set-cover invocations per window).
"""

from __future__ import annotations

from typing import Dict, List

from .common import make_day_instance, stream_sizes

DESCRIPTION = "Fig 14: streaming execution time per post vs lambda"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'sizes': (2, 5, 20), 'scale': 0.02, 'duration': 86_400.0}


def run(
    seed: int = 0,
    sizes: tuple = (2, 5, 20),
    lam_minutes: tuple = (5.0, 10.0, 20.0, 30.0),
    tau: float = 300.0,
    scale: float = 0.02,
    duration: float = 86_400.0,
    overlap: float = 1.3,
) -> List[Dict[str, object]]:
    """One row per (|L|, lambda) with per-post microseconds per algorithm."""
    rows: List[Dict[str, object]] = []
    for num_labels in sizes:
        for lam_min in lam_minutes:
            instance = make_day_instance(
                seed=seed,
                num_labels=num_labels,
                lam=lam_min * 60.0,
                scale=scale,
                overlap=overlap,
                duration=duration,
            )
            row: Dict[str, object] = {
                "num_labels": num_labels,
                "lam_min": lam_min,
                "posts": len(instance),
            }
            for name, result in stream_sizes(instance, tau).items():
                row[f"{name}_us_per_post"] = round(
                    result.elapsed / max(1, len(instance)) * 1e6, 2
                )
            rows.append(row)
    return rows
