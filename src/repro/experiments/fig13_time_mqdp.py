"""Figure 13 — MQDP execution time per post versus lambda.

Paper setup: one day of tweets, ``|L|`` in {2, 5, 20}, per-post execution
time on a log axis.  Expected shapes (Section 7.3):

* Scan/Scan+ are orders of magnitude faster than GreedySC and flat in
  lambda (one sequential pass regardless);
* GreedySC gets *faster* as lambda grows (fewer greedy rounds) and
  *slower* as ``|L|`` grows (more pairs to maintain);
* Scan gets slightly faster as ``|L|`` grows (posts cover more pairs).
"""

from __future__ import annotations

from typing import Dict, List

from ..evaluation.metrics import per_post_time
from .common import BATCH_ALGORITHMS, make_day_instance

DESCRIPTION = "Fig 13: MQDP execution time per post vs lambda"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'sizes': (2, 5, 20), 'scale': 0.02, 'duration': 86_400.0}


def run(
    seed: int = 0,
    sizes: tuple = (2, 5, 20),
    lam_minutes: tuple = (5.0, 10.0, 20.0, 30.0),
    scale: float = 0.02,
    duration: float = 86_400.0,
    overlap: float = 1.3,
) -> List[Dict[str, object]]:
    """One row per (|L|, lambda) with per-post seconds per algorithm."""
    rows: List[Dict[str, object]] = []
    for num_labels in sizes:
        for lam_min in lam_minutes:
            instance = make_day_instance(
                seed=seed,
                num_labels=num_labels,
                lam=lam_min * 60.0,
                scale=scale,
                overlap=overlap,
                duration=duration,
            )
            row: Dict[str, object] = {
                "num_labels": num_labels,
                "lam_min": lam_min,
                "posts": len(instance),
            }
            for name, solver in BATCH_ALGORITHMS.items():
                solution = solver(instance)
                row[f"{name}_us_per_post"] = round(
                    per_post_time(solution, instance) * 1e6, 2
                )
            rows.append(row)
    return rows
