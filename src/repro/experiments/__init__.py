"""Experiment drivers: one module per table/figure of Section 7.

Every driver exposes ``run(**params) -> list[dict]`` returning the rows the
paper's artifact reports (one row per x-axis point, one column per
algorithm/series) plus a module-level ``DESCRIPTION``.  The drivers are
invoked three ways:

* programmatically (the benchmarks call them with scaled-down defaults);
* via the CLI: ``python -m repro.experiments <name> [--full]``;
* from the examples.

Scaling: pure-Python throughput is orders of magnitude below the paper's
Java/i5 setup, so defaults are scaled as documented in
:mod:`repro.experiments.common` and EXPERIMENTS.md; pass ``--full`` /
larger params to approach the paper's raw sizes.
"""

from . import (
    ablation_greedy_heap,
    ext_stream_proportional,
    ablation_proportional,
    ablation_scan_order,
    common,
    fig6_overlap,
    fig7_lambda,
    fig8_daylong,
    fig9_stream_lambda,
    fig10_stream_tau,
    fig11_stream_overlap,
    fig12_stream_daylong,
    fig13_time_mqdp,
    fig14_time_stream_lambda,
    fig15_time_stream_tau,
    table1_topics,
    table2_matching,
)

ALL_EXPERIMENTS = {
    "table1": table1_topics,
    "table2": table2_matching,
    "fig6": fig6_overlap,
    "fig7": fig7_lambda,
    "fig8": fig8_daylong,
    "fig9": fig9_stream_lambda,
    "fig10": fig10_stream_tau,
    "fig11": fig11_stream_overlap,
    "fig12": fig12_stream_daylong,
    "fig13": fig13_time_mqdp,
    "fig14": fig14_time_stream_lambda,
    "fig15": fig15_time_stream_tau,
    "ablation_scan_order": ablation_scan_order,
    "ablation_greedy_heap": ablation_greedy_heap,
    "ablation_proportional": ablation_proportional,
    "ext_stream_proportional": ext_stream_proportional,
}

__all__ = ["ALL_EXPERIMENTS", "common"]
