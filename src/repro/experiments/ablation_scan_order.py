"""Ablation — Scan+'s sensitivity to the label processing order.

Section 4.3 notes that "the effectiveness of this optimization depends on
the ordering of the labels processed by Scan".  This driver quantifies
that: solution sizes under sorted, longest-posting-list-first and
shortest-first orders, across overlap rates.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.scan import scan_plus
from ..evaluation.metrics import mean
from .common import make_effectiveness_instance

DESCRIPTION = "Ablation: Scan+ label-order sensitivity"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'trials': 10}

ORDERS = ("sorted", "longest_first", "shortest_first")


def run(
    seed: int = 0,
    num_labels: int = 5,
    lam: float = 30.0,
    overlaps: tuple = (1.2, 1.6, 2.0),
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per overlap with Scan+'s mean size under each order."""
    rows: List[Dict[str, object]] = []
    for overlap in overlaps:
        sizes: Dict[str, List[float]] = {order: [] for order in ORDERS}
        for trial in range(trials):
            instance = make_effectiveness_instance(
                seed=seed * 1000 + trial,
                num_labels=num_labels,
                lam=lam,
                overlap=overlap,
            )
            for order in ORDERS:
                sizes[order].append(
                    scan_plus(instance, label_order=order).size
                )
        row: Dict[str, object] = {"overlap": overlap}
        for order in ORDERS:
            row[f"{order}_size"] = round(mean(sizes[order]), 1)
        rows.append(row)
    return rows
