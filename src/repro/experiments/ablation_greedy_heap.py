"""Ablation — GreedySC candidate maintenance: linear rescan vs lazy heap.

Section 7.3 reports the authors abandoned a PriorityQueue because the
delete/re-insert churn on bursty data beat its asymptotic advantage, and
shipped a linear rescan instead.  This driver times both strategies on the
same instances (they produce identical covers; the tests assert that).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.greedy_sc import greedy_sc
from .common import make_day_instance

DESCRIPTION = "Ablation: GreedySC rescan vs lazy-heap candidate maintenance"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'scale': 0.02, 'duration': 86_400.0}

STRATEGIES = ("rescan", "lazy_heap")


def run(
    seed: int = 0,
    sizes: tuple = (2, 5),
    lam_minutes: tuple = (10.0, 30.0),
    scale: float = 0.02,
    duration: float = 43_200.0,
) -> List[Dict[str, object]]:
    """One row per (|L|, lambda) with both strategies' time and size."""
    rows: List[Dict[str, object]] = []
    for num_labels in sizes:
        for lam_min in lam_minutes:
            instance = make_day_instance(
                seed=seed,
                num_labels=num_labels,
                lam=lam_min * 60.0,
                scale=scale,
                duration=duration,
            )
            row: Dict[str, object] = {
                "num_labels": num_labels,
                "lam_min": lam_min,
                "posts": len(instance),
            }
            for strategy in STRATEGIES:
                solution = greedy_sc(instance, strategy=strategy)
                row[f"{strategy}_ms"] = round(solution.elapsed * 1e3, 2)
                row[f"{strategy}_size"] = solution.size
            rows.append(row)
    return rows
