"""Ablation — fixed lambda versus proportional (variable) lambda.

Section 6 motivates Equation (2): with a uniform lambda the result spreads
evenly over the dimension, while the variable lambda spends more of the
output on dense regions (popular hours / dominant sentiment) without
silencing sparse ones.  This driver builds a two-regime stream — a dense
burst followed by a sparse tail — and reports, for fixed vs proportional
coverage, the output size and the share of output posts falling in the
dense region, against each regime's share of the input.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core.instance import Instance
from ..core.proportional import ProportionalLambda, scan_variable
from ..core.scan import scan
from ..datagen.arrivals import poisson_times
from ..datagen.workload import labelled_posts

DESCRIPTION = "Ablation: fixed vs proportional lambda (Section 6)"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'trials': 10}


def _two_regime_instance(
    seed: int, num_labels: int, lam: float, duration: float,
    dense_rate_per_min: float, sparse_rate_per_min: float,
) -> Instance:
    rng = random.Random(seed)
    half = duration / 2.0
    dense = poisson_times(rng, dense_rate_per_min / 60.0, 0.0, half)
    sparse = poisson_times(rng, sparse_rate_per_min / 60.0, half, duration)
    labels = [f"q{idx}" for idx in range(num_labels)]
    posts = labelled_posts(rng, labels, dense + sparse, overlap=1.3)
    return Instance(posts, lam, labels=labels)


def run(
    seed: int = 0,
    num_labels: int = 3,
    lam: float = 60.0,
    duration: float = 1200.0,
    dense_rate_per_min: float = 30.0,
    sparse_rate_per_min: float = 4.0,
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per trial comparing fixed-lambda Scan to variable-lambda
    Scan on the same two-regime stream."""
    rows: List[Dict[str, object]] = []
    half = duration / 2.0
    for trial in range(trials):
        instance = _two_regime_instance(
            seed=seed * 1000 + trial,
            num_labels=num_labels,
            lam=lam,
            duration=duration,
            dense_rate_per_min=dense_rate_per_min,
            sparse_rate_per_min=sparse_rate_per_min,
        )
        input_dense = sum(1 for p in instance.posts if p.value < half)
        input_share = input_dense / len(instance)

        fixed = scan(instance)
        model = ProportionalLambda(instance, lam0=lam)
        variable = scan_variable(instance, model)

        def dense_share(solution) -> float:
            if solution.size == 0:
                return 0.0
            return sum(
                1 for p in solution.posts if p.value < half
            ) / solution.size

        rows.append(
            {
                "trial": trial,
                "posts": len(instance),
                "input_dense_share": round(input_share, 3),
                "fixed_size": fixed.size,
                "fixed_dense_share": round(dense_share(fixed), 3),
                "variable_size": variable.size,
                "variable_dense_share": round(dense_share(variable), 3),
            }
        )
    return rows
