"""Extension — streaming proportional diversity (Section 6 on a stream).

Compares fixed-lambda StreamScan against
:class:`~repro.core.stream_proportional.StreamScanProportional` on a
two-regime stream (dense burst then sparse tail): the proportional
variant should spend a larger share of its output on the dense region —
tracking the input distribution — at comparable or smaller total size.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..core.instance import Instance
from ..core.post import Post
from ..core.stream_proportional import StreamScanProportional
from ..core.streaming import StreamScan
from ..datagen.arrivals import poisson_times
from ..stream.runner import run_stream

DESCRIPTION = "Extension: streaming proportional lambda vs fixed lambda"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'trials': 10, 'duration': 3600.0}


def _two_regime_posts(
    seed: int, duration: float,
    dense_rate_per_min: float, sparse_rate_per_min: float,
) -> List[Post]:
    rng = random.Random(seed)
    half = duration / 2.0
    times = poisson_times(rng, dense_rate_per_min / 60.0, 0.0, half)
    times += poisson_times(rng, sparse_rate_per_min / 60.0, half, duration)
    return [
        Post(uid=i, value=t, labels=frozenset({"q0"}))
        for i, t in enumerate(times)
    ]


def run(
    seed: int = 0,
    lam0: float = 60.0,
    tau: float = 45.0,
    duration: float = 1800.0,
    dense_rate_per_min: float = 24.0,
    sparse_rate_per_min: float = 3.0,
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per trial: sizes and dense-region output shares."""
    rows: List[Dict[str, object]] = []
    half = duration / 2.0
    for trial in range(trials):
        posts = _two_regime_posts(
            seed * 1000 + trial, duration,
            dense_rate_per_min, sparse_rate_per_min,
        )
        if not posts:
            continue
        labels = {"q0"}
        instance = Instance(posts, lam=lam0)
        input_share = sum(
            1 for p in posts if p.value < half
        ) / len(posts)

        fixed = run_stream(StreamScan(labels, lam=lam0, tau=tau),
                           instance.posts)
        proportional_algorithm = StreamScanProportional(
            labels, lam0=lam0, tau=tau,
            density0=len(posts) / duration,
        )
        proportional = run_stream(proportional_algorithm, instance.posts)

        def share(result) -> float:
            if result.size == 0:
                return 0.0
            dense = sum(
                1 for e in result.emissions if e.post.value < half
            )
            return dense / result.size

        rows.append(
            {
                "trial": trial,
                "posts": len(posts),
                "input_dense_share": round(input_share, 3),
                "fixed_size": fixed.size,
                "fixed_dense_share": round(share(fixed), 3),
                "prop_size": proportional.size,
                "prop_dense_share": round(share(proportional), 3),
            }
        )
    return rows
