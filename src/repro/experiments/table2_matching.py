"""Table 2 — matching posts per minute for label sets of size 2, 5, 20.

Runs the full text path: synthesize a tweet stream, draw user profiles
from the topic model, match every tweet through the keyword matcher, and
count the unique matching posts per minute.  The paper's absolute rates
(136 / 308 / 1180) come from a 1%-of-Twitter firehose; ours come from the
scaled synthetic stream, so the row to compare is the *ratio* column —
bigger profiles must match proportionally more posts, roughly linearly in
``|L|``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..datagen.arrivals import poisson_times
from ..datagen.tweets import TweetGenerator
from ..datagen.workload import PAPER_MATCH_RATES_PER_MIN
from ..index.query import LabelMatcher
from ..topics.lda_sim import SyntheticTopicModel
from ..topics.profiles import discard_ambiguous, make_label_sets

DESCRIPTION = "Table 2: unique matching posts per minute vs |L|"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'minutes': 10.0, 'tweets_per_sec': 50.0, 'sets_per_size': 30}


def run(
    seed: int = 0,
    sizes: tuple = (2, 5, 20),
    minutes: float = 3.0,
    tweets_per_sec: float = 25.0,
    sets_per_size: int = 5,
) -> List[Dict[str, object]]:
    """Measure matching volume through the real matching pipeline."""
    rng = random.Random(seed)
    model = discard_ambiguous(rng, SyntheticTopicModel.train(rng))
    duration = minutes * 60.0
    generator = TweetGenerator(model, rng)
    times = poisson_times(rng, tweets_per_sec, 0.0, duration)
    documents = generator.generate(times)

    # Profile draws are paired across sizes: profile i of every size uses
    # an identically seeded rng, so it lands on the same broad topic.
    # Broad topics differ several-fold in tweet volume, and without the
    # pairing that variance swamps the |L| trend at small profile counts
    # (the paper averages over 100 profiles instead).
    measured: Dict[int, float] = {}
    for size in sizes:
        rates = []
        for index in range(sets_per_size):
            profile_rng = random.Random(seed * 7919 + index)
            profile = make_label_sets(profile_rng, model, size, count=1)[0]
            matcher = LabelMatcher(profile)
            matching = sum(
                1 for doc in documents if matcher.match(doc.text)
            )
            rates.append(matching / minutes)
        measured[size] = sum(rates) / len(rates)

    baseline = measured[sizes[0]] or 1.0
    paper_baseline = PAPER_MATCH_RATES_PER_MIN.get(sizes[0], 136.0)
    rows: List[Dict[str, object]] = []
    for size in sizes:
        paper = PAPER_MATCH_RATES_PER_MIN.get(size)
        rows.append(
            {
                "num_labels": size,
                "matching_per_min": round(measured[size], 1),
                "ratio_vs_first": round(measured[size] / baseline, 2),
                "paper_per_min": paper if paper is not None else "-",
                "paper_ratio": (
                    round(paper / paper_baseline, 2)
                    if paper is not None
                    else "-"
                ),
                "tweets_total": len(documents),
            }
        )
    return rows
