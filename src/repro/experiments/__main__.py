"""Command-line entry point: ``python -m repro.experiments <name>``.

``list`` enumerates the experiments; ``all`` runs everything with default
(scaled) parameters; ``--csv`` switches the output format; ``--seed``
re-seeds the generators.  Driver-specific knobs are exposed through the
programmatic API (each driver's ``run``), not the CLI — the CLI exists to
regenerate the paper's artifacts, which the defaults do.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

from ..evaluation.harness import format_table, rows_to_csv
from ..observability import facade as _obs
from . import ALL_EXPERIMENTS


def main(argv=None, *,
         clock: Optional[Callable[[], float]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "name",
        help="experiment name (see 'list'), 'all', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of an aligned table")
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale parameters (each driver's FULL_PARAMS); "
             "expect long runtimes",
    )
    args = parser.parse_args(argv)

    if args.name == "list":
        for name, module in sorted(ALL_EXPERIMENTS.items()):
            print(f"{name:24s} {module.DESCRIPTION}")
        return 0

    names = (
        sorted(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    )
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use 'list' to see what is available", file=sys.stderr)
        return 2

    # None defers to the observability clock (time.perf_counter unless a
    # deterministic one was enabled) — the supervisor's clock= pattern.
    tick = clock if clock is not None else _obs.clock()
    for name in names:
        module = ALL_EXPERIMENTS[name]
        params = dict(getattr(module, "FULL_PARAMS", {})) if args.full \
            else {}
        started = tick()
        rows = module.run(seed=args.seed, **params)
        elapsed = tick() - started
        if args.csv:
            print(rows_to_csv(rows), end="")
        else:
            print(format_table(rows, title=f"== {module.DESCRIPTION} =="))
            print(f"({len(rows)} rows in {elapsed:.1f}s)")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
