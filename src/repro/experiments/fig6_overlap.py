"""Figure 6 — solution-size error and absolute size versus overlap rate.

Paper setup: ``|L| = 3``, lambda = 5 s, 10-minute window; each point is a
label set with its own post-overlap rate; the y-axis is the relative error
against OPT (6a-6c) and the absolute solution size (6d).

Expected shape (Section 7.2): GreedySC error below Scan/Scan+ except when
the overlap rate approaches 1 (where Scan is per-label optimal, hence
globally optimal); absolute sizes fall as overlap grows because one post
covers pairs of several labels.
"""

from __future__ import annotations

from typing import Dict, List

from ..evaluation.metrics import mean, relative_error
from .common import (
    batch_sizes,
    make_effectiveness_instance,
    optimum_size,
)

DESCRIPTION = (
    "Fig 6: relative error & solution size vs overlap rate "
    "(|L|=3, 10-min window)"
)

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {
    "overlaps": (1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0),
    "trials": 10,
}


def run(
    seed: int = 0,
    num_labels: int = 3,
    lam: float = 30.0,
    overlaps: tuple = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per target overlap, averaged over ``trials`` label sets."""
    rows: List[Dict[str, object]] = []
    for overlap in overlaps:
        errors: Dict[str, List[float]] = {}
        sizes: Dict[str, List[float]] = {}
        measured: List[float] = []
        opt_sizes: List[float] = []
        for trial in range(trials):
            instance = make_effectiveness_instance(
                seed=seed * 1000 + trial,
                num_labels=num_labels,
                lam=lam,
                overlap=overlap,
            )
            opt = optimum_size(instance)
            measured.append(instance.overlap_rate())
            opt_sizes.append(opt)
            for name, solution in batch_sizes(instance).items():
                errors.setdefault(name, []).append(
                    relative_error(solution.size, opt)
                )
                sizes.setdefault(name, []).append(solution.size)
        row: Dict[str, object] = {
            "overlap_target": overlap,
            "overlap_measured": round(mean(measured), 3),
            "opt_size": round(mean(opt_sizes), 1),
        }
        for name in sorted(errors):
            row[f"{name}_err"] = round(mean(errors[name]), 4)
        for name in sorted(sizes):
            row[f"{name}_size"] = round(mean(sizes[name]), 1)
        rows.append(row)
    return rows
