"""Figure 10 — streaming relative error versus tau, per fixed lambda.

Paper setup: ``|L| = 2``, 10-minute window, lambda in {10, 15, 20} s,
tau swept.  Expected shapes (Section 7.2's discussion):

* Scan-based algorithms are flat once ``tau > lambda`` — they then emit
  exactly what batch Scan would;
* the greedy algorithms hit their *minimum* error at ``tau = lambda`` and
  show a local *peak* when tau is slightly above ``2 lambda``, the
  "in-between posts" effect.
"""

from __future__ import annotations

from typing import Dict, List

from ..evaluation.metrics import mean, relative_error
from .common import (
    STREAM_ALGORITHMS,
    make_effectiveness_instance,
    optimum_size,
    stream_sizes,
)

DESCRIPTION = "Fig 10: streaming relative error vs tau (|L|=2)"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'tau_factors': (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.2, 2.5, 2.75, 3.0), 'trials': 10}


def run(
    seed: int = 0,
    num_labels: int = 2,
    lams: tuple = (40.0, 60.0),
    tau_factors: tuple = (0.25, 0.5, 1.0, 1.5, 2.0, 2.2, 2.5, 3.0),
    overlap: float = 1.4,
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per (lambda, tau); tau is swept as a multiple of lambda so
    the ``tau = lambda`` minimum and ``tau ~ 2 lambda`` peak are visible."""
    rows: List[Dict[str, object]] = []
    for lam in lams:
        for factor in tau_factors:
            tau = factor * lam
            errors: Dict[str, List[float]] = {}
            opt_sizes: List[float] = []
            for trial in range(trials):
                instance = make_effectiveness_instance(
                    seed=seed * 1000 + trial,
                    num_labels=num_labels,
                    lam=lam,
                    overlap=overlap,
                )
                opt = optimum_size(instance)
                opt_sizes.append(opt)
                for name, result in stream_sizes(instance, tau).items():
                    errors.setdefault(name, []).append(
                        relative_error(result.size, opt)
                    )
            row: Dict[str, object] = {
                "lam": lam,
                "tau": round(tau, 1),
                "tau_over_lam": factor,
                "opt_size": round(mean(opt_sizes), 1),
            }
            for name in STREAM_ALGORITHMS:
                row[f"{name}_err"] = round(mean(errors[name]), 4)
            rows.append(row)
    return rows
