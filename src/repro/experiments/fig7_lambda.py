"""Figure 7 — relative solution-size error versus lambda (``|L| = 2``).

Paper setup: 10-minute window, lambda swept over seconds-scale values.
Expected shape: every approximation algorithm's error grows with lambda,
because larger windows admit more cover combinations and the problem gets
harder for greedy/scan heuristics relative to the optimum.
"""

from __future__ import annotations

from typing import Dict, List

from ..evaluation.metrics import mean, relative_error
from .common import (
    batch_sizes,
    make_effectiveness_instance,
    optimum_size,
)

DESCRIPTION = "Fig 7: relative error vs lambda (|L|=2, 10-min window)"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'lams': (10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0, 120.0), 'trials': 10}


def run(
    seed: int = 0,
    num_labels: int = 2,
    lams: tuple = (10.0, 20.0, 30.0, 45.0, 60.0, 90.0),
    overlap: float = 1.4,
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per lambda, averaged over ``trials`` label sets."""
    rows: List[Dict[str, object]] = []
    for lam in lams:
        errors: Dict[str, List[float]] = {}
        opt_sizes: List[float] = []
        for trial in range(trials):
            instance = make_effectiveness_instance(
                seed=seed * 1000 + trial,
                num_labels=num_labels,
                lam=lam,
                overlap=overlap,
            )
            opt = optimum_size(instance)
            opt_sizes.append(opt)
            for name, solution in batch_sizes(instance).items():
                errors.setdefault(name, []).append(
                    relative_error(solution.size, opt)
                )
        row: Dict[str, object] = {
            "lam": lam,
            "opt_size": round(mean(opt_sizes), 1),
        }
        for name in sorted(errors):
            row[f"{name}_err"] = round(mean(errors[name]), 4)
        rows.append(row)
    return rows
