"""Figure 12 — streaming solution sizes on one day of posts vs ``|L|``.

Paper setup: full-day stream, tau = 30 s, lambda of 10 and 30 minutes.
Expected shape: same family ordering as Figure 8, with StreamGreedySC
overtaking StreamGreedySC+ at large lambda (Section 7.2's observation).
"""

from __future__ import annotations

from typing import Dict, List

from .common import make_day_instance, stream_sizes

DESCRIPTION = "Fig 12: streaming solution sizes on 1 day of posts vs |L|"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'sizes': (2, 5, 10, 15, 20), 'scale': 0.02, 'duration': 86_400.0}


def run(
    seed: int = 0,
    sizes: tuple = (2, 5, 10, 15, 20),
    lam_minutes: tuple = (10.0, 30.0),
    tau: float = 30.0,
    scale: float = 0.02,
    duration: float = 86_400.0,
    overlap: float = 1.3,
) -> List[Dict[str, object]]:
    """One row per (lambda, |L|) with each streaming algorithm's size."""
    rows: List[Dict[str, object]] = []
    for lam_min in lam_minutes:
        for num_labels in sizes:
            instance = make_day_instance(
                seed=seed,
                num_labels=num_labels,
                lam=lam_min * 60.0,
                scale=scale,
                overlap=overlap,
                duration=duration,
            )
            row: Dict[str, object] = {
                "lam_min": lam_min,
                "num_labels": num_labels,
                "posts": len(instance),
            }
            for name, result in stream_sizes(instance, tau).items():
                row[f"{name}_size"] = result.size
            rows.append(row)
    return rows
