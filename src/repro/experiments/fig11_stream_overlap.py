"""Figure 11 — streaming absolute solution size versus overlap rate.

Paper setup: ``|L| = 2``, 10-minute window, lambda = 10 s, tau = 5 s.
Expected shape: the greedy algorithms win at high overlap (cross-label
coverage to exploit), the Scan algorithms win near overlap = 1 (Scan is
per-label optimal) — the streaming mirror of Figure 6.
"""

from __future__ import annotations

from typing import Dict, List

from ..evaluation.metrics import mean
from .common import (
    STREAM_ALGORITHMS,
    make_effectiveness_instance,
    stream_sizes,
)

DESCRIPTION = "Fig 11: streaming absolute solution size vs overlap (|L|=2)"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'overlaps': (1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0), 'trials': 10}


def run(
    seed: int = 0,
    num_labels: int = 2,
    lam: float = 60.0,
    tau: float = 30.0,
    overlaps: tuple = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per overlap target with each algorithm's mean output size."""
    rows: List[Dict[str, object]] = []
    for overlap in overlaps:
        sizes: Dict[str, List[float]] = {}
        measured: List[float] = []
        for trial in range(trials):
            instance = make_effectiveness_instance(
                seed=seed * 1000 + trial,
                num_labels=num_labels,
                lam=lam,
                overlap=overlap,
            )
            measured.append(instance.overlap_rate())
            for name, result in stream_sizes(instance, tau).items():
                sizes.setdefault(name, []).append(result.size)
        row: Dict[str, object] = {
            "overlap_target": overlap,
            "overlap_measured": round(mean(measured), 3),
        }
        for name in STREAM_ALGORITHMS:
            row[f"{name}_size"] = round(mean(sizes[name]), 1)
        rows.append(row)
    return rows
