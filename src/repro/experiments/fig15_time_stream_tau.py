"""Figure 15 — streaming execution time per post versus tau (fixed lambda).

Paper setup: one day of tweets, lambda = 300 s, ``|L|`` in {2, 5, 20}.
Expected shapes: Scan-based timing flat in tau; the greedy pair slows down
slightly as tau grows (larger windows per set-cover invocation).
"""

from __future__ import annotations

from typing import Dict, List

from .common import make_day_instance, stream_sizes

DESCRIPTION = "Fig 15: streaming execution time per post vs tau"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'sizes': (2, 5, 20), 'scale': 0.02, 'duration': 86_400.0}


def run(
    seed: int = 0,
    sizes: tuple = (2, 5, 20),
    lam: float = 300.0,
    taus: tuple = (60.0, 150.0, 300.0, 600.0),
    scale: float = 0.02,
    duration: float = 86_400.0,
    overlap: float = 1.3,
) -> List[Dict[str, object]]:
    """One row per (|L|, tau) with per-post microseconds per algorithm."""
    rows: List[Dict[str, object]] = []
    for num_labels in sizes:
        instance = make_day_instance(
            seed=seed,
            num_labels=num_labels,
            lam=lam,
            scale=scale,
            overlap=overlap,
            duration=duration,
        )
        for tau in taus:
            row: Dict[str, object] = {
                "num_labels": num_labels,
                "tau": tau,
                "posts": len(instance),
            }
            for name, result in stream_sizes(instance, tau).items():
                row[f"{name}_us_per_post"] = round(
                    result.elapsed / max(1, len(instance)) * 1e6, 2
                )
            rows.append(row)
    return rows
