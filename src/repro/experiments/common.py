"""Shared configuration and helpers for the experiment drivers.

Scaling policy
--------------
The paper's effectiveness experiments run on 10-minute Twitter windows at
136-1180 matching posts per minute with lambdas of 5-30 *seconds*, and its
efficiency experiments on a full day of tweets.  A pure-Python exact solver
cannot provide optima at those raw rates, so the drivers default to a
*shape-preserving* rescaling: the arrival rate is reduced while lambda (and
tau) grow by the inverse factor, keeping the statistic the algorithms
actually respond to — expected same-label posts per lambda window — in the
paper's regime.  The default effectiveness regime is 12 matching posts per
minute over a 10-minute window with lambdas of tens of seconds
(a 5-second paper lambda maps to 30 s here, both ~1 post per label-window).
Every driver accepts the raw knobs, so ``--full`` runs can push toward
paper scale when the caller has the patience.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Sequence

from ..core.brute_force import exact_via_setcover
from ..core.greedy_sc import greedy_sc
from ..core.instance import Instance
from ..core.scan import scan, scan_plus
from ..core.solution import Solution
from ..core.streaming import stream_solve
from ..datagen.workload import day_workload, instance_with_overlap
from ..stream.runner import StreamResult

__all__ = [
    "EFFECTIVENESS_RATE_PER_MIN",
    "EFFECTIVENESS_DURATION",
    "BATCH_ALGORITHMS",
    "STREAM_ALGORITHMS",
    "make_effectiveness_instance",
    "make_day_instance",
    "optimum_size",
    "batch_sizes",
    "stream_sizes",
]

#: Matching posts per minute in the scaled effectiveness regime.
EFFECTIVENESS_RATE_PER_MIN = 12.0
#: The paper's 10-minute evaluation window, in seconds.
EFFECTIVENESS_DURATION = 600.0

#: The approximation algorithms compared in the batch experiments.
BATCH_ALGORITHMS: Dict[str, Callable[[Instance], Solution]] = {
    "scan": scan,
    "scan+": scan_plus,
    "greedy_sc": greedy_sc,
}

#: The streaming algorithms compared in the StreamMQDP experiments.
STREAM_ALGORITHMS: Sequence[str] = (
    "stream_scan",
    "stream_scan+",
    "stream_greedy_sc",
    "stream_greedy_sc+",
)


def make_effectiveness_instance(
    seed: int,
    num_labels: int,
    lam: float,
    overlap: float = 1.3,
    duration: float = EFFECTIVENESS_DURATION,
    rate_per_min: float = EFFECTIVENESS_RATE_PER_MIN,
) -> Instance:
    """A 10-minute-window instance in the scaled effectiveness regime."""
    rng = random.Random(seed)
    return instance_with_overlap(
        rng,
        num_labels=num_labels,
        duration=duration,
        lam=lam,
        overlap=overlap,
        rate_per_min=rate_per_min,
    )


def make_day_instance(
    seed: int,
    num_labels: int,
    lam: float,
    scale: float = 0.02,
    overlap: float = 1.3,
    duration: float = 86_400.0,
) -> Instance:
    """A (scaled) day-long bursty instance for the efficiency studies."""
    rng = random.Random(seed)
    return day_workload(
        rng,
        num_labels=num_labels,
        lam=lam,
        scale=scale,
        overlap=overlap,
        duration=duration,
    )


def optimum_size(instance: Instance,
                 node_budget: int = 4_000_000) -> int:
    """The exact optimum used as the error reference.

    The paper uses its DP (OPT); we use the branch-and-bound exact set
    cover, which handles the scaled windows comfortably and agrees with
    the DP on every instance both can solve (cross-checked in the tests).
    """
    return exact_via_setcover(instance, node_budget=node_budget).size


def batch_sizes(instance: Instance) -> Dict[str, Solution]:
    """Run every batch approximation algorithm; name -> solution."""
    return {
        name: solver(instance)
        for name, solver in BATCH_ALGORITHMS.items()
    }


def stream_sizes(
    instance: Instance, tau: float,
    algorithms: Sequence[str] = STREAM_ALGORITHMS,
) -> Dict[str, StreamResult]:
    """Run the named streaming algorithms; name -> stream result."""
    return {
        name: stream_solve(name, instance, tau=tau) for name in algorithms
    }
