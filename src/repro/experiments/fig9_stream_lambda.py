"""Figure 9 — streaming relative error versus lambda, per fixed tau.

Paper setup: ``|L| = 2``, 10-minute window, tau in {5, 10, 15} s; the
optimum is the *offline* optimum over the same window (a streaming
algorithm cannot beat it).  Expected shape: errors grow with lambda, and
StreamGreedySC+ tracks slightly below StreamGreedySC.
"""

from __future__ import annotations

from typing import Dict, List

from ..evaluation.metrics import mean, relative_error
from .common import (
    STREAM_ALGORITHMS,
    make_effectiveness_instance,
    optimum_size,
    stream_sizes,
)

DESCRIPTION = "Fig 9: streaming relative error vs lambda (|L|=2)"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'lams': (30.0, 45.0, 60.0, 90.0, 120.0, 150.0), 'trials': 10}


def run(
    seed: int = 0,
    num_labels: int = 2,
    taus: tuple = (30.0, 60.0, 90.0),
    lams: tuple = (30.0, 60.0, 90.0, 120.0),
    overlap: float = 1.4,
    trials: int = 3,
) -> List[Dict[str, object]]:
    """One row per (tau, lambda), averaged over ``trials`` label sets."""
    rows: List[Dict[str, object]] = []
    for tau in taus:
        for lam in lams:
            errors: Dict[str, List[float]] = {}
            opt_sizes: List[float] = []
            for trial in range(trials):
                instance = make_effectiveness_instance(
                    seed=seed * 1000 + trial,
                    num_labels=num_labels,
                    lam=lam,
                    overlap=overlap,
                )
                opt = optimum_size(instance)
                opt_sizes.append(opt)
                for name, result in stream_sizes(instance, tau).items():
                    errors.setdefault(name, []).append(
                        relative_error(result.size, opt)
                    )
            row: Dict[str, object] = {
                "tau": tau,
                "lam": lam,
                "opt_size": round(mean(opt_sizes), 1),
            }
            for name in STREAM_ALGORITHMS:
                row[f"{name}_err"] = round(mean(errors[name]), 4)
            rows.append(row)
    return rows
