"""Figure 8 — absolute solution sizes on one day of tweets vs ``|L|``.

Paper setup: the full 1-day dataset, lambda of 10 and 30 minutes, label
set sizes 2-20.  Expected shape: Scan's size grows linearly in ``|L|``
(it solves labels independently); GreedySC is smallest, and its advantage
widens as ``|L|`` grows (more cross-label coverage to exploit).
"""

from __future__ import annotations

from typing import Dict, List

from .common import batch_sizes, make_day_instance

DESCRIPTION = "Fig 8: solution sizes on 1 day of posts vs |L|"

#: Overrides applied by the CLI's --full flag (paper-scale runs).
FULL_PARAMS = {'sizes': (2, 5, 10, 15, 20), 'scale': 0.02, 'duration': 86_400.0}


def run(
    seed: int = 0,
    sizes: tuple = (2, 5, 10, 15, 20),
    lam_minutes: tuple = (10.0, 30.0),
    scale: float = 0.02,
    duration: float = 86_400.0,
    overlap: float = 1.3,
) -> List[Dict[str, object]]:
    """One row per (lambda, |L|) with each algorithm's solution size."""
    rows: List[Dict[str, object]] = []
    for lam_min in lam_minutes:
        for num_labels in sizes:
            instance = make_day_instance(
                seed=seed,
                num_labels=num_labels,
                lam=lam_min * 60.0,
                scale=scale,
                overlap=overlap,
                duration=duration,
            )
            row: Dict[str, object] = {
                "lam_min": lam_min,
                "num_labels": num_labels,
                "posts": len(instance),
            }
            for name, solution in batch_sizes(instance).items():
                row[f"{name}_size"] = solution.size
            rows.append(row)
    return rows
