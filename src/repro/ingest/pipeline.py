"""Durable exactly-once ingest: WAL -> resequencer -> apply -> commit.

:class:`IngestPipeline` ties the durable pieces into the delivery
guarantee the streaming theory needs (Sec 5 assumes ordered, loss-free,
duplicate-free arrival):

* **producers** append documents to the :class:`~repro.ingest.wal.
  WriteAheadLog` with idempotency keys — the transactional outbox;
* **consumers** (:meth:`drain`, or a :class:`~repro.ingest.consumers.
  ConsumerGroup` competing over claims) read from the last committed
  offset, pass records through the **idempotent receiver** (duplicate
  keys suppressed, counted, dead-lettered) and the
  :class:`~repro.ingest.resequencer.Resequencer` (timestamp order
  restored within a bounded window; late arrivals dead-lettered), then
  **apply** them through the supervised pipeline feed;
* **commits** snapshot ``{consumed offset, supervisor checkpoint,
  resequencer frontier+pending, dead letters, applied keys}`` in one
  atomically-replaced JSON file, so the applied state and its log
  position can never disagree on disk.

**The exactly-once argument.**  The commit file is written atomically at
a record boundary, so recovery always restores a state in which every
record with ``seq <= offset`` is fully accounted for (applied into the
checkpoint journal, buffered in ``pending``, or dead-lettered) and no
record beyond ``offset`` has left any trace.  Replaying ``seq > offset``
through the restored state is therefore a *re-execution of the exact
pre-crash suffix*: the resequencer is deterministic in (frontier,
pending, record sequence), the supervisor journal is a pure function of
its admitted sequence, and producer-side duplicates are suppressed by
key.  A ``kill -9`` anywhere — mid-append (torn tail, never
acknowledged), mid-apply, mid-commit (temp file abandoned) — lands in
one of those cases, which the randomized kill-point suite in
``tests/ingest`` drives exhaustively.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, \
    Sequence, Tuple, Union

from ..errors import IngestError
from ..index.inverted_index import Document
from ..ioutil import atomic_write_text
from ..observability import facade as _obs
from ..observability import structlog
from ..resilience.checkpoint import Checkpoint
from ..resilience.supervisor import StreamSupervisor
from ..stream.events import Emission
from .deadletter import DeadLetterChannel
from .resequencer import Resequencer
from .wal import CorruptRecord, FaultHook, WalRecord, WriteAheadLog

__all__ = [
    "IngestConfig",
    "IngestPipeline",
    "IngestTarget",
    "corpus_digest",
    "COMMIT_VERSION",
]

COMMIT_VERSION = 1
COMMIT_FILE = "commit.json"


def corpus_digest(posts: Iterable[Any]) -> str:
    """Order-sensitive SHA-256 over admitted posts.

    Two runs that admitted the same posts in the same order — the
    exactly-once contract — produce equal digests; a duplicate, a loss,
    or a reordering changes it.
    """
    digest = hashlib.sha256()
    for post in posts:
        digest.update(
            json.dumps(
                [post.uid, repr(post.value), sorted(post.labels),
                 post.text],
                separators=(",", ":"),
            ).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class IngestTarget:
    """The apply side of the pipeline, as three callables plus a probe.

    ``apply`` feeds one admitted document into the live corpus and
    returns its emissions; ``checkpoint`` snapshots the applied state
    (``None`` before the stream starts); ``restore`` adopts a restored
    checkpoint; ``supervisor`` exposes the live stream supervisor for
    quarantine forwarding and corpus digests.

    Use :meth:`for_pipeline` for a bare
    :class:`~repro.pipeline.DiversificationPipeline`; the serving layer
    builds its own target in
    :meth:`~repro.service.DiversificationService.durable_ingest`.
    """

    apply: Callable[[Document], List[Emission]]
    checkpoint: Callable[[], Optional[Checkpoint]]
    restore: Callable[[Checkpoint], None]
    supervisor: Callable[[], Optional[StreamSupervisor]]

    @classmethod
    def for_pipeline(cls, pipeline: Any) -> "IngestTarget":
        if getattr(pipeline, "resilience", None) is None:
            raise IngestError(
                "durable ingest needs a supervised pipeline (construct "
                "it with a ResilienceConfig): the supervisor journal is "
                "the checkpointable applied state"
            )

        def _checkpoint() -> Optional[Checkpoint]:
            supervisor = pipeline.supervisor
            return None if supervisor is None else supervisor.checkpoint()

        def _restore(checkpoint: Checkpoint) -> None:
            pipeline.adopt_supervisor(StreamSupervisor.restore(
                checkpoint,
                policy=pipeline.resilience.policy,
                arrival_budget=pipeline.resilience.arrival_budget,
                clock=pipeline.resilience.clock,
            ))

        return cls(
            apply=pipeline.feed,
            checkpoint=_checkpoint,
            restore=_restore,
            supervisor=lambda: pipeline.supervisor,
        )


@dataclass(frozen=True)
class IngestConfig:
    """Tuning knobs for one :class:`IngestPipeline`."""

    segment_max_bytes: int = 4 * 1024 * 1024
    fsync_interval: Optional[int] = 1
    reorder_window: int = 8
    gap_timeout: Optional[float] = None
    commit_interval: int = 64
    dead_letter_capacity: int = 1024

    def __post_init__(self) -> None:
        if self.commit_interval < 1:
            raise IngestError(
                f"commit_interval must be >= 1: {self.commit_interval}"
            )


class IngestPipeline:
    """Durable exactly-once ingest for one apply target.

    Typical producer/consumer flow::

        ingest = IngestPipeline(IngestTarget.for_pipeline(p), directory)
        ingest.recover()          # no-op on a fresh directory
        ingest.append(document)   # durable once append returns
        ingest.drain()            # apply everything new, commit

    After a crash, rebuild the pipeline/service, construct the
    :class:`IngestPipeline` over the same directory, and call
    :meth:`recover` then :meth:`drain`: the corpus digest equals the
    uninterrupted run's, with zero duplicate applies.
    """

    def __init__(
        self,
        target: IngestTarget,
        directory: Union[str, "os.PathLike[str]"],
        config: Optional[IngestConfig] = None,
        *,
        fault_hook: Optional[FaultHook] = None,
    ):
        self.target = target
        self.config = config if config is not None else IngestConfig()
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._fault_hook = fault_hook
        self.wal = WriteAheadLog(
            os.path.join(self.directory, "wal"),
            segment_max_bytes=self.config.segment_max_bytes,
            fsync_interval=self.config.fsync_interval,
            fault_hook=fault_hook,
        )
        self.dead_letters = DeadLetterChannel(
            capacity=self.config.dead_letter_capacity
        )
        self.resequencer = Resequencer(
            window=self.config.reorder_window,
            gap_timeout=self.config.gap_timeout,
            late_sink=self._late_sink,
        )
        self._consumed = -1
        self._keys: set = set()
        self._since_commit = 0
        self._quarantine_linked = False
        self.applied = 0
        self.suppressed = 0
        self.commits = 0
        self.recoveries = 0

    # -- fault-injection plumbing ------------------------------------------

    def _fault(self, site: str, **context: Any) -> None:
        if self._fault_hook is not None:
            self._fault_hook(site, **context)

    # -- producer side -----------------------------------------------------

    @staticmethod
    def key_for(document: Document) -> str:
        """The default idempotency key: stable per document identity."""
        return f"doc:{document.doc_id}"

    def append(
        self, document: Document, *, key: Optional[str] = None
    ) -> int:
        """Durably append one document; returns its WAL sequence.

        A producer retrying after a timeout simply appends again with
        the same key — the apply side suppresses the duplicate, which is
        the idempotent-receiver half of exactly-once.
        """
        _obs.count("ingest.appended")
        return self.wal.append(
            key if key is not None else self.key_for(document),
            {
                "doc_id": document.doc_id,
                "timestamp": document.timestamp,
                "text": document.text,
            },
        )

    def sync(self) -> None:
        """Harden any fsync-batched tail of the log."""
        self.wal.sync()

    # -- consumer side -----------------------------------------------------

    def _late_sink(self, value: float, seq: int, key: str, data: Any,
                   frontier: float) -> None:
        self.dead_letters.offer(
            key,
            f"late arrival: value {value} behind frontier {frontier}",
            seq=seq, data=data,
        )

    def _ensure_quarantine_link(self) -> None:
        if self._quarantine_linked:
            return
        supervisor = self.target.supervisor()
        if supervisor is not None:
            self.dead_letters.attach_supervisor(supervisor)
            self._quarantine_linked = True

    def _document(self, record: WalRecord) -> Optional[Document]:
        try:
            return Document(
                doc_id=int(record.data["doc_id"]),
                timestamp=float(record.data["timestamp"]),
                text=str(record.data.get("text", "")),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _apply(self, value: float, seq: int, key: str,
               document: Document) -> List[Emission]:
        self._fault("apply.before", seq=seq, key=key)
        emissions = self.target.apply(document)
        self.applied += 1
        _obs.count("ingest.applied")
        self._ensure_quarantine_link()
        self._fault("apply.after", seq=seq, key=key)
        return emissions

    def _consume(self, record: WalRecord) -> List[Emission]:
        """Idempotent receiver + resequencer + apply for one record."""
        if record.key in self._keys:
            self.suppressed += 1
            _obs.count("ingest.duplicates_suppressed")
            structlog.emit(
                "ingest.duplicate_suppressed",
                level=logging.WARNING,
                key=record.key,
                seq=record.seq,
            )
            self.dead_letters.offer(
                f"dup:{record.seq}:{record.key}",
                f"duplicate idempotency key {record.key}",
                seq=record.seq, data=record.data,
            )
            self._consumed = max(self._consumed, record.seq)
            return []
        self._keys.add(record.key)
        document = self._document(record)
        if document is None:
            self.dead_letters.offer(
                record.key, "malformed payload",
                seq=record.seq, data=record.data,
            )
            self._consumed = max(self._consumed, record.seq)
            return []
        emissions: List[Emission] = []
        released = self.resequencer.push(
            document.timestamp, record.seq, record.key, record.data
        )
        self._consumed = max(self._consumed, record.seq)
        for value, seq, key, data in released:
            emissions.extend(self._apply(
                value, seq, key,
                Document(doc_id=int(data["doc_id"]), timestamp=value,
                         text=str(data.get("text", ""))),
            ))
        return emissions

    def drain(
        self, *, commit: bool = True
    ) -> List[Emission]:
        """Apply every record past the consumed offset; returns the
        emissions triggered.  Commits every ``commit_interval`` records
        and once at the end (unless ``commit=False``)."""
        emissions: List[Emission] = []
        progressed = False
        for record in self.wal.replay(self._consumed + 1):
            if isinstance(record, CorruptRecord):
                if not self.dead_letters.seen(record.key):
                    self.dead_letters.offer(
                        record.key,
                        f"corrupt WAL frame: {record.reason}",
                        data=None,
                    )
                continue
            if record.seq <= self._consumed:
                continue
            emissions.extend(self._consume(record))
            progressed = True
            self._since_commit += 1
            if commit and self._since_commit >= \
                    self.config.commit_interval:
                self.commit()
        if commit and (progressed or self._since_commit):
            self.commit()
        return emissions

    def flush(self) -> List[Emission]:
        """Drain the resequencer window (end of stream / quiesce), then
        commit."""
        emissions: List[Emission] = []
        for value, seq, key, data in self.resequencer.flush():
            emissions.extend(self._apply(
                value, seq, key,
                Document(doc_id=int(data["doc_id"]), timestamp=value,
                         text=str(data.get("text", ""))),
            ))
        self.commit()
        return emissions

    # -- offset commit / recovery ------------------------------------------

    @property
    def commit_path(self) -> str:
        return os.path.join(self.directory, COMMIT_FILE)

    @property
    def consumed_seq(self) -> int:
        """Highest WAL sequence the consumer has taken responsibility
        for (applied, buffered, or dead-lettered)."""
        return self._consumed

    def commit(self) -> None:
        """Atomically persist the applied state and its log offset.

        The checkpoint inside is taken *now*, at a record boundary, so
        offset and state describe the same instant; the atomic replace
        makes torn commits impossible (see :mod:`repro.ioutil`).
        """
        self._fault("commit.before", offset=self._consumed)
        checkpoint = self.target.checkpoint()
        payload = {
            "version": COMMIT_VERSION,
            "offset": self._consumed,
            "frontier": repr(self.resequencer.frontier),
            "pending": [
                [repr(value), seq, key, data]
                for value, seq, key, data in self.resequencer.pending()
            ],
            "checkpoint": None if checkpoint is None
            else checkpoint.to_dict(),
            "keys": sorted(self._keys),
            "dead_letters": self.dead_letters.snapshot(),
            "dead_letter_totals": [
                self.dead_letters.total, self.dead_letters.evicted,
            ],
            "counters": {
                "applied": self.applied,
                "suppressed": self.suppressed,
                "gap_timeouts": self.resequencer.gap_timeouts,
                "late": self.resequencer.late,
            },
        }
        atomic_write_text(
            self.commit_path, json.dumps(payload, sort_keys=True)
        )
        self.commits += 1
        self._since_commit = 0
        _obs.count("ingest.commits")
        self._fault("commit.after", offset=self._consumed)

    def recover(self) -> bool:
        """Restore committed state from disk; returns True when a commit
        existed.  Call :meth:`drain` afterwards to replay the WAL tail
        — together they are the crash-recovery path."""
        try:
            with open(self.commit_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return False
        except (OSError, json.JSONDecodeError) as error:
            raise IngestError(
                f"unreadable ingest commit at {self.commit_path}: "
                f"{error}"
            ) from error
        try:
            if int(payload["version"]) != COMMIT_VERSION:
                raise IngestError(
                    f"unsupported ingest commit version "
                    f"{payload['version']!r}"
                )
            checkpoint = payload.get("checkpoint")
            if checkpoint is not None:
                self.target.restore(Checkpoint.from_dict(checkpoint))
            self._consumed = int(payload["offset"])
            self.resequencer.restore(
                float(payload["frontier"]),
                [
                    (float(value), int(seq), str(key), data)
                    for value, seq, key, data in payload["pending"]
                ],
            )
            self._keys = set(payload["keys"])
            totals = payload.get("dead_letter_totals", [0, 0])
            self.dead_letters.restore(
                payload.get("dead_letters", []),
                total=int(totals[0]), evicted=int(totals[1]),
            )
            counters = payload.get("counters", {})
            self.applied = int(counters.get("applied", 0))
            self.suppressed = int(counters.get("suppressed", 0))
            self.resequencer.gap_timeouts = int(
                counters.get("gap_timeouts", 0)
            )
            self.resequencer.late = int(counters.get("late", 0))
        except IngestError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise IngestError(
                f"malformed ingest commit at {self.commit_path}"
            ) from error
        self._quarantine_linked = False
        self._ensure_quarantine_link()
        self._since_commit = 0
        self.recoveries += 1
        _obs.count("ingest.recoveries")
        structlog.emit(
            "ingest.recovered",
            offset=self._consumed,
            pending=len(self.resequencer),
            applied=self.applied,
        )
        return True

    def close(self) -> None:
        self.wal.close()

    # -- introspection ------------------------------------------------------

    def corpus_digest(self) -> Optional[str]:
        """Digest of the applied corpus (``None`` before any apply)."""
        supervisor = self.target.supervisor()
        if supervisor is None:
            return None
        return corpus_digest(supervisor.journal)

    def duplicate_applies(self) -> int:
        """Journal uids applied more than once — the exactly-once
        invariant says this is always zero."""
        supervisor = self.target.supervisor()
        if supervisor is None:
            return 0
        journal = supervisor.journal
        return len(journal) - len({post.uid for post in journal})

    def introspect(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the durable ingest state."""
        return {
            "consumed_seq": self._consumed,
            "applied": self.applied,
            "suppressed_duplicates": self.suppressed,
            "duplicate_applies": self.duplicate_applies(),
            "commits": self.commits,
            "recoveries": self.recoveries,
            "corpus_digest": self.corpus_digest(),
            "resequencer": {
                "pending": len(self.resequencer),
                "frontier": self.resequencer.frontier,
                "released": self.resequencer.released,
                "late": self.resequencer.late,
                "gap_timeouts": self.resequencer.gap_timeouts,
            },
            "dead_letters": {
                "retained": len(self.dead_letters),
                "total": self.dead_letters.total,
                "evicted": self.dead_letters.evicted,
            },
            "wal": {
                "next_seq": self.wal.next_seq,
                "segments": len(self.wal.segments),
                "bytes": self.wal.size_bytes(),
                "appended": self.wal.appended,
                "rotations": self.wal.rotations,
            },
        }
